// StageGraph — a deterministic DAG scheduler over core::WorkerPool's
// task-queue mode.
//
// Stages are added with explicit dependency edges; run() dispatches every
// ready stage (all parents Done/Cached) onto the pool, so independent
// stages — different months of a campaign, the two sides of a diamond —
// execute concurrently while chains stay ordered. With a 1-thread pool
// submit() runs inline and the whole graph executes serially in a valid
// topological order: the serial baseline and the parallel schedule run
// the exact same stage bodies.
//
// Failure containment: a stage returning !ok is Failed; every transitive
// dependent is Skipped (never executed), while independent branches keep
// running to completion — a detection bug in month 7 does not throw away
// months 1-6 or 8-49, and their checkpoints make the eventual re-run
// cheap.
//
// A dependency cycle is a programming error and throws std::logic_error
// from run() before anything executes.
//
// Timing/observability: every executed stage records wall-clock duration
// and the process peak RSS (getrusage ru_maxrss, in KB) sampled at stage
// completion — ru_maxrss is a process-wide high-water mark, so per-stage
// values are "peak so far", monotone along completion order; the maximum
// across stages is the campaign's true peak.
//
// Stage bodies must not throw (the pool terminates on escaping
// exceptions) and must not issue fork-join run() calls on the pool that
// is executing them (deadlock; see worker_pool.h). Inner parallelism
// belongs to a different pool or stays serial — campaign stages run the
// serial detection engine and let cross-month concurrency come from the
// DAG.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/worker_pool.h"

namespace sp::pipeline {

enum class StageStatus : std::uint8_t {
  Pending,   // not yet scheduled
  Running,   // dispatched to the pool
  Done,      // body ran and succeeded
  Cached,    // body found a valid checkpoint and did no work
  Failed,    // body reported an error
  Skipped,   // a transitive dependency failed; body never ran
};

[[nodiscard]] std::string_view to_string(StageStatus status) noexcept;

/// What a stage body reports back.
struct StageOutcome {
  bool ok = true;
  bool cached = false;   // valid checkpoint found; no work done
  std::string error;     // populated when !ok

  [[nodiscard]] static StageOutcome success() { return {}; }
  [[nodiscard]] static StageOutcome hit() { return {.ok = true, .cached = true, .error = {}}; }
  [[nodiscard]] static StageOutcome failure(std::string message) {
    return {.ok = false, .cached = false, .error = std::move(message)};
  }
};

struct StageResult {
  std::string name;
  StageStatus status = StageStatus::Pending;
  std::string error;
  double wall_ms = 0.0;       // body execution time (0 for Skipped)
  long peak_rss_kb = 0;       // process ru_maxrss at completion (0 for Skipped)
};

class StageGraph {
 public:
  using StageId = std::size_t;
  using StageFn = std::function<StageOutcome()>;

  /// Adds a stage depending on previously added stages. `deps` ids must be
  /// < the new stage's id in the common build-forward case, but any valid
  /// id is accepted (cycles are rejected at run()).
  StageId add(std::string name, std::vector<StageId> deps, StageFn fn);

  [[nodiscard]] std::size_t size() const noexcept { return stages_.size(); }

  /// Called (from the executing worker thread, serialized by the graph
  /// lock) each time a stage reaches a terminal status — the CLI progress
  /// line and the manifest incremental save hook.
  void set_observer(std::function<void(const StageResult&)> observer);

  /// Cooperative stop (the SIGINT/SIGTERM graceful-stop hook): once
  /// `*stop` reads true, stages that have not started are finalized as
  /// Skipped instead of executing — the in-flight stage finishes
  /// normally, observers still fire for every finalized stage (so the
  /// manifest records the partial run), and run() returns false. Skipped
  /// is exactly what resume re-runs, so an interrupted manifest resumes
  /// to the identical artifacts. The pointee must outlive run().
  void set_stop_flag(const std::atomic<bool>* stop) noexcept { stop_ = stop; }

  /// Executes the whole graph on `pool`; returns true when every stage is
  /// Done or Cached. Call at most once per graph.
  bool run(core::WorkerPool& pool);

  /// Terminal results, in stage-id order (valid after run()).
  [[nodiscard]] const std::vector<StageResult>& results() const noexcept { return results_; }

 private:
  struct Stage {
    std::string name;
    StageFn fn;
    std::vector<StageId> deps;
    std::vector<StageId> dependents;
    std::size_t waiting = 0;   // unfinished deps
    bool doomed = false;       // some transitive dep failed
    std::string doom_reason;   // which dependency doomed it
  };

  void verify_acyclic() const;
  /// Marks stage `id` terminal, propagates readiness/doom to dependents.
  /// Appends every stage finalized by this completion (the stage itself
  /// plus Skipped descendants) to `finalized`. Caller holds `mutex_`.
  void finish(StageId id, StageStatus status, std::string error, double wall_ms,
              long rss_kb, std::vector<StageId>& newly_ready,
              std::vector<StageId>& finalized);
  void execute(StageId id);
  void dispatch_ready(std::vector<StageId>& ready);
  /// finish() + observer callbacks + dispatch of newly ready stages — the
  /// shared tail of execute() and the stop-flag short-circuit paths.
  void finalize(StageId id, StageStatus status, std::string error, double wall_ms,
                long rss_kb);
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_ != nullptr && stop_->load();
  }

  std::vector<Stage> stages_;
  std::vector<StageResult> results_;
  std::function<void(const StageResult&)> observer_;

  core::WorkerPool* pool_ = nullptr;
  const std::atomic<bool>* stop_ = nullptr;
  // lock-order: 30 pipeline.stage_graph.mutex (graph state; released
  // before observer callbacks and before dispatching onto the pool)
  std::mutex mutex_;
  // lock-order: 31 pipeline.stage_graph.observer_mutex (observer calls
  // serialized, off the graph lock; leaf)
  std::mutex observer_mutex_;
  std::condition_variable done_cv_;
  std::size_t finished_ = 0;
  bool ran_ = false;
};

}  // namespace sp::pipeline
