// The sketch hash family.
//
// Signatures hash 32-bit domain ids through a SplitMix64-style finalizer
// keyed by a caller-chosen 64-bit seed: h(x) = mix64(seed ^ golden·(x+1)).
// The finalizer is a bijection on 64-bit words, so for one seed two
// distinct ids never collide in the intermediate word; collisions can only
// come from the seed xor folding, making them ~2^-64 events. The family is
// fully determined by (seed, id) — no process state, no randomness — which
// keeps every signature, and everything derived from one, reproducible
// across runs, platforms and thread counts.
//
// The constants intentionally match the repo-wide SplitMix64 finalizer
// (synth/determinism.h); the definition is duplicated here because
// sp_sketch layers on sp_core only and must not depend on the synthetic
// data generator.
#pragma once

#include <cstdint>

namespace sp::sketch {

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Hash of one set element (a dense domain id) under `seed`.
[[nodiscard]] constexpr std::uint64_t element_hash(std::uint32_t element,
                                                  std::uint64_t seed) noexcept {
  return mix64(seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(element) + 1)));
}

}  // namespace sp::sketch
