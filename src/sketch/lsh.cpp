#include "sketch/lsh.h"

#include <algorithm>
#include <numeric>

namespace sp::sketch {

LshIndex LshIndex::build(const SignatureSet& signatures) {
  LshIndex index;
  index.owner_limit_ = signatures.prefix_count();
  std::size_t total = 0;
  for (std::uint32_t dense = 0; dense < signatures.prefix_count(); ++dense) {
    total += signatures.of(dense).hashes.size();
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
  entries.reserve(total);
  for (std::uint32_t dense = 0; dense < signatures.prefix_count(); ++dense) {
    for (const std::uint64_t hash : signatures.of(dense).hashes) {
      entries.emplace_back(hash, dense);
    }
  }
  // Sort by (hash, owner): lookups produce owners in a deterministic order
  // regardless of insertion order.
  std::sort(entries.begin(), entries.end());
  index.hashes_.reserve(entries.size());
  index.owners_.reserve(entries.size());
  for (const auto& [hash, owner] : entries) {
    index.hashes_.push_back(hash);
    index.owners_.push_back(owner);
  }
  return index;
}

void LshIndex::candidates_of(const SignatureView& query,
                             std::vector<std::uint32_t>& out) const {
  out.clear();
  for (const std::uint64_t hash : query.hashes) {
    const auto begin = std::lower_bound(hashes_.begin(), hashes_.end(), hash);
    for (auto it = begin; it != hashes_.end() && *it == hash; ++it) {
      out.push_back(owners_[static_cast<std::size_t>(it - hashes_.begin())]);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void LshIndex::candidates_of(const SignatureView& query,
                             std::vector<std::pair<std::uint32_t, std::uint32_t>>& out) const {
  std::vector<std::uint32_t> counts;
  candidates_of(query, out, counts);
}

void LshIndex::candidates_of(const SignatureView& query,
                             std::vector<std::pair<std::uint32_t, std::uint32_t>>& out,
                             std::vector<std::uint32_t>& counts) const {
  out.clear();
  if (counts.size() < owner_limit_) counts.resize(owner_limit_, 0);
  // The same owner appears once per shared hash (stored hash arrays are
  // strictly ascending, so one query hash hits an owner at most once):
  // a dense counter per owner tallies hits in O(occurrences).
  for (const std::uint64_t hash : query.hashes) {
    const auto begin = std::lower_bound(hashes_.begin(), hashes_.end(), hash);
    for (auto it = begin; it != hashes_.end() && *it == hash; ++it) {
      const std::uint32_t owner = owners_[static_cast<std::size_t>(it - hashes_.begin())];
      if (counts[owner]++ == 0) out.emplace_back(owner, 0u);
    }
  }
  for (auto& [owner, hits] : out) {
    hits = counts[owner];
    counts[owner] = 0;
  }
  std::sort(out.begin(), out.end());
}

}  // namespace sp::sketch
