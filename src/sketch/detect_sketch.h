// Sketch-based sibling-prefix detection (DetectStrategy::Sketch).
//
// The engine answers the same question as the exact scan — for every
// source prefix, its best-Jaccard counterpart(s) — but generates
// candidates from an LSH banding index over bottom-k signatures and runs
// the exact set intersection only on the few survivors near the best
// estimate. Output is byte-identical to the exact engine by construction
// on every path that matters:
//
//   no LSH candidates            → exact scan_source fallback
//   best estimate < floor        → exact scan_source fallback
//   best verified value < floor  → exact scan_source fallback (paranoia)
//   otherwise                    → survivors within `margin` of the best
//                                  estimate are verified with the *same*
//                                  similarity arithmetic and tie rules as
//                                  the exact engine (core/detect_scan.h)
//
// The zero-false-negative argument (DESIGN.md §3.7): a pair can only be
// missed if its source takes the survivor path AND either (a) the true
// best match shares none of the source's k bottom hashes — probability
// (1-J)^k with J ≥ floor, < 10^-14 at k = 64 — or (b) the combined
// estimate error of the best match and the estimate leader exceeds
// `margin` (≈ 4.8 combined standard deviations at k = 64, margin = 0.3).
// The identity property tests exercise both engines across seeds.
#pragma once

#include <cstddef>
#include <vector>

#include "core/corpus.h"
#include "core/detect.h"
#include "core/worker_pool.h"
#include "sketch/lsh.h"
#include "sketch/scan_sketch.h"
#include "sketch/signature.h"

namespace sp::sketch {

/// Signatures + LSH indexes for both families of a DetectIndex. Immutable
/// after build; shared read-only by all detection workers.
class SketchIndex {
 public:
  /// Builds signatures (shard-parallel over `pool` when given) and the
  /// per-family LSH indexes.
  [[nodiscard]] static SketchIndex build(const core::DetectIndex& index,
                                         const SketchParams& params,
                                         core::WorkerPool* pool = nullptr);

  [[nodiscard]] const SketchParams& params() const noexcept { return params_; }
  [[nodiscard]] const SignatureSet& signatures(Family family) const noexcept {
    return family == Family::v4 ? v4_signatures_ : v6_signatures_;
  }
  [[nodiscard]] const LshIndex& lsh(Family family) const noexcept {
    return family == Family::v4 ? v4_lsh_ : v6_lsh_;
  }

 private:
  SketchParams params_;
  SignatureSet v4_signatures_;
  SignatureSet v6_signatures_;
  LshIndex v4_lsh_;
  LshIndex v6_lsh_;
};

/// The sketch engine. Owns a worker pool; reusable across runs like
/// core::ParallelDetector (not reentrant).
class SketchDetector {
 public:
  explicit SketchDetector(SketchParams params = {}, unsigned thread_count = 0);

  /// Runs detection over a prebuilt DetectIndex. `options.metric` other
  /// than Jaccard routes every source through the exact scan (estimates
  /// are Jaccard estimates, so only Jaccard ordering can be trusted);
  /// `options.strategy` is ignored — calling this IS choosing Sketch.
  [[nodiscard]] std::vector<core::SiblingPair> detect(const core::DetectIndex& index,
                                                      const core::DetectOptions& options);

  [[nodiscard]] const SketchStats& stats() const noexcept { return stats_; }

 private:
  void detect_direction(const core::DetectIndex& index, const SketchIndex& sketch,
                        Family from, core::Metric metric, std::vector<core::SiblingPair>& out);

  SketchParams params_;
  core::WorkerPool pool_;
  SketchStats stats_;
};

/// Strategy-dispatching entry points: DetectStrategy::Exact delegates to
/// the core engine, DetectStrategy::Sketch runs the sketch engine with
/// `params`. Output is identical either way (the identity property).
/// `stats_out`, when given, is filled only on the sketch path.
[[nodiscard]] std::vector<core::SiblingPair> detect_sibling_prefixes(
    const core::DualStackCorpus& corpus, const core::DetectOptions& options = {},
    const SketchParams& params = {}, SketchStats* stats_out = nullptr);

[[nodiscard]] std::vector<core::SiblingPair> detect_sibling_prefixes(
    const core::SetCorpus& corpus, const core::DetectOptions& options = {},
    const SketchParams& params = {}, SketchStats* stats_out = nullptr);

}  // namespace sp::sketch
