// LSH banding index over bottom-k signatures (one-row bands).
//
// With bottom-k signatures, two sets with Jaccard J share any given
// signature slot with probability ≈ J, so indexing every stored hash value
// as its own band (r = 1, b = k) makes the probability that a true sibling
// pair shares *no* bucket ≈ (1 - J)^k — below 10^-14 for J ≥ 0.4, k = 64
// (DESIGN.md §3.7). Sources whose buckets are all empty fall back to the
// exact scan, so even that residual cannot lose a pair.
//
// The index is two parallel sorted arrays (hash value, owner dense id):
// candidate lookup is one binary search per query hash. Immutable after
// build; shared read-only by all detection workers.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/signature.h"

namespace sp::sketch {

class LshIndex {
 public:
  /// Indexes every stored hash of every signature in `signatures`.
  [[nodiscard]] static LshIndex build(const SignatureSet& signatures);

  /// Appends to `out` the dense ids of indexed signatures sharing at least
  /// one hash with `query`; sorted ascending, duplicate-free. `out` is
  /// cleared first.
  void candidates_of(const SignatureView& query, std::vector<std::uint32_t>& out) const;

  /// Like candidates_of, but each candidate carries the number of stored
  /// hashes it shares with `query` (its bucket-hit count). Sorted by dense
  /// id ascending. The hit count upper-bounds the pair's Jaccard estimate
  /// — estimate_jaccard can count at most `hits` shared slots — which is
  /// what lets the detector skip hopeless estimate merges (DESIGN.md
  /// §3.7).
  void candidates_of(const SignatureView& query,
                     std::vector<std::pair<std::uint32_t, std::uint32_t>>& out) const;

  /// Allocation-free variant for the per-source hot loop: `counts` is a
  /// caller-owned scratch array (auto-grown to the owner range, all zeros
  /// between calls; this function leaves it zeroed again), so hit counting
  /// is O(occurrences) instead of sorting the occurrence list.
  void candidates_of(const SignatureView& query,
                     std::vector<std::pair<std::uint32_t, std::uint32_t>>& out,
                     std::vector<std::uint32_t>& counts) const;

  [[nodiscard]] std::size_t bucket_entries() const noexcept { return hashes_.size(); }

 private:
  std::vector<std::uint64_t> hashes_;   // sorted; ties grouped
  std::vector<std::uint32_t> owners_;   // parallel to hashes_
  std::uint32_t owner_limit_ = 0;       // owners_ values are < owner_limit_
};

}  // namespace sp::sketch
