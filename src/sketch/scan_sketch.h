// The per-source sketch-filtered scan shared by the sketch engines.
//
// SketchDetector shards this scan over its worker pool; the sp::stream
// incremental engine reuses it verbatim for large dirty sets (the
// "sketch LSH filter optional" path), which is what keeps the streamed
// output byte-identical to both the sketch and the exact engine. One
// definition, like core/detect_scan.h for the exact scan, so the engines
// can never drift in candidate pruning, estimate margins, or tie rules.
//
// The scan for one source prefix:
//
//   no LSH candidates            → exact scan_source fallback
//   best estimate < floor        → exact scan_source fallback
//   best verified value < floor  → exact scan_source fallback (paranoia)
//   otherwise                    → survivors within `margin` of the best
//                                  estimate are verified with the *same*
//                                  similarity arithmetic and tie rules as
//                                  the exact engine (core/detect_scan.h)
//
// Non-Jaccard metrics route every source through the exact scan — the
// estimates are Jaccard estimates, so only Jaccard ordering is trusted.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/detect.h"
#include "core/detect_index.h"
#include "core/detect_scan.h"
#include "sketch/lsh.h"
#include "sketch/signature.h"

namespace sp::sketch {

/// Counters describing one sketch detection run (both directions).
struct SketchStats {
  /// Counters of the exact fallback scans (scan_source fills these) plus
  /// the verified-survivor evaluations.
  core::DetectStats scan;
  std::size_t sources_total = 0;          // source prefixes processed
  std::size_t sources_fallback = 0;       // routed to the exact scan
  std::size_t fallback_no_candidates = 0;
  std::size_t fallback_low_estimate = 0;
  std::size_t fallback_low_exact = 0;     // paranoia: best survivor < floor
  std::size_t lsh_candidates = 0;         // candidates the LSH produced
  std::size_t estimates_skipped = 0;      // merges pruned by the hit bound
  std::size_t survivors_verified = 0;     // exact intersections computed
  double max_estimate_error = 0.0;        // max |estimate - exact| observed
  double signature_build_ms = 0.0;
};

/// Exact shared-element count of two sorted spans (linear merge; same
/// arithmetic the posting-list scan accumulates per candidate).
inline std::uint32_t intersection_count(std::span<const core::DomainId> a,
                                        std::span<const core::DomainId> b) noexcept {
  std::uint32_t shared = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

/// Per-worker reusable state for scan_source_sketch: LSH candidate and
/// estimate scratch plus the exact engine's ScanScratch for fallbacks.
struct SketchScanScratch {
  explicit SketchScanScratch(std::size_t target_prefixes) : scratch(target_prefixes) {}

  struct Survivor {
    std::uint32_t dense = 0;
    std::uint32_t shared = 0;
    double value = 0.0;
  };

  std::vector<std::pair<std::uint32_t, std::uint32_t>> candidates;  // (dense, hits)
  std::vector<std::uint32_t> lsh_counts;  // dense hit-count scratch
  std::vector<double> estimates;
  std::vector<Survivor> survivors;
  core::detail::ScanScratch scratch;
};

/// Appends the best-match pairs of `source` (with ties) to `out`, exactly
/// as core::detail::scan_source would, generating candidates from the
/// counterpart side's LSH index where the estimates allow it.
inline void scan_source_sketch(const core::DetectIndex::Side& from_side,
                               const core::DetectIndex::Side& to_side,
                               const SignatureSet& from_signatures,
                               const SignatureSet& to_signatures, const LshIndex& to_lsh,
                               const SketchParams& params, Family from, core::Metric metric,
                               std::uint32_t source, SketchScanScratch& scan,
                               std::vector<core::SiblingPair>& out, SketchStats& stats) {
  ++stats.sources_total;

  const auto exact_fallback = [&] {
    ++stats.sources_fallback;
    core::detail::scan_source(from_side, to_side, from, metric, source, scan.scratch, out,
                              stats.scan);
  };

  // Non-Jaccard metrics cannot be ordered by a Jaccard estimate, so every
  // source takes the exact path (correct, but no filtering win).
  if (metric != core::Metric::Jaccard) {
    exact_fallback();
    return;
  }
  const SignatureView signature = from_signatures.of(source);
  if (signature.hashes.empty()) {
    // Empty set: the exact scan would touch no candidate either.
    ++stats.scan.prefixes_scanned;
    return;
  }

  to_lsh.candidates_of(signature, scan.candidates, scan.lsh_counts);
  stats.lsh_candidates += scan.candidates.size();
  if (scan.candidates.empty()) {
    ++stats.fallback_no_candidates;
    exact_fallback();
    return;
  }

  // Process candidates in descending bucket-hit order: the best
  // estimate surfaces early, and every later merge whose hit bound
  // cannot reach the margin is skipped. The skip is conservative —
  // estimate_jaccard counts at most `hits` shared slots over at
  // least min(k, max(|sig_a|, |sig_b|)) union slots, so
  // hits / that floor upper-bounds the estimate. A skipped
  // candidate therefore can neither raise best_estimate nor
  // survive the margin cut, and the survivor set (and the output)
  // is exactly what the unpruned pass would produce.
  std::sort(scan.candidates.begin(), scan.candidates.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  const std::uint32_t k = params.k;
  const auto source_stored = static_cast<std::uint32_t>(signature.hashes.size());
  scan.estimates.clear();
  double best_estimate = 0.0;
  for (const auto& [candidate, hits] : scan.candidates) {
    const SignatureView candidate_signature = to_signatures.of(candidate);
    const std::uint32_t floor_slots = std::min(
        k, std::max(source_stored, static_cast<std::uint32_t>(candidate_signature.hashes.size())));
    const double upper = static_cast<double>(hits) / floor_slots;
    if (upper + params.margin < best_estimate) {
      ++stats.estimates_skipped;
      scan.estimates.push_back(-1.0);  // provably below the margin
      continue;
    }
    const double estimate = estimate_jaccard(signature, candidate_signature, k);
    scan.estimates.push_back(estimate);
    best_estimate = std::max(best_estimate, estimate);
  }
  if (best_estimate < params.fallback_floor) {
    ++stats.fallback_low_estimate;
    exact_fallback();
    return;
  }

  // Exact-verify every candidate within the margin of the best estimate,
  // with the same arithmetic the exact scan uses.
  ++stats.scan.prefixes_scanned;
  const auto elements = from_side.elements_of(source);
  scan.survivors.clear();
  double best = 0.0;
  for (std::size_t c = 0; c < scan.candidates.size(); ++c) {
    if (scan.estimates[c] + params.margin < best_estimate) continue;
    const std::uint32_t candidate = scan.candidates[c].first;
    const std::uint32_t shared = intersection_count(elements, to_side.elements_of(candidate));
    const double value =
        core::similarity_from_sizes(metric, shared, elements.size(), to_side.set_size(candidate));
    ++stats.survivors_verified;
    ++stats.scan.candidates_evaluated;
    stats.max_estimate_error =
        std::max(stats.max_estimate_error, std::abs(scan.estimates[c] - value));
    best = std::max(best, value);
    scan.survivors.push_back({candidate, shared, value});
  }
  if (best < params.fallback_floor) {
    // The verified best is inside the regime where an LSH miss or an
    // estimate inversion is conceivable — rerun exactly.
    ++stats.fallback_low_exact;
    exact_fallback();
    return;
  }

  const bool from_v4 = from == Family::v4;
  const Prefix& source_prefix = from_side.prefixes[source];
  const auto source_size = static_cast<std::uint32_t>(elements.size());
  for (const SketchScanScratch::Survivor& survivor : scan.survivors) {
    if (survivor.value + core::detail::kTieEpsilon < best) continue;
    const Prefix& candidate_prefix = to_side.prefixes[survivor.dense];
    const std::uint32_t candidate_size = to_side.set_size(survivor.dense);
    core::SiblingPair pair;
    pair.v4 = from_v4 ? source_prefix : candidate_prefix;
    pair.v6 = from_v4 ? candidate_prefix : source_prefix;
    pair.similarity = survivor.value;
    pair.shared_domains = survivor.shared;
    pair.v4_domain_count = from_v4 ? source_size : candidate_size;
    pair.v6_domain_count = from_v4 ? candidate_size : source_size;
    out.push_back(pair);
    ++stats.scan.pairs_emitted;
  }
}

}  // namespace sp::sketch
