// Bottom-k signatures over prefix domain sets.
//
// A signature keeps the k smallest distinct element hashes of a set plus
// the exact set size. Key properties (DESIGN.md §3.7):
//   - A set with ≤ k elements is sketched *exactly*: its signature holds
//     every element hash, and the estimator below degenerates to the true
//     Jaccard of the hash sets (equal to the true set Jaccard short of a
//     ~2^-64 hash collision).
//   - For larger sets, the k smallest union hashes are a uniform sample of
//     the union, giving the classic bottom-k estimate with standard error
//     sqrt(J(1-J)/k).
// Signatures are deterministic functions of (seed, set contents): build
// order, thread count and platform never change a single byte, which is
// what allows the serialized blobs to be diffed and checked in.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/detect_index.h"
#include "core/worker_pool.h"
#include "netbase/prefix.h"

namespace sp::sketch {

struct SketchParams {
  /// Signature size. 64 gives σ ≈ 0.06 at J = 0.5; see DESIGN.md §3.7 for
  /// the margin math that depends on it.
  std::uint32_t k = 64;
  /// Hash-family seed; part of the signature identity (signatures built
  /// under different seeds are incomparable and refuse to merge).
  std::uint64_t seed = 0x53504B31;  // "SPK1"
  /// Detection falls back to the exact scan for a source prefix whose best
  /// candidate estimate is below this floor: low-similarity regions are
  /// where estimate ordering is least reliable, and they are cheap to scan
  /// exactly.
  double fallback_floor = 0.40;
  /// Survivor margin: every candidate within `margin` of the best estimate
  /// is exact-verified, so an estimator error within the margin can never
  /// drop the true best match.
  double margin = 0.30;
};

/// One set's signature: sorted distinct bottom hashes + the exact size.
struct SignatureView {
  std::span<const std::uint64_t> hashes;
  std::uint32_t set_size = 0;

  /// True when the signature holds every element's hash (set fits in k).
  [[nodiscard]] bool complete(std::uint32_t k) const noexcept { return set_size <= k; }
};

/// Bottom-k Jaccard estimate for two signatures built under the same
/// (k, seed). Exact when both signatures are complete.
[[nodiscard]] double estimate_jaccard(const SignatureView& a, const SignatureView& b,
                                      std::uint32_t k) noexcept;

/// Signatures of every prefix of one DetectIndex side, indexed by the
/// side's dense prefix ids. Storage is one flat k-strided array, so a
/// shard-parallel build writes disjoint slots and the result is identical
/// for any thread count.
class SignatureSet {
 public:
  /// Builds signatures for `side`. With a pool, prefixes are sharded over
  /// its workers (the pool must be idle: build runs a fork-join job).
  [[nodiscard]] static SignatureSet build(const core::DetectIndex::Side& side,
                                          const SketchParams& params,
                                          core::WorkerPool* pool = nullptr);

  [[nodiscard]] std::uint32_t prefix_count() const noexcept {
    return static_cast<std::uint32_t>(prefixes_.size());
  }
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const std::vector<Prefix>& prefixes() const noexcept { return prefixes_; }

  [[nodiscard]] SignatureView of(std::uint32_t dense) const noexcept {
    const std::size_t begin = static_cast<std::size_t>(dense) * k_;
    return {std::span<const std::uint64_t>(hashes_.data() + begin, counts_[dense]),
            set_sizes_[dense]};
  }

  /// Serializes to the versioned "SPSK" blob (DESIGN.md §3.7). The format
  /// is canonical: serialize(deserialize(b)) == b for every accepted b.
  [[nodiscard]] std::string serialize() const;

  /// Parses a blob, validating magic, version, bounds, hash ordering and
  /// prefix canonicality. Returns nullopt (with a reason in `error` when
  /// given) for any truncated or corrupt input.
  [[nodiscard]] static std::optional<SignatureSet> deserialize(std::string_view blob,
                                                               std::string* error = nullptr);

 private:
  std::uint32_t k_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<Prefix> prefixes_;            // dense id → prefix
  std::vector<std::uint64_t> hashes_;       // k-strided slots
  std::vector<std::uint32_t> counts_;       // hashes stored per prefix (≤ k)
  std::vector<std::uint32_t> set_sizes_;    // exact set sizes
};

}  // namespace sp::sketch
