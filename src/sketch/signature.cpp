#include "sketch/signature.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>

#include "sketch/hash.h"

namespace sp::sketch {

namespace {

/// Prefixes claimed per atomic fetch during the parallel build; mirrors
/// ParallelDetector's chunking so skewed set sizes still balance.
constexpr std::size_t kBuildChunk = 64;

/// Fills one prefix's signature slot: hash every element, keep the k
/// smallest distinct values, sorted ascending. Deterministic per
/// (seed, set) — independent of which worker runs it.
void sign_one(std::span<const core::DomainId> elements, const SketchParams& params,
              std::vector<std::uint64_t>& scratch, std::uint64_t* slot,
              std::uint32_t& count_out) {
  // Bounded max-heap with threshold rejection: once k hashes are held,
  // an element only enters if it beats the current k-th smallest — a
  // ~k/|set| hit rate, so the common case is one hash + one compare per
  // element. The surviving multiset is exactly the k smallest hashes
  // (with multiplicity), identical to a full sort's first k.
  scratch.clear();
  const std::size_t keep = std::min<std::size_t>(params.k, elements.size());
  for (const core::DomainId element : elements) {
    const std::uint64_t hash = element_hash(element, params.seed);
    if (scratch.size() < keep) {
      scratch.push_back(hash);
      std::push_heap(scratch.begin(), scratch.end());
    } else if (hash < scratch.front()) {
      std::pop_heap(scratch.begin(), scratch.end());
      scratch.back() = hash;
      std::push_heap(scratch.begin(), scratch.end());
    }
  }
  std::sort(scratch.begin(), scratch.end());
  // Elements are distinct, so duplicate hashes are ~2^-64 collisions;
  // dedup keeps the signature strictly increasing.
  std::size_t m = 0;
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    if (m == 0 || scratch[i] != slot[m - 1]) slot[m++] = scratch[i];
  }
  count_out = static_cast<std::uint32_t>(m);
}

// --- blob helpers (little-endian, fixed width) ---

template <typename T>
void put(std::string& out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<char>((static_cast<std::uint64_t>(value) >> (8 * i)) & 0xFF));
  }
}

template <typename T>
bool get(std::string_view blob, std::size_t& cursor, T& value) {
  if (blob.size() - cursor < sizeof(T)) return false;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(blob[cursor + i])) << (8 * i);
  }
  value = static_cast<T>(v);
  cursor += sizeof(T);
  return true;
}

constexpr char kMagic[4] = {'S', 'P', 'S', 'K'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMaxK = 4096;

bool fail(std::string* error, const char* reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace

double estimate_jaccard(const SignatureView& a, const SignatureView& b,
                        std::uint32_t k) noexcept {
  if (a.hashes.empty() || b.hashes.empty()) return 0.0;
  // When both signatures are complete the merge below walks the *entire*
  // hash sets, making the ratio the exact Jaccard; otherwise it stops at
  // the k smallest union hashes — the bottom-k sample.
  const bool exact = a.complete(k) && b.complete(k);
  const std::size_t limit = exact ? std::numeric_limits<std::size_t>::max() : k;
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t taken = 0;
  std::size_t shared = 0;
  while ((i < a.hashes.size() || j < b.hashes.size()) && taken < limit) {
    if (j >= b.hashes.size() || (i < a.hashes.size() && a.hashes[i] < b.hashes[j])) {
      ++i;
    } else if (i >= a.hashes.size() || b.hashes[j] < a.hashes[i]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
    ++taken;
  }
  return taken == 0 ? 0.0
                    : static_cast<double>(shared) / static_cast<double>(taken);
}

SignatureSet SignatureSet::build(const core::DetectIndex::Side& side,
                                 const SketchParams& params, core::WorkerPool* pool) {
  SignatureSet set;
  set.k_ = params.k;
  set.seed_ = params.seed;
  set.prefixes_ = side.prefixes;
  const std::size_t n = side.prefix_count();
  set.hashes_.assign(n * params.k, 0);
  set.counts_.assign(n, 0);
  set.set_sizes_.assign(n, 0);
  for (std::size_t dense = 0; dense < n; ++dense) {
    set.set_sizes_[dense] = side.set_size(static_cast<std::uint32_t>(dense));
  }

  if (pool == nullptr || n < 2 * kBuildChunk) {
    std::vector<std::uint64_t> scratch;
    for (std::size_t dense = 0; dense < n; ++dense) {
      sign_one(side.elements_of(static_cast<std::uint32_t>(dense)), params, scratch,
               set.hashes_.data() + dense * params.k, set.counts_[dense]);
    }
    return set;
  }

  // Shard-parallel build: workers claim chunks of dense ids and write only
  // their own k-strided slots, so the result is byte-identical to the
  // serial loop for every thread count (the pool join publishes writes).
  std::atomic<std::size_t> next{0};
  const std::function<void(unsigned)> job = [&](unsigned) {
    std::vector<std::uint64_t> scratch;
    for (;;) {
      // sp-lint: atomics-ok(work-stealing chunk cursor; claims need no
      // ordering, only uniqueness — the pool join publishes results)
      const std::size_t begin = next.fetch_add(kBuildChunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + kBuildChunk);
      for (std::size_t dense = begin; dense < end; ++dense) {
        sign_one(side.elements_of(static_cast<std::uint32_t>(dense)), params, scratch,
                 set.hashes_.data() + dense * params.k, set.counts_[dense]);
      }
    }
  };
  pool->run(job);
  return set;
}

std::string SignatureSet::serialize() const {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put<std::uint32_t>(out, kVersion);
  put<std::uint32_t>(out, k_);
  put<std::uint64_t>(out, seed_);
  put<std::uint32_t>(out, prefix_count());
  for (std::uint32_t dense = 0; dense < prefix_count(); ++dense) {
    const Prefix& prefix = prefixes_[dense];
    const bool v4 = prefix.family() == Family::v4;
    put<std::uint8_t>(out, v4 ? 4 : 6);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(prefix.length()));
    const auto& storage = prefix.address().storage();
    out.append(reinterpret_cast<const char*>(storage.data()), v4 ? 4 : 16);
    const SignatureView view = of(dense);
    put<std::uint32_t>(out, view.set_size);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(view.hashes.size()));
    for (const std::uint64_t hash : view.hashes) put<std::uint64_t>(out, hash);
  }
  return out;
}

std::optional<SignatureSet> SignatureSet::deserialize(std::string_view blob,
                                                      std::string* error) {
  std::size_t cursor = 0;
  if (blob.size() < sizeof kMagic || std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
    fail(error, "bad magic");
    return std::nullopt;
  }
  cursor += sizeof kMagic;

  std::uint32_t version = 0;
  std::uint32_t k = 0;
  std::uint64_t seed = 0;
  std::uint32_t count = 0;
  if (!get(blob, cursor, version) || !get(blob, cursor, k) || !get(blob, cursor, seed) ||
      !get(blob, cursor, count)) {
    fail(error, "truncated header");
    return std::nullopt;
  }
  if (version != kVersion) {
    fail(error, "unsupported version");
    return std::nullopt;
  }
  if (k == 0 || k > kMaxK) {
    fail(error, "k out of range");
    return std::nullopt;
  }
  // Bound count by what the remaining bytes could possibly hold (each
  // prefix needs ≥ 14 bytes), so a corrupt count cannot drive a huge
  // allocation before the per-prefix reads fail.
  if (static_cast<std::uint64_t>(count) * 14 > blob.size() - cursor) {
    fail(error, "prefix count exceeds blob");
    return std::nullopt;
  }

  SignatureSet set;
  set.k_ = k;
  set.seed_ = seed;
  set.prefixes_.reserve(count);
  set.hashes_.assign(static_cast<std::size_t>(count) * k, 0);
  set.counts_.assign(count, 0);
  set.set_sizes_.assign(count, 0);

  for (std::uint32_t dense = 0; dense < count; ++dense) {
    std::uint8_t family_byte = 0;
    std::uint8_t length = 0;
    if (!get(blob, cursor, family_byte) || !get(blob, cursor, length)) {
      fail(error, "truncated prefix");
      return std::nullopt;
    }
    if (family_byte != 4 && family_byte != 6) {
      fail(error, "bad family byte");
      return std::nullopt;
    }
    const std::size_t address_bytes = family_byte == 4 ? 4 : 16;
    if (blob.size() - cursor < address_bytes) {
      fail(error, "truncated address");
      return std::nullopt;
    }
    IPAddress address;
    if (family_byte == 4) {
      address = IPAddress(IPv4Address::from_octets(
          static_cast<std::uint8_t>(blob[cursor]), static_cast<std::uint8_t>(blob[cursor + 1]),
          static_cast<std::uint8_t>(blob[cursor + 2]),
          static_cast<std::uint8_t>(blob[cursor + 3])));
    } else {
      IPv6Address::Bytes bytes{};
      std::memcpy(bytes.data(), blob.data() + cursor, 16);
      address = IPAddress(IPv6Address(bytes));
    }
    cursor += address_bytes;
    if (length > (family_byte == 4 ? 32 : 128)) {
      fail(error, "prefix length out of range");
      return std::nullopt;
    }
    const Prefix prefix = Prefix::of(address, length);
    // Canonicality: Prefix::of clears host bits; a blob whose address had
    // host bits set would not round-trip, so reject it.
    if (prefix.address() != address) {
      fail(error, "non-canonical prefix (host bits set)");
      return std::nullopt;
    }
    if (dense > 0 && !(set.prefixes_.back() < prefix)) {
      fail(error, "prefixes not strictly ascending");
      return std::nullopt;
    }

    std::uint32_t set_size = 0;
    std::uint32_t m = 0;
    if (!get(blob, cursor, set_size) || !get(blob, cursor, m)) {
      fail(error, "truncated signature header");
      return std::nullopt;
    }
    if (m > k || m > set_size) {
      fail(error, "signature hash count out of bounds");
      return std::nullopt;
    }
    if (set_size <= k && m != set_size) {
      // A set that fits in k must be completely sketched (collisions
      // aside a complete signature has exactly set_size hashes; we accept
      // fewer only for over-k sets where truncation is expected).
      fail(error, "incomplete signature for small set");
      return std::nullopt;
    }
    std::uint64_t* slot = set.hashes_.data() + static_cast<std::size_t>(dense) * k;
    for (std::uint32_t i = 0; i < m; ++i) {
      std::uint64_t hash = 0;
      if (!get(blob, cursor, hash)) {
        fail(error, "truncated hashes");
        return std::nullopt;
      }
      if (i > 0 && hash <= slot[i - 1]) {
        fail(error, "hashes not strictly ascending");
        return std::nullopt;
      }
      slot[i] = hash;
    }
    set.counts_[dense] = m;
    set.set_sizes_[dense] = set_size;
    set.prefixes_.push_back(prefix);
  }
  if (cursor != blob.size()) {
    fail(error, "trailing bytes");
    return std::nullopt;
  }
  return set;
}

}  // namespace sp::sketch
