// SketchEstimator: the bottom-k implementation of core::SimilarityEstimator
// plugged into SP-Tuner (SpTunerConfig::estimator).
//
// Construction walks the corpus once and precomputes a signature for every
// populated host set of both families — exactly the sets SP-Tuner-MS feeds
// back through estimate_union_jaccard — so the cache is immutable after
// the constructor and estimation needs no locking at all (the tuner shares
// one estimator across its worker threads). Sets not found in the cache
// (e.g. the ephemeral covering unions SP-Tuner-LS builds) are sketched on
// the fly from their contents; correctness never depends on a cache hit.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/corpus.h"
#include "core/similarity_estimator.h"
#include "sketch/signature.h"

namespace sp::sketch {

class SketchEstimator final : public core::SimilarityEstimator {
 public:
  /// Precomputes host-set signatures for `corpus`. The corpus must outlive
  /// the estimator (cached signatures are keyed by its set addresses).
  explicit SketchEstimator(const core::DualStackCorpus& corpus, SketchParams params = {});

  [[nodiscard]] double estimate_union_jaccard(
      std::span<const core::DomainSet* const> a,
      std::span<const core::DomainSet* const> b) const override;

  [[nodiscard]] const SketchParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t cached_signatures() const noexcept { return cache_.size(); }

 private:
  struct CachedSignature {
    std::vector<std::uint64_t> hashes;  // sorted distinct bottom-k
    std::uint32_t set_size = 0;
  };
  struct UnionSketch {
    std::vector<std::uint64_t> hashes;
    bool complete = false;
  };

  void cache_set(const core::DomainSet& set);
  [[nodiscard]] UnionSketch sketch_union(std::span<const core::DomainSet* const> sets) const;

  SketchParams params_;
  std::unordered_map<const core::DomainSet*, CachedSignature> cache_;
};

}  // namespace sp::sketch
