#include "sketch/detect_sketch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>

#include "core/detect_parallel.h"
#include "core/detect_scan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sp::sketch {

namespace {

using core::detail::scan_source;

constexpr std::size_t kChunk = 32;  // mirrors ParallelDetector's sharding

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Exact shared-element count of two sorted spans (linear merge; same
/// arithmetic the posting-list scan accumulates per candidate).
std::uint32_t intersection_count(std::span<const core::DomainId> a,
                                 std::span<const core::DomainId> b) noexcept {
  std::uint32_t shared = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

/// Worker-local accumulators, merged after the pool join.
struct Local {
  SketchStats stats;
  std::vector<core::SiblingPair> pairs;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> candidates;  // (dense, hits)
  std::vector<std::uint32_t> lsh_counts;  // dense hit-count scratch
  std::vector<double> estimates;
  core::detail::ScanScratch scratch;

  explicit Local(std::size_t target_prefixes) : scratch(target_prefixes) {}
};

struct Survivor {
  std::uint32_t dense = 0;
  std::uint32_t shared = 0;
  double value = 0.0;
};

}  // namespace

SketchIndex SketchIndex::build(const core::DetectIndex& index, const SketchParams& params,
                               core::WorkerPool* pool) {
  SketchIndex sketch;
  sketch.params_ = params;
  sketch.v4_signatures_ = SignatureSet::build(index.v4, params, pool);
  sketch.v6_signatures_ = SignatureSet::build(index.v6, params, pool);
  sketch.v4_lsh_ = LshIndex::build(sketch.v4_signatures_);
  sketch.v6_lsh_ = LshIndex::build(sketch.v6_signatures_);
  return sketch;
}

SketchDetector::SketchDetector(SketchParams params, unsigned thread_count)
    : params_(params), pool_(thread_count) {}

void SketchDetector::detect_direction(const core::DetectIndex& index,
                                      const SketchIndex& sketch, Family from, core::Metric metric,
                                      std::vector<core::SiblingPair>& out) {
  const Family to = from == Family::v4 ? Family::v6 : Family::v4;
  const core::DetectIndex::Side& from_side = index.side(from);
  const core::DetectIndex::Side& to_side = index.side(to);
  const SignatureSet& from_signatures = sketch.signatures(from);
  const SignatureSet& to_signatures = sketch.signatures(to);
  const LshIndex& to_lsh = sketch.lsh(to);
  const std::uint32_t k = params_.k;
  // Non-Jaccard metrics cannot be ordered by a Jaccard estimate, so every
  // source takes the exact path (correct, but no filtering win).
  const bool use_sketch = metric == core::Metric::Jaccard;

  const std::size_t source_count = from_side.prefix_count();
  const unsigned thread_count = pool_.thread_count();
  std::vector<Local> locals;
  locals.reserve(thread_count);
  for (unsigned worker = 0; worker < thread_count; ++worker) {
    locals.emplace_back(to_side.prefix_count());
  }
  std::atomic<std::size_t> next{0};

  const char* direction = from == Family::v4 ? "sketch.v4" : "sketch.v6";
  const std::function<void(unsigned)> job = [&](unsigned worker) {
    const obs::ScopedSpan span(std::string(direction) + ".shard" + std::to_string(worker),
                               "sketch");
    Local& local = locals[worker];
    std::vector<Survivor> survivors;
    for (;;) {
      // sp-lint: atomics-ok(work-stealing chunk cursor; claims need no
      // ordering, only uniqueness — the pool join publishes results)
      const std::size_t begin = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= source_count) return;
      const std::size_t end = std::min(source_count, begin + kChunk);
      for (std::size_t s = begin; s < end; ++s) {
        const auto source = static_cast<std::uint32_t>(s);
        ++local.stats.sources_total;

        const auto exact_fallback = [&] {
          ++local.stats.sources_fallback;
          scan_source(from_side, to_side, from, metric, source, local.scratch, local.pairs,
                      local.stats.scan);
        };

        if (!use_sketch) {
          exact_fallback();
          continue;
        }
        const SignatureView signature = from_signatures.of(source);
        if (signature.hashes.empty()) {
          // Empty set: the exact scan would touch no candidate either.
          ++local.stats.scan.prefixes_scanned;
          continue;
        }

        to_lsh.candidates_of(signature, local.candidates, local.lsh_counts);
        local.stats.lsh_candidates += local.candidates.size();
        if (local.candidates.empty()) {
          ++local.stats.fallback_no_candidates;
          exact_fallback();
          continue;
        }

        // Process candidates in descending bucket-hit order: the best
        // estimate surfaces early, and every later merge whose hit bound
        // cannot reach the margin is skipped. The skip is conservative —
        // estimate_jaccard counts at most `hits` shared slots over at
        // least min(k, max(|sig_a|, |sig_b|)) union slots, so
        // hits / that floor upper-bounds the estimate. A skipped
        // candidate therefore can neither raise best_estimate nor
        // survive the margin cut, and the survivor set (and the output)
        // is exactly what the unpruned pass would produce.
        std::sort(local.candidates.begin(), local.candidates.end(),
                  [](const auto& a, const auto& b) {
                    return a.second != b.second ? a.second > b.second : a.first < b.first;
                  });
        const auto source_stored = static_cast<std::uint32_t>(signature.hashes.size());
        local.estimates.clear();
        double best_estimate = 0.0;
        for (const auto& [candidate, hits] : local.candidates) {
          const SignatureView candidate_signature = to_signatures.of(candidate);
          const std::uint32_t floor_slots = std::min(
              k, std::max(source_stored,
                          static_cast<std::uint32_t>(candidate_signature.hashes.size())));
          const double upper = static_cast<double>(hits) / floor_slots;
          if (upper + params_.margin < best_estimate) {
            ++local.stats.estimates_skipped;
            local.estimates.push_back(-1.0);  // provably below the margin
            continue;
          }
          const double estimate = estimate_jaccard(signature, candidate_signature, k);
          local.estimates.push_back(estimate);
          best_estimate = std::max(best_estimate, estimate);
        }
        if (best_estimate < params_.fallback_floor) {
          ++local.stats.fallback_low_estimate;
          exact_fallback();
          continue;
        }

        // Exact-verify every candidate within the margin of the best
        // estimate, with the same arithmetic the exact scan uses.
        ++local.stats.scan.prefixes_scanned;
        const auto elements = from_side.elements_of(source);
        survivors.clear();
        double best = 0.0;
        for (std::size_t c = 0; c < local.candidates.size(); ++c) {
          if (local.estimates[c] + params_.margin < best_estimate) continue;
          const std::uint32_t candidate = local.candidates[c].first;
          const std::uint32_t shared =
              intersection_count(elements, to_side.elements_of(candidate));
          const double value = core::similarity_from_sizes(metric, shared, elements.size(),
                                                           to_side.set_size(candidate));
          ++local.stats.survivors_verified;
          ++local.stats.scan.candidates_evaluated;
          local.stats.max_estimate_error =
              std::max(local.stats.max_estimate_error, std::abs(local.estimates[c] - value));
          best = std::max(best, value);
          survivors.push_back({candidate, shared, value});
        }
        if (best < params_.fallback_floor) {
          // The verified best is inside the regime where an LSH miss or an
          // estimate inversion is conceivable — rerun exactly.
          ++local.stats.fallback_low_exact;
          exact_fallback();
          continue;
        }

        const bool from_v4 = from == Family::v4;
        const Prefix& source_prefix = from_side.prefixes[source];
        const auto source_size = static_cast<std::uint32_t>(elements.size());
        for (const Survivor& survivor : survivors) {
          if (survivor.value + core::detail::kTieEpsilon < best) continue;
          const Prefix& candidate_prefix = to_side.prefixes[survivor.dense];
          const std::uint32_t candidate_size = to_side.set_size(survivor.dense);
          core::SiblingPair pair;
          pair.v4 = from_v4 ? source_prefix : candidate_prefix;
          pair.v6 = from_v4 ? candidate_prefix : source_prefix;
          pair.similarity = survivor.value;
          pair.shared_domains = survivor.shared;
          pair.v4_domain_count = from_v4 ? source_size : candidate_size;
          pair.v6_domain_count = from_v4 ? candidate_size : source_size;
          local.pairs.push_back(pair);
          ++local.stats.scan.pairs_emitted;
        }
      }
    }
  };
  pool_.run(job);

  for (Local& local : locals) {
    out.insert(out.end(), local.pairs.begin(), local.pairs.end());
    stats_.scan.prefixes_scanned += local.stats.scan.prefixes_scanned;
    stats_.scan.candidates_evaluated += local.stats.scan.candidates_evaluated;
    stats_.scan.pairs_emitted += local.stats.scan.pairs_emitted;
    stats_.sources_total += local.stats.sources_total;
    stats_.sources_fallback += local.stats.sources_fallback;
    stats_.fallback_no_candidates += local.stats.fallback_no_candidates;
    stats_.fallback_low_estimate += local.stats.fallback_low_estimate;
    stats_.fallback_low_exact += local.stats.fallback_low_exact;
    stats_.lsh_candidates += local.stats.lsh_candidates;
    stats_.estimates_skipped += local.stats.estimates_skipped;
    stats_.survivors_verified += local.stats.survivors_verified;
    stats_.max_estimate_error =
        std::max(stats_.max_estimate_error, local.stats.max_estimate_error);
  }
}

std::vector<core::SiblingPair> SketchDetector::detect(const core::DetectIndex& index,
                                                      const core::DetectOptions& options) {
  auto& registry = obs::MetricsRegistry::global();
  const auto run_start = std::chrono::steady_clock::now();
  stats_ = SketchStats{};
  stats_.scan.threads_used = pool_.thread_count();

  const auto signature_start = std::chrono::steady_clock::now();
  const SketchIndex sketch = SketchIndex::build(index, params_, &pool_);
  stats_.signature_build_ms = elapsed_ms(signature_start);

  std::vector<core::SiblingPair> pairs;
  {
    const auto start = std::chrono::steady_clock::now();
    detect_direction(index, sketch, Family::v4, options.metric, pairs);
    stats_.scan.v4_direction_ms = elapsed_ms(start);
  }
  {
    const auto start = std::chrono::steady_clock::now();
    detect_direction(index, sketch, Family::v6, options.metric, pairs);
    stats_.scan.v6_direction_ms = elapsed_ms(start);
  }

  // Same global merge as the exact engine: order and dedup match exactly.
  const auto merge_start = std::chrono::steady_clock::now();
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  stats_.scan.merge_ms = elapsed_ms(merge_start);

  // Registry updates once per run: candidate-filter selectivity, estimate
  // error and exact-verify rate, per the observability contract.
  registry.counter("sketch.runs").add();
  registry.counter("sketch.sources").add(static_cast<std::int64_t>(stats_.sources_total));
  registry.counter("sketch.sources_fallback")
      .add(static_cast<std::int64_t>(stats_.sources_fallback));
  registry.counter("sketch.lsh_candidates")
      .add(static_cast<std::int64_t>(stats_.lsh_candidates));
  registry.counter("sketch.estimates_skipped")
      .add(static_cast<std::int64_t>(stats_.estimates_skipped));
  registry.counter("sketch.survivors_verified")
      .add(static_cast<std::int64_t>(stats_.survivors_verified));
  registry.counter("sketch.pairs_emitted").add(static_cast<std::int64_t>(pairs.size()));
  registry.histogram("sketch.estimate_error_ppm")
      .record(static_cast<std::uint64_t>(stats_.max_estimate_error * 1e6));
  registry.histogram("sketch.run_us")
      .record(static_cast<std::uint64_t>(elapsed_ms(run_start) * 1000.0));
  return pairs;
}

namespace {

std::vector<core::SiblingPair> detect_dispatch(const core::DetectIndex& index,
                                               const core::DetectOptions& options,
                                               const SketchParams& params,
                                               SketchStats* stats_out) {
  if (options.strategy == core::DetectStrategy::Exact) {
    core::ParallelDetector detector(options.threads);
    auto pairs = detector.detect(index, options);
    if (options.stats != nullptr) *options.stats = detector.stats();
    return pairs;
  }
  SketchDetector detector(params, options.threads);
  auto pairs = detector.detect(index, options);
  if (stats_out != nullptr) *stats_out = detector.stats();
  if (options.stats != nullptr) *options.stats = detector.stats().scan;
  return pairs;
}

}  // namespace

std::vector<core::SiblingPair> detect_sibling_prefixes(const core::DualStackCorpus& corpus,
                                                       const core::DetectOptions& options,
                                                       const SketchParams& params,
                                                       SketchStats* stats_out) {
  return detect_dispatch(corpus.detect_index(), options, params, stats_out);
}

std::vector<core::SiblingPair> detect_sibling_prefixes(const core::SetCorpus& corpus,
                                                       const core::DetectOptions& options,
                                                       const SketchParams& params,
                                                       SketchStats* stats_out) {
  return detect_dispatch(corpus.detect_index(), options, params, stats_out);
}

}  // namespace sp::sketch
