#include "sketch/detect_sketch.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "core/detect_parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sp::sketch {

namespace {

constexpr std::size_t kChunk = 32;  // mirrors ParallelDetector's sharding

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Worker-local accumulators, merged after the pool join. The per-source
/// scan itself lives in sketch/scan_sketch.h, shared with sp::stream.
struct Local {
  SketchStats stats;
  std::vector<core::SiblingPair> pairs;
  SketchScanScratch scan;

  explicit Local(std::size_t target_prefixes) : scan(target_prefixes) {}
};

}  // namespace

SketchIndex SketchIndex::build(const core::DetectIndex& index, const SketchParams& params,
                               core::WorkerPool* pool) {
  SketchIndex sketch;
  sketch.params_ = params;
  sketch.v4_signatures_ = SignatureSet::build(index.v4, params, pool);
  sketch.v6_signatures_ = SignatureSet::build(index.v6, params, pool);
  sketch.v4_lsh_ = LshIndex::build(sketch.v4_signatures_);
  sketch.v6_lsh_ = LshIndex::build(sketch.v6_signatures_);
  return sketch;
}

SketchDetector::SketchDetector(SketchParams params, unsigned thread_count)
    : params_(params), pool_(thread_count) {}

void SketchDetector::detect_direction(const core::DetectIndex& index,
                                      const SketchIndex& sketch, Family from, core::Metric metric,
                                      std::vector<core::SiblingPair>& out) {
  const Family to = from == Family::v4 ? Family::v6 : Family::v4;
  const core::DetectIndex::Side& from_side = index.side(from);
  const core::DetectIndex::Side& to_side = index.side(to);
  const SignatureSet& from_signatures = sketch.signatures(from);
  const SignatureSet& to_signatures = sketch.signatures(to);
  const LshIndex& to_lsh = sketch.lsh(to);

  const std::size_t source_count = from_side.prefix_count();
  const unsigned thread_count = pool_.thread_count();
  std::vector<Local> locals;
  locals.reserve(thread_count);
  for (unsigned worker = 0; worker < thread_count; ++worker) {
    locals.emplace_back(to_side.prefix_count());
  }
  std::atomic<std::size_t> next{0};

  const char* direction = from == Family::v4 ? "sketch.v4" : "sketch.v6";
  const std::function<void(unsigned)> job = [&](unsigned worker) {
    const obs::ScopedSpan span(std::string(direction) + ".shard" + std::to_string(worker),
                               "sketch");
    Local& local = locals[worker];
    for (;;) {
      // sp-lint: atomics-ok(work-stealing chunk cursor; claims need no
      // ordering, only uniqueness — the pool join publishes results)
      const std::size_t begin = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= source_count) return;
      const std::size_t end = std::min(source_count, begin + kChunk);
      for (std::size_t s = begin; s < end; ++s) {
        scan_source_sketch(from_side, to_side, from_signatures, to_signatures, to_lsh, params_,
                           from, metric, static_cast<std::uint32_t>(s), local.scan, local.pairs,
                           local.stats);
      }
    }
  };
  pool_.run(job);

  for (Local& local : locals) {
    out.insert(out.end(), local.pairs.begin(), local.pairs.end());
    stats_.scan.prefixes_scanned += local.stats.scan.prefixes_scanned;
    stats_.scan.candidates_evaluated += local.stats.scan.candidates_evaluated;
    stats_.scan.pairs_emitted += local.stats.scan.pairs_emitted;
    stats_.sources_total += local.stats.sources_total;
    stats_.sources_fallback += local.stats.sources_fallback;
    stats_.fallback_no_candidates += local.stats.fallback_no_candidates;
    stats_.fallback_low_estimate += local.stats.fallback_low_estimate;
    stats_.fallback_low_exact += local.stats.fallback_low_exact;
    stats_.lsh_candidates += local.stats.lsh_candidates;
    stats_.estimates_skipped += local.stats.estimates_skipped;
    stats_.survivors_verified += local.stats.survivors_verified;
    stats_.max_estimate_error =
        std::max(stats_.max_estimate_error, local.stats.max_estimate_error);
  }
}

std::vector<core::SiblingPair> SketchDetector::detect(const core::DetectIndex& index,
                                                      const core::DetectOptions& options) {
  auto& registry = obs::MetricsRegistry::global();
  const auto run_start = std::chrono::steady_clock::now();
  stats_ = SketchStats{};
  stats_.scan.threads_used = pool_.thread_count();

  const auto signature_start = std::chrono::steady_clock::now();
  const SketchIndex sketch = SketchIndex::build(index, params_, &pool_);
  stats_.signature_build_ms = elapsed_ms(signature_start);

  std::vector<core::SiblingPair> pairs;
  {
    const auto start = std::chrono::steady_clock::now();
    detect_direction(index, sketch, Family::v4, options.metric, pairs);
    stats_.scan.v4_direction_ms = elapsed_ms(start);
  }
  {
    const auto start = std::chrono::steady_clock::now();
    detect_direction(index, sketch, Family::v6, options.metric, pairs);
    stats_.scan.v6_direction_ms = elapsed_ms(start);
  }

  // Same global merge as the exact engine: order and dedup match exactly.
  const auto merge_start = std::chrono::steady_clock::now();
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  stats_.scan.merge_ms = elapsed_ms(merge_start);

  // Registry updates once per run: candidate-filter selectivity, estimate
  // error and exact-verify rate, per the observability contract.
  registry.counter("sketch.runs").add();
  registry.counter("sketch.sources").add(static_cast<std::int64_t>(stats_.sources_total));
  registry.counter("sketch.sources_fallback")
      .add(static_cast<std::int64_t>(stats_.sources_fallback));
  registry.counter("sketch.lsh_candidates")
      .add(static_cast<std::int64_t>(stats_.lsh_candidates));
  registry.counter("sketch.estimates_skipped")
      .add(static_cast<std::int64_t>(stats_.estimates_skipped));
  registry.counter("sketch.survivors_verified")
      .add(static_cast<std::int64_t>(stats_.survivors_verified));
  registry.counter("sketch.pairs_emitted").add(static_cast<std::int64_t>(pairs.size()));
  registry.histogram("sketch.estimate_error_ppm")
      .record(static_cast<std::uint64_t>(stats_.max_estimate_error * 1e6));
  registry.histogram("sketch.run_us")
      .record(static_cast<std::uint64_t>(elapsed_ms(run_start) * 1000.0));
  return pairs;
}

namespace {

std::vector<core::SiblingPair> detect_dispatch(const core::DetectIndex& index,
                                               const core::DetectOptions& options,
                                               const SketchParams& params,
                                               SketchStats* stats_out) {
  if (options.strategy == core::DetectStrategy::Exact) {
    core::ParallelDetector detector(options.threads);
    auto pairs = detector.detect(index, options);
    if (options.stats != nullptr) *options.stats = detector.stats();
    return pairs;
  }
  SketchDetector detector(params, options.threads);
  auto pairs = detector.detect(index, options);
  if (stats_out != nullptr) *stats_out = detector.stats();
  if (options.stats != nullptr) *options.stats = detector.stats().scan;
  return pairs;
}

}  // namespace

std::vector<core::SiblingPair> detect_sibling_prefixes(const core::DualStackCorpus& corpus,
                                                       const core::DetectOptions& options,
                                                       const SketchParams& params,
                                                       SketchStats* stats_out) {
  return detect_dispatch(corpus.detect_index(), options, params, stats_out);
}

std::vector<core::SiblingPair> detect_sibling_prefixes(const core::SetCorpus& corpus,
                                                       const core::DetectOptions& options,
                                                       const SketchParams& params,
                                                       SketchStats* stats_out) {
  return detect_dispatch(corpus.detect_index(), options, params, stats_out);
}

}  // namespace sp::sketch
