#include "sketch/estimator.h"

#include <algorithm>

#include "sketch/hash.h"

namespace sp::sketch {

namespace {

/// Bottom-k of one set's element hashes: sorted distinct, ≤ k entries.
std::vector<std::uint64_t> bottom_k(const core::DomainSet& set, const SketchParams& params) {
  std::vector<std::uint64_t> hashes;
  hashes.reserve(set.size());
  for (const core::DomainId element : set) {
    hashes.push_back(element_hash(element, params.seed));
  }
  const std::size_t keep = std::min<std::size_t>(params.k, hashes.size());
  std::partial_sort(hashes.begin(), hashes.begin() + static_cast<std::ptrdiff_t>(keep),
                    hashes.end());
  hashes.resize(keep);
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  return hashes;
}

}  // namespace

SketchEstimator::SketchEstimator(const core::DualStackCorpus& corpus, SketchParams params)
    : params_(params) {
  // Register every populated host set of both families: these are the set
  // addresses SP-Tuner-MS items point at, so its estimates are all cache
  // hits. Insertion happens only here; the map is read-only afterwards,
  // which is what makes estimate_union_jaccard safe to share across the
  // tuner's threads without a lock.
  for (const Family family : {Family::v4, Family::v6}) {
    for (const auto& [prefix, domains] : corpus.prefix_domains(family)) {
      for (const auto& host : corpus.hosts_of(prefix)) {
        cache_set(host.domains);
      }
    }
  }
}

void SketchEstimator::cache_set(const core::DomainSet& set) {
  CachedSignature& cached = cache_[&set];
  cached.hashes = bottom_k(set, params_);
  cached.set_size = static_cast<std::uint32_t>(set.size());
}

SketchEstimator::UnionSketch SketchEstimator::sketch_union(
    std::span<const core::DomainSet* const> sets) const {
  UnionSketch result;
  // Gather every member's signature (cached or computed), then keep the k
  // smallest distinct union hashes. The union signature is complete —
  // holds every union element's hash — iff all members are complete and
  // nothing was truncated.
  bool members_complete = true;
  std::vector<std::uint64_t> merged;
  for (const core::DomainSet* set : sets) {
    const auto it = cache_.find(set);
    if (it != cache_.end()) {
      merged.insert(merged.end(), it->second.hashes.begin(), it->second.hashes.end());
      if (it->second.set_size > params_.k) members_complete = false;
    } else {
      const auto hashes = bottom_k(*set, params_);
      if (set->size() > params_.k) members_complete = false;
      merged.insert(merged.end(), hashes.begin(), hashes.end());
    }
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  result.complete = members_complete && merged.size() <= params_.k;
  if (merged.size() > params_.k) merged.resize(params_.k);
  result.hashes = std::move(merged);
  return result;
}

double SketchEstimator::estimate_union_jaccard(
    std::span<const core::DomainSet* const> a,
    std::span<const core::DomainSet* const> b) const {
  const UnionSketch sa = sketch_union(a);
  const UnionSketch sb = sketch_union(b);
  // estimate_jaccard switches to the exact full-merge mode when both
  // views are complete; set_size only feeds that check, so a complete
  // union reports its hash count and an incomplete one anything > k.
  const SignatureView va{sa.hashes,
                         sa.complete ? static_cast<std::uint32_t>(sa.hashes.size())
                                     : params_.k + 1};
  const SignatureView vb{sb.hashes,
                         sb.complete ? static_cast<std::uint32_t>(sb.hashes.size())
                                     : params_.k + 1};
  return estimate_jaccard(va, vb, params_.k);
}

}  // namespace sp::sketch
