// Umbrella header: the whole sibling-prefixes library with one include.
//
//   #include "sp.h"
//
// Pulls in the public API of every module. Prefer the per-module headers
// in translation units that only need one subsystem; this header exists
// for quick experiments, examples, and downstream prototypes.
#pragma once

// Foundations.
#include "netbase/date.h"
#include "netbase/ip.h"
#include "netbase/prefix.h"
#include "netbase/prefix_set.h"
#include "trie/flat_lpm.h"
#include "trie/prefix_trie.h"

// Substrates.
#include "alias/ipid.h"
#include "asinfo/as_org.h"
#include "asinfo/asdb.h"
#include "asinfo/asinfo_csv.h"
#include "asinfo/cdn_hg.h"
#include "bgp/rib.h"
#include "dns/name.h"
#include "dns/record.h"
#include "dns/resolver.h"
#include "dns/snapshot.h"
#include "dns/wire.h"
#include "dns/zone.h"
#include "dns/zonefile.h"
#include "he/happy_eyeballs.h"
#include "mrt/codec.h"
#include "mrt/file.h"
#include "mrt/types.h"
#include "rpki/roa_csv.h"
#include "rpki/rov.h"
#include "scan/portscan.h"

// The paper's contribution.
#include "core/corpus.h"
#include "core/detect.h"
#include "core/domain_set.h"
#include "core/groundtruth.h"
#include "core/longitudinal.h"
#include "core/portscan_compare.h"
#include "core/probes_io.h"
#include "core/sibling_diff.h"
#include "core/sibling_list_io.h"
#include "core/sibling_sets.h"
#include "core/similarity.h"
#include "core/sptuner.h"

// Serving the published lists.
#include "serve/lookup.h"
#include "serve/service.h"
#include "serve/sibdb.h"

// The longitudinal campaign runner.
#include "pipeline/campaign.h"
#include "pipeline/checkpoint.h"
#include "pipeline/manifest.h"
#include "pipeline/stage_graph.h"

// Synthetic data, analysis and I/O.
#include "analysis/stats.h"
#include "analysis/table.h"
#include "io/csv.h"
#include "io/snapshot_csv.h"
#include "synth/universe.h"
