#include "he/happy_eyeballs.h"

#include <algorithm>
#include <limits>

namespace sp::he {

std::vector<Endpoint> interleave(const std::vector<Endpoint>& v6,
                                 const std::vector<Endpoint>& v4, bool prefer_ipv6) {
  const std::vector<Endpoint>& first = prefer_ipv6 ? v6 : v4;
  const std::vector<Endpoint>& second = prefer_ipv6 ? v4 : v6;
  std::vector<Endpoint> out;
  out.reserve(first.size() + second.size());
  for (std::size_t i = 0; i < std::max(first.size(), second.size()); ++i) {
    if (i < first.size()) out.push_back(first[i]);
    if (i < second.size()) out.push_back(second[i]);
  }
  return out;
}

Outcome race_ordered(const std::vector<Endpoint>& candidates, const HeConfig& config) {
  Outcome outcome;
  double next_start = 0.0;
  // Best completion so far, not the deadline: the deadline gate is
  // attempt.success (`done <= overall_timeout_ms`, inclusive), so a
  // connect landing exactly on the deadline wins like any other.
  double best_success = std::numeric_limits<double>::infinity();
  std::optional<IPAddress> best_address;

  for (const Endpoint& endpoint : candidates) {
    const double start = next_start;
    if (start >= best_success || start >= config.overall_timeout_ms) break;

    Attempt attempt;
    attempt.address = endpoint.address;
    attempt.start_ms = start;

    if (endpoint.reachable) {
      const double done = start + endpoint.rtt_ms;
      attempt.success = done <= config.overall_timeout_ms;
      if (attempt.success) {
        attempt.end_ms = done;
        if (done < best_success) {
          best_success = done;
          best_address = endpoint.address;
        }
      }
      // A pending (eventually successful) attempt does not accelerate the
      // next start: the next candidate starts one attempt delay later.
      next_start = start + config.connection_attempt_delay_ms;
    } else if (endpoint.failure_mode == FailureMode::Refused) {
      // Visible failure: the next attempt starts immediately on failure
      // detection (RFC 8305 section 5), or at the attempt delay, whichever
      // comes first.
      const double failed = start + endpoint.rtt_ms;
      attempt.end_ms = failed;
      next_start = std::min(failed, start + config.connection_attempt_delay_ms);
    } else {
      // Silent drop: nothing to observe; only the attempt delay moves us on.
      next_start = start + config.connection_attempt_delay_ms;
    }
    outcome.attempts.push_back(attempt);
  }

  if (best_address) {
    outcome.winner = best_address;
    outcome.connect_time_ms = best_success;
    // Drop attempts that would have started after the winner connected.
    std::erase_if(outcome.attempts, [&](const Attempt& attempt) {
      return attempt.start_ms >= best_success && attempt.address != *best_address;
    });
  }
  return outcome;
}

Outcome race(const std::vector<Endpoint>& v6, const std::vector<Endpoint>& v4,
             const HeConfig& config) {
  // RFC 8305 section 3: when the preferred family produced no addresses,
  // the stack waited the resolution delay before proceeding with the other
  // family; shift all starts by that amount.
  const bool preferred_empty = config.prefer_ipv6 ? v6.empty() : v4.empty();
  const auto candidates = interleave(v6, v4, config.prefer_ipv6);
  Outcome outcome = race_ordered(candidates, config);
  if (preferred_empty && !candidates.empty()) {
    for (Attempt& attempt : outcome.attempts) {
      attempt.start_ms += config.resolution_delay_ms;
      if (attempt.end_ms) *attempt.end_ms += config.resolution_delay_ms;
    }
    if (outcome.winner) outcome.connect_time_ms += config.resolution_delay_ms;

    // race_ordered validated the deadline against unshifted times; the
    // shift can push attempts past it. Re-enforce: attempts that would
    // start at/after the deadline never happen, completions past it are
    // not successes (finishing exactly at the deadline still counts), and
    // a winner is revoked with them.
    std::erase_if(outcome.attempts, [&](const Attempt& attempt) {
      return attempt.start_ms >= config.overall_timeout_ms;
    });
    for (Attempt& attempt : outcome.attempts) {
      if (attempt.end_ms && *attempt.end_ms > config.overall_timeout_ms) {
        attempt.success = false;
        attempt.end_ms.reset();
      }
    }
    if (outcome.winner && outcome.connect_time_ms > config.overall_timeout_ms) {
      outcome.winner.reset();
      outcome.connect_time_ms = 0.0;
    }
  }
  return outcome;
}

}  // namespace sp::he
