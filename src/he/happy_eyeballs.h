// Happy Eyeballs v2 (RFC 8305) connection racing, as a deterministic
// simulator.
//
// The paper motivates sibling prefixes with dual-stack operational
// consistency: clients race IPv6 against IPv4, so a policy applied to only
// one family does not block a service — Happy Eyeballs silently shifts
// the traffic to the other family. This module makes that effect
// computable: given candidate endpoints with per-family reachability and
// RTTs, it plays out the RFC 8305 algorithm (address interleaving,
// resolution delay, connection attempt delay, failure acceleration) and
// reports which endpoint wins.
#pragma once

#include <optional>
#include <vector>

#include "netbase/ip.h"

namespace sp::he {

/// How a blocked/unreachable endpoint fails.
enum class FailureMode : std::uint8_t {
  Silent,   // packets dropped: the attempt never completes
  Refused,  // active rejection: failure visible after one RTT
};

/// One candidate connection endpoint.
struct Endpoint {
  IPAddress address;
  double rtt_ms = 50.0;       // connection establishment time when reachable
  bool reachable = true;
  FailureMode failure_mode = FailureMode::Silent;
};

struct HeConfig {
  /// RFC 8305 section 3: how long to wait for AAAA answers before starting
  /// with IPv4-only candidates.
  double resolution_delay_ms = 50.0;
  /// RFC 8305 section 5: delay between successive connection attempts.
  double connection_attempt_delay_ms = 250.0;
  /// Give up when nothing connected by this time.
  double overall_timeout_ms = 10000.0;
  /// RFC 8305 section 4: first address family to try.
  bool prefer_ipv6 = true;
};

struct Attempt {
  IPAddress address;
  double start_ms = 0.0;
  /// Completion (success) or failure-detection time; unset for attempts
  /// that never conclude within the timeout.
  std::optional<double> end_ms;
  bool success = false;
};

struct Outcome {
  /// The endpoint that won the race, if any connected before the timeout.
  std::optional<IPAddress> winner;
  double connect_time_ms = 0.0;  // meaningful only when winner is set
  /// Attempts actually started, in start order (later candidates are
  /// cancelled once a winner is known).
  std::vector<Attempt> attempts;

  [[nodiscard]] bool connected() const noexcept { return winner.has_value(); }
  [[nodiscard]] bool used_ipv6() const noexcept { return winner && winner->is_v6(); }
};

/// Builds the RFC 8305 section-4 candidate order: families interleaved,
/// starting with the preferred one.
[[nodiscard]] std::vector<Endpoint> interleave(const std::vector<Endpoint>& v6,
                                               const std::vector<Endpoint>& v4,
                                               bool prefer_ipv6);

/// Runs the race over already-ordered candidates.
[[nodiscard]] Outcome race_ordered(const std::vector<Endpoint>& candidates,
                                   const HeConfig& config = {});

/// Convenience: interleaves per RFC 8305 and races. When the preferred
/// family has no candidates, the other family starts after the resolution
/// delay (the "wait for AAAA" behaviour).
[[nodiscard]] Outcome race(const std::vector<Endpoint>& v6, const std::vector<Endpoint>& v4,
                           const HeConfig& config = {});

}  // namespace sp::he
