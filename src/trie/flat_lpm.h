// DIR-24-8 flat-table longest-prefix match for IPv4 (Gupta et al. style).
//
// A design alternative to the Patricia trie for the hottest pipeline
// operation (address → announced prefix): one 2^24-entry level-1 table
// indexed by the top 24 address bits, with overflow chunks of 256 entries
// for prefixes longer than /24. Lookups are one or two array reads —
// O(1) versus the trie's O(W) pointer chase — at the cost of ~32 MiB of
// table memory and a rebuild-oriented (insert-only) interface.
//
// bench_ablation_lpm quantifies the trade-off; the library default stays
// the trie because sibling workloads are build-heavy and both families
// share one structure.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/prefix.h"

namespace sp {

template <typename T>
class FlatLpm4 {
 public:
  FlatLpm4() : level1_(1u << 24, kEmpty) {}

  /// Inserts a v4 prefix. Longer prefixes overwrite shorter ones on the
  /// covered slots (insert from short to long for correct LPM semantics —
  /// insert() handles any order by tracking each slot's current length).
  void insert(const Prefix& prefix, T value) {
    values_.push_back(std::move(value));
    const auto value_index = static_cast<std::uint32_t>(values_.size() - 1);
    const std::uint32_t address = prefix.address().v4().value();
    const unsigned length = prefix.length();
    ++size_;

    if (length <= 24) {
      const std::uint32_t first = address >> 8;
      const std::uint32_t count = 1u << (24 - length);
      for (std::uint32_t slot = first; slot < first + count; ++slot) {
        overwrite_level1(slot, length, value_index);
      }
      return;
    }

    // Longer than /24: route the level-1 slot to an overflow chunk.
    const std::uint32_t slot = address >> 8;
    std::uint32_t chunk_index;
    if (level1_[slot] != kEmpty && (level1_[slot] & kChunkBit) != 0) {
      chunk_index = level1_[slot] & kIndexMask;
    } else {
      chunk_index = static_cast<std::uint32_t>(chunks_.size());
      chunks_.push_back(Chunk{});
      Chunk& chunk = chunks_.back();
      // Seed the chunk with the slot's current shorter-prefix entry.
      chunk.fallback = level1_[slot];
      chunk.fallback_length = level1_length_[slot];
      level1_[slot] = kChunkBit | chunk_index;
      level1_length_[slot] = 25;  // chunk markers win over any ≤/24 insert
    }
    Chunk& chunk = chunks_[chunk_index];
    const std::uint32_t first = address & 0xFF;
    const std::uint32_t count = 1u << (32 - length);
    for (std::uint32_t offset = first; offset < first + count; ++offset) {
      if (length >= chunk.lengths[offset]) {
        chunk.entries[offset] = value_index;
        chunk.lengths[offset] = static_cast<std::uint8_t>(length);
      }
    }
  }

  /// Longest-prefix match; nullptr when nothing covers the address.
  [[nodiscard]] const T* lookup(IPv4Address address) const noexcept {
    const std::uint32_t slot = address.value() >> 8;
    const std::uint32_t entry = level1_[slot];
    if (entry == kEmpty) return nullptr;
    if ((entry & kChunkBit) == 0) return &values_[entry];
    const Chunk& chunk = chunks_[entry & kIndexMask];
    const std::uint32_t offset = address.value() & 0xFF;
    if (chunk.lengths[offset] != 0) return &values_[chunk.entries[offset]];
    if (chunk.fallback != kEmpty && (chunk.fallback & kChunkBit) == 0) {
      return &values_[chunk.fallback];
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::uint32_t kChunkBit = 0x80000000u;
  static constexpr std::uint32_t kIndexMask = 0x7FFFFFFFu;

  struct Chunk {
    std::array<std::uint32_t, 256> entries{};
    std::array<std::uint8_t, 256> lengths{};  // 0 = empty
    std::uint32_t fallback = kEmpty;          // the slot's ≤/24 entry
    std::uint8_t fallback_length = 0;
  };

  void overwrite_level1(std::uint32_t slot, unsigned length, std::uint32_t value_index) {
    if ((level1_[slot] & kChunkBit) != 0 && level1_[slot] != kEmpty) {
      // Slot routed to a chunk: update the chunk's fallback instead.
      Chunk& chunk = chunks_[level1_[slot] & kIndexMask];
      if (length >= chunk.fallback_length) {
        chunk.fallback = value_index;
        chunk.fallback_length = static_cast<std::uint8_t>(length);
      }
      return;
    }
    if (level1_[slot] == kEmpty || length >= level1_length_[slot]) {
      level1_[slot] = value_index;
      level1_length_[slot] = static_cast<std::uint8_t>(length);
    }
  }

  std::vector<std::uint32_t> level1_;
  std::vector<std::uint8_t> level1_length_ = std::vector<std::uint8_t>(1u << 24, 0);
  std::vector<Chunk> chunks_;
  std::vector<T> values_;
  std::size_t size_ = 0;
};

}  // namespace sp
