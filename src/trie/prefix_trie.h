// A path-compressed binary (Patricia) trie keyed by sp::Prefix.
//
// This is the library's replacement for the PyTricia structure the paper
// uses: it stores values under CIDR prefixes of either family (one internal
// root per family) and supports exact lookup, longest-prefix match, subtree
// enumeration and erasure. Join nodes created by path compression carry no
// value and are pruned on erase.
//
// Complexity: all single-key operations are O(W) with W the address width
// (32/128); subtree walks are linear in the number of visited nodes.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "netbase/prefix.h"

namespace sp {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie()
      : root_v4_(std::make_unique<Node>(Prefix::of(IPAddress(IPv4Address{}), 0))),
        root_v6_(std::make_unique<Node>(Prefix::of(IPAddress(IPv6Address{}), 0))) {}

  PrefixTrie(PrefixTrie&&) noexcept = default;
  PrefixTrie& operator=(PrefixTrie&&) noexcept = default;
  PrefixTrie(const PrefixTrie&) = delete;
  PrefixTrie& operator=(const PrefixTrie&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Inserts or overwrites the value stored at `key`. Returns a reference
  /// to the stored value.
  T& insert(const Prefix& key, T value) {
    Node* node = locate_or_create(key);
    if (!node->value) ++size_;
    node->value = std::move(value);
    return *node->value;
  }

  /// Returns the value at `key` if present, creating a default one if not.
  T& operator[](const Prefix& key) {
    Node* node = locate_or_create(key);
    if (!node->value) {
      node->value.emplace();
      ++size_;
    }
    return *node->value;
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* find(const Prefix& key) const noexcept {
    const Node* node = locate(key);
    return (node && node->value) ? &*node->value : nullptr;
  }

  [[nodiscard]] T* find(const Prefix& key) noexcept {
    return const_cast<T*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] bool contains(const Prefix& key) const noexcept { return find(key) != nullptr; }

  /// Longest-prefix match: the most specific stored prefix covering `key`
  /// (the key itself qualifies). Returns nullopt when nothing covers it.
  [[nodiscard]] std::optional<std::pair<Prefix, const T*>> longest_match(
      const Prefix& key) const noexcept {
    const Node* node = root_for(key.family());
    std::optional<std::pair<Prefix, const T*>> best;
    while (node != nullptr && node->prefix.contains(key)) {
      if (node->value) best.emplace(node->prefix, &*node->value);
      if (node->prefix.length() >= key.length()) break;
      node = node->children[key.address().bit(node->prefix.length()) ? 1 : 0].get();
    }
    return best;
  }

  /// Longest-prefix match for a single address.
  [[nodiscard]] std::optional<std::pair<Prefix, const T*>> longest_match(
      const IPAddress& address) const noexcept {
    return longest_match(Prefix::host(address));
  }

  /// Most specific stored *proper* ancestor of `key` (never `key` itself).
  [[nodiscard]] std::optional<std::pair<Prefix, const T*>> parent(
      const Prefix& key) const noexcept {
    const Node* node = root_for(key.family());
    std::optional<std::pair<Prefix, const T*>> best;
    while (node != nullptr && node->prefix.contains(key) && node->prefix.length() < key.length()) {
      if (node->value) best.emplace(node->prefix, &*node->value);
      node = node->children[key.address().bit(node->prefix.length()) ? 1 : 0].get();
    }
    return best;
  }

  /// Visits every stored (prefix, value) pair whose prefix covers `key`
  /// (the exact key included), from least to most specific.
  void visit_ancestors(const Prefix& key,
                       const std::function<void(const Prefix&, const T&)>& visit) const {
    const Node* node = root_for(key.family());
    while (node != nullptr && node->prefix.contains(key)) {
      if (node->value) visit(node->prefix, *node->value);
      if (node->prefix.length() >= key.length()) break;
      node = node->children[key.address().bit(node->prefix.length()) ? 1 : 0].get();
    }
  }

  /// Visits every stored (prefix, value) pair covered by `cover`,
  /// including `cover` itself, in prefix order.
  void visit_covered(const Prefix& cover,
                     const std::function<void(const Prefix&, const T&)>& visit) const {
    const Node* node = root_for(cover.family());
    // Descend to the subtree region covering `cover`.
    while (node != nullptr && node->prefix.length() < cover.length()) {
      if (!node->prefix.contains(cover)) return;
      node = node->children[cover.address().bit(node->prefix.length()) ? 1 : 0].get();
    }
    if (node == nullptr || !cover.contains(node->prefix)) return;
    visit_subtree(node, visit);
  }

  /// Visits every stored pair of both families in prefix order.
  void visit_all(const std::function<void(const Prefix&, const T&)>& visit) const {
    visit_subtree(root_v4_.get(), visit);
    visit_subtree(root_v6_.get(), visit);
  }

  /// All stored prefixes covered by `cover` (including an exact match).
  [[nodiscard]] std::vector<Prefix> covered_keys(const Prefix& cover) const {
    std::vector<Prefix> keys;
    visit_covered(cover, [&keys](const Prefix& p, const T&) { keys.push_back(p); });
    return keys;
  }

  /// All stored prefixes in prefix order.
  [[nodiscard]] std::vector<Prefix> keys() const {
    std::vector<Prefix> out;
    out.reserve(size_);
    visit_all([&out](const Prefix& p, const T&) { out.push_back(p); });
    return out;
  }

  /// Removes the value stored at `key`. Returns true when a value was
  /// removed. Valueless join chains left behind are pruned.
  bool erase(const Prefix& key) {
    Node* node = root_for(key.family());
    std::vector<Node*> path;  // ancestors of the located node
    while (node != nullptr && node->prefix.length() < key.length() &&
           node->prefix.contains(key)) {
      path.push_back(node);
      node = node->children[key.address().bit(node->prefix.length()) ? 1 : 0].get();
    }
    if (node == nullptr || node->prefix != key || !node->value) return false;
    node->value.reset();
    --size_;
    prune(node, path);
    return true;
  }

 private:
  struct Node {
    explicit Node(const Prefix& p) : prefix(p) {}
    Prefix prefix;
    std::optional<T> value;
    std::array<std::unique_ptr<Node>, 2> children{};

    [[nodiscard]] int child_count() const noexcept {
      return (children[0] ? 1 : 0) + (children[1] ? 1 : 0);
    }
  };

  [[nodiscard]] Node* root_for(Family family) noexcept {
    return family == Family::v4 ? root_v4_.get() : root_v6_.get();
  }
  [[nodiscard]] const Node* root_for(Family family) const noexcept {
    return family == Family::v4 ? root_v4_.get() : root_v6_.get();
  }

  [[nodiscard]] const Node* locate(const Prefix& key) const noexcept {
    const Node* node = root_for(key.family());
    while (node != nullptr) {
      if (!node->prefix.contains(key)) return nullptr;
      if (node->prefix.length() == key.length()) {
        return node->prefix == key ? node : nullptr;
      }
      node = node->children[key.address().bit(node->prefix.length()) ? 1 : 0].get();
    }
    return nullptr;
  }

  Node* locate_or_create(const Prefix& key) {
    Node* node = root_for(key.family());
    while (true) {
      if (node->prefix == key) return node;
      // Invariant: node->prefix strictly contains key.
      auto& slot = node->children[key.address().bit(node->prefix.length()) ? 1 : 0];
      if (!slot) {
        slot = std::make_unique<Node>(key);
        return slot.get();
      }
      if (slot->prefix.contains(key)) {
        node = slot.get();
        continue;
      }
      if (key.contains(slot->prefix)) {
        // The new key sits between node and the existing child.
        auto inserted = std::make_unique<Node>(key);
        auto& child_slot =
            inserted->children[slot->prefix.address().bit(key.length()) ? 1 : 0];
        child_slot = std::move(slot);
        slot = std::move(inserted);
        return slot.get();
      }
      // Diverging paths: split with a valueless join node.
      const auto join_prefix = Prefix::common_covering(key, slot->prefix);
      if (!join_prefix) throw std::logic_error("PrefixTrie: family mismatch in subtree");
      auto join = std::make_unique<Node>(*join_prefix);
      join->children[slot->prefix.address().bit(join_prefix->length()) ? 1 : 0] =
          std::move(slot);
      auto inserted = std::make_unique<Node>(key);
      Node* result = inserted.get();
      join->children[key.address().bit(join_prefix->length()) ? 1 : 0] = std::move(inserted);
      slot = std::move(join);
      return result;
    }
  }

  static void visit_subtree(const Node* node,
                            const std::function<void(const Prefix&, const T&)>& visit) {
    if (node == nullptr) return;
    if (node->value) visit(node->prefix, *node->value);
    visit_subtree(node->children[0].get(), visit);
    visit_subtree(node->children[1].get(), visit);
  }

  // Removes now-useless nodes after `node` lost its value. A node is
  // useless when it is valueless with zero children (drop it) or one child
  // (splice the child up), except the per-family roots which always stay.
  void prune(Node* node, std::vector<Node*>& ancestors) {
    while (!ancestors.empty() && !node->value && node->prefix.length() > 0) {
      Node* parent = ancestors.back();
      auto& slot = parent->children[node->prefix.address().bit(parent->prefix.length()) ? 1 : 0];
      if (node->child_count() == 0) {
        slot.reset();
      } else if (node->child_count() == 1) {
        auto& only = node->children[node->children[0] ? 0 : 1];
        slot = std::move(only);
      } else {
        return;
      }
      node = parent;
      ancestors.pop_back();
    }
  }

  std::unique_ptr<Node> root_v4_;
  std::unique_ptr<Node> root_v6_;
  std::size_t size_ = 0;
};

}  // namespace sp
