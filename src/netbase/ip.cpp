#include "netbase/ip.h"

#include <charconv>
#include <stdexcept>
#include <vector>

namespace sp {

namespace {

// Parses a decimal octet (0-255) without leading zeros. Advances `pos`.
std::optional<std::uint8_t> parse_octet(std::string_view text, std::size_t& pos) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return std::nullopt;
  const std::size_t start = pos;
  unsigned value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<unsigned>(text[pos] - '0');
    ++pos;
    if (pos - start > 3) return std::nullopt;
  }
  if (value > 255) return std::nullopt;
  if (pos - start > 1 && text[start] == '0') return std::nullopt;  // leading zero
  return static_cast<std::uint8_t>(value);
}

std::optional<unsigned> hex_digit(char c) {
  if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
  return std::nullopt;
}

}  // namespace

std::string_view family_name(Family family) noexcept {
  return family == Family::v4 ? "IPv4" : "IPv6";
}

std::size_t hash_bytes(const std::uint8_t* data, std::size_t size, std::size_t seed) noexcept {
  std::size_t hash = 14695981039346656037ull ^ seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

bool is_reserved(const IPv4Address& address) noexcept {
  const std::uint32_t v = address.value();
  const auto in = [v](std::uint32_t base, unsigned length) {
    return (v >> (32u - length)) == (base >> (32u - length));
  };
  return in(0x00000000u, 8) ||    // 0.0.0.0/8 "this network"
         in(0x0A000000u, 8) ||    // 10/8 private
         in(0x64400000u, 10) ||   // 100.64/10 CGN
         in(0x7F000000u, 8) ||    // 127/8 loopback
         in(0xA9FE0000u, 16) ||   // 169.254/16 link-local
         in(0xAC100000u, 12) ||   // 172.16/12 private
         in(0xC0000200u, 24) ||   // 192.0.2/24 TEST-NET-1
         in(0xC0A80000u, 16) ||   // 192.168/16 private
         in(0xC6120000u, 15) ||   // 198.18/15 benchmarking
         in(0xC6336400u, 24) ||   // 198.51.100/24 TEST-NET-2
         in(0xCB007100u, 24) ||   // 203.0.113/24 TEST-NET-3
         in(0xE0000000u, 4) ||    // 224/4 multicast
         in(0xF0000000u, 4);      // 240/4 class E (incl. broadcast)
}

bool is_reserved(const IPv6Address& address) noexcept {
  // Global unicast is 2000::/3; everything else (::, ::1, fe80::/10,
  // fc00::/7, ff00::/8, 2001:db8::/32 doc space, ...) is non-routable or
  // special purpose. Documentation space is additionally excluded.
  const std::uint8_t top = address.bytes()[0];
  if ((top & 0xE0u) != 0x20u) return true;
  return address.group(0) == 0x2001 && address.group(1) == 0x0db8;  // 2001:db8::/32
}

bool is_reserved(const IPAddress& address) noexcept {
  return address.is_v4() ? is_reserved(address.v4()) : is_reserved(address.v6());
}

std::optional<IPv4Address> IPv4Address::from_string(std::string_view text) {
  std::size_t pos = 0;
  std::array<std::uint8_t, 4> octets{};
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    const auto octet = parse_octet(text, pos);
    if (!octet) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = *octet;
  }
  if (pos != text.size()) return std::nullopt;
  return from_octets(octets[0], octets[1], octets[2], octets[3]);
}

std::string IPv4Address::to_string() const {
  const auto o = octets();
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(o[static_cast<std::size_t>(i)]);
  }
  return out;
}

IPv6Address IPv6Address::from_groups(const std::array<std::uint16_t, 8>& groups) {
  Bytes bytes{};
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xff);
  }
  return IPv6Address(bytes);
}

std::optional<IPv6Address> IPv6Address::from_string(std::string_view text) {
  if (text.empty() || text.find('%') != std::string_view::npos) return std::nullopt;

  // Split into the part before and after "::" (at most one occurrence).
  std::string_view head = text;
  std::string_view tail;
  bool has_gap = false;
  if (const auto gap = text.find("::"); gap != std::string_view::npos) {
    if (text.find("::", gap + 1) != std::string_view::npos) return std::nullopt;
    has_gap = true;
    head = text.substr(0, gap);
    tail = text.substr(gap + 2);
  }

  // Parses a colon-separated group list, possibly ending in an embedded
  // IPv4 dotted quad (which contributes two groups).
  const auto parse_groups =
      [](std::string_view part, bool allow_embedded_v4) -> std::optional<std::vector<std::uint16_t>> {
    std::vector<std::uint16_t> groups;
    if (part.empty()) return groups;
    std::size_t pos = 0;
    while (true) {
      // An embedded IPv4 address may only be the final component.
      const std::size_t next_colon = part.find(':', pos);
      const std::string_view token =
          part.substr(pos, next_colon == std::string_view::npos ? std::string_view::npos
                                                                : next_colon - pos);
      if (token.empty()) return std::nullopt;
      if (token.find('.') != std::string_view::npos) {
        if (!allow_embedded_v4 || next_colon != std::string_view::npos) return std::nullopt;
        const auto v4 = IPv4Address::from_string(token);
        if (!v4) return std::nullopt;
        groups.push_back(static_cast<std::uint16_t>(v4->value() >> 16));
        groups.push_back(static_cast<std::uint16_t>(v4->value() & 0xffff));
        return groups;
      }
      if (token.size() > 4) return std::nullopt;
      unsigned value = 0;
      for (const char c : token) {
        const auto digit = hex_digit(c);
        if (!digit) return std::nullopt;
        value = (value << 4) | *digit;
      }
      groups.push_back(static_cast<std::uint16_t>(value));
      if (next_colon == std::string_view::npos) return groups;
      pos = next_colon + 1;
    }
  };

  const auto head_groups = parse_groups(head, !has_gap);
  if (!head_groups) return std::nullopt;
  std::vector<std::uint16_t> tail_groups_storage;
  if (has_gap) {
    const auto tail_groups = parse_groups(tail, true);
    if (!tail_groups) return std::nullopt;
    tail_groups_storage = *tail_groups;
  }

  const std::size_t total = head_groups->size() + tail_groups_storage.size();
  if (has_gap) {
    // "::" must compress at least one group.
    if (total >= 8) return std::nullopt;
  } else if (total != 8) {
    return std::nullopt;
  }

  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < head_groups->size(); ++i) groups[i] = (*head_groups)[i];
  const std::size_t tail_start = 8 - tail_groups_storage.size();
  for (std::size_t i = 0; i < tail_groups_storage.size(); ++i) {
    groups[tail_start + i] = tail_groups_storage[i];
  }
  return from_groups(groups);
}

std::string IPv6Address::to_string() const {
  // RFC 5952: compress the longest run of two or more zero groups,
  // choosing the leftmost run on ties; lowercase hex, no leading zeros.
  std::array<std::uint16_t, 8> groups{};
  for (unsigned i = 0; i < 8; ++i) groups[i] = group(i);

  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(41);
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    const std::uint16_t g = groups[static_cast<std::size_t>(i)];
    bool emitted = false;
    for (int shift = 12; shift >= 0; shift -= 4) {
      const unsigned digit = (g >> shift) & 0xf;
      if (digit != 0 || emitted || shift == 0) {
        out.push_back(kHex[digit]);
        emitted = true;
      }
    }
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

std::optional<IPAddress> IPAddress::from_string(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    const auto v6 = IPv6Address::from_string(text);
    if (!v6) return std::nullopt;
    return IPAddress(*v6);
  }
  const auto v4 = IPv4Address::from_string(text);
  if (!v4) return std::nullopt;
  return IPAddress(*v4);
}

IPAddress IPAddress::must_parse(std::string_view text) {
  const auto parsed = from_string(text);
  if (!parsed) throw std::invalid_argument("invalid IP address: " + std::string(text));
  return *parsed;
}

std::string IPAddress::to_string() const {
  return is_v4() ? v4().to_string() : v6().to_string();
}

}  // namespace sp
