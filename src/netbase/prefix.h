// CIDR prefix type and prefix algebra.
//
// A Prefix is an (address, length) pair in canonical form: all bits past
// the prefix length are zero. Prefixes of both families share one type so
// that generic code (tries, similarity pipelines) can treat them uniformly;
// the family always participates in comparisons, so IPv4 and IPv6 prefixes
// never compare equal or contain one another.
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ip.h"

namespace sp {

class Prefix {
 public:
  /// Default: IPv4 0.0.0.0/0.
  constexpr Prefix() noexcept : address_(), length_(0) {}

  /// Builds the canonical prefix covering `address` with the given length
  /// (host bits are cleared). `length` is clamped to the family maximum.
  [[nodiscard]] static Prefix of(const IPAddress& address, unsigned length);

  /// Parses "192.0.2.0/24" or "2001:db8::/32". The address part need not be
  /// canonical; host bits are cleared. Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Prefix> from_string(std::string_view text);

  /// Parses or throws std::invalid_argument; for literals in tests/examples.
  [[nodiscard]] static Prefix must_parse(std::string_view text);

  /// The full address (/32 or /128) prefix of a single IP.
  [[nodiscard]] static Prefix host(const IPAddress& address) {
    return of(address, address.max_prefix_length());
  }

  [[nodiscard]] constexpr Family family() const noexcept { return address_.family(); }
  [[nodiscard]] constexpr unsigned length() const noexcept { return length_; }
  [[nodiscard]] constexpr const IPAddress& address() const noexcept { return address_; }
  [[nodiscard]] constexpr unsigned max_length() const noexcept {
    return address_.max_prefix_length();
  }

  /// True when `address` falls inside this prefix (same family required).
  [[nodiscard]] bool contains(const IPAddress& address) const noexcept;

  /// True when `other` is equal to or more specific than this prefix.
  [[nodiscard]] bool contains(const Prefix& other) const noexcept;

  /// The covering prefix one bit shorter, or nullopt at /0.
  [[nodiscard]] std::optional<Prefix> supernet() const;

  /// The more-specific child one bit longer (0 = left/low half, 1 = right).
  /// Precondition: length() < max_length().
  [[nodiscard]] Prefix child(unsigned bit) const;

  /// Bit `i` of the network address, i < length().
  [[nodiscard]] constexpr bool bit_at(unsigned i) const noexcept { return address_.bit(i); }

  /// The longest prefix covering both `a` and `b`; nullopt if the families
  /// differ.
  [[nodiscard]] static std::optional<Prefix> common_covering(const Prefix& a, const Prefix& b);

  /// Number of addresses covered, saturating at uint64 max (IPv6 prefixes
  /// shorter than /64 saturate).
  [[nodiscard]] std::uint64_t address_count_saturated() const noexcept;

  /// "192.0.2.0/24" / "2001:db8::/32".
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept = default;

 private:
  constexpr Prefix(const IPAddress& canonical_address, unsigned length) noexcept
      : address_(canonical_address), length_(length) {}

  IPAddress address_;
  unsigned length_;
};

}  // namespace sp

template <>
struct std::hash<sp::Prefix> {
  std::size_t operator()(const sp::Prefix& p) const noexcept {
    return sp::hash_bytes(p.address().storage().data(), p.address().storage().size(),
                          (static_cast<std::size_t>(p.family()) << 8) ^ p.length());
  }
};
