#include "netbase/prefix.h"

#include <algorithm>
#include <stdexcept>

namespace sp {

namespace {

// Clears all bits at positions >= length in a 16-byte address image.
std::array<std::uint8_t, 16> mask_host_bits(const std::array<std::uint8_t, 16>& bytes,
                                            unsigned length) {
  std::array<std::uint8_t, 16> out = bytes;
  const unsigned full_bytes = length / 8;
  const unsigned partial_bits = length % 8;
  std::size_t i = full_bytes;
  if (partial_bits != 0 && i < out.size()) {
    const std::uint8_t mask = static_cast<std::uint8_t>(0xff00u >> partial_bits);
    out[i] &= mask;
    ++i;
  }
  for (; i < out.size(); ++i) out[i] = 0;
  return out;
}

IPAddress address_from_storage(Family family, const std::array<std::uint8_t, 16>& bytes) {
  if (family == Family::v4) {
    return IPAddress(IPv4Address::from_octets(bytes[0], bytes[1], bytes[2], bytes[3]));
  }
  return IPAddress(IPv6Address(bytes));
}

// True when the first `bits` bits of the two byte arrays match.
bool leading_bits_equal(const std::array<std::uint8_t, 16>& a,
                        const std::array<std::uint8_t, 16>& b, unsigned bits) {
  const unsigned full_bytes = bits / 8;
  for (unsigned i = 0; i < full_bytes; ++i) {
    if (a[i] != b[i]) return false;
  }
  const unsigned partial_bits = bits % 8;
  if (partial_bits == 0) return true;
  const std::uint8_t mask = static_cast<std::uint8_t>(0xff00u >> partial_bits);
  return (a[full_bytes] & mask) == (b[full_bytes] & mask);
}

}  // namespace

Prefix Prefix::of(const IPAddress& address, unsigned length) {
  const unsigned clamped = std::min(length, address.max_prefix_length());
  const auto masked = mask_host_bits(address.storage(), clamped);
  return Prefix(address_from_storage(address.family(), masked), clamped);
}

std::optional<Prefix> Prefix::from_string(std::string_view text) {
  const auto slash = text.rfind('/');
  if (slash == std::string_view::npos || slash == 0 || slash + 1 >= text.size()) {
    return std::nullopt;
  }
  const auto address = IPAddress::from_string(text.substr(0, slash));
  if (!address) return std::nullopt;

  const std::string_view length_text = text.substr(slash + 1);
  if (length_text.size() > 3) return std::nullopt;
  unsigned length = 0;
  for (const char c : length_text) {
    if (c < '0' || c > '9') return std::nullopt;
    length = length * 10 + static_cast<unsigned>(c - '0');
  }
  if (length_text.size() > 1 && length_text[0] == '0') return std::nullopt;
  if (length > address->max_prefix_length()) return std::nullopt;
  return of(*address, length);
}

Prefix Prefix::must_parse(std::string_view text) {
  const auto parsed = from_string(text);
  if (!parsed) throw std::invalid_argument("invalid prefix: " + std::string(text));
  return *parsed;
}

bool Prefix::contains(const IPAddress& address) const noexcept {
  if (address.family() != family()) return false;
  return leading_bits_equal(address_.storage(), address.storage(), length_);
}

bool Prefix::contains(const Prefix& other) const noexcept {
  if (other.family() != family() || other.length_ < length_) return false;
  return leading_bits_equal(address_.storage(), other.address_.storage(), length_);
}

std::optional<Prefix> Prefix::supernet() const {
  if (length_ == 0) return std::nullopt;
  return of(address_, length_ - 1);
}

Prefix Prefix::child(unsigned bit) const {
  if (length_ >= max_length()) {
    throw std::logic_error("Prefix::child on a full-length prefix " + to_string());
  }
  auto bytes = address_.storage();
  if (bit != 0) {
    bytes[length_ / 8] |= static_cast<std::uint8_t>(0x80u >> (length_ % 8u));
  }
  return Prefix(address_from_storage(family(), bytes), length_ + 1);
}

std::optional<Prefix> Prefix::common_covering(const Prefix& a, const Prefix& b) {
  if (a.family() != b.family()) return std::nullopt;
  const unsigned limit = std::min(a.length(), b.length());
  unsigned common = 0;
  while (common < limit && a.address_.bit(common) == b.address_.bit(common)) ++common;
  return of(a.address_, common);
}

std::uint64_t Prefix::address_count_saturated() const noexcept {
  const unsigned host_bits = max_length() - length_;
  if (host_bits >= 64) return ~std::uint64_t{0};
  return std::uint64_t{1} << host_bits;
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace sp
