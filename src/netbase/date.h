// Calendar date for measurement snapshots.
//
// The pipeline is organized around monthly snapshots (the paper samples
// every second Wednesday of the month); this small value type provides the
// arithmetic those series need without pulling in <chrono> calendars.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace sp {

struct Date {
  std::int32_t year = 2024;
  std::int32_t month = 9;  // 1..12
  std::int32_t day = 11;   // 1..31

  friend constexpr auto operator<=>(const Date&, const Date&) = default;

  /// "2024-09-11".
  [[nodiscard]] std::string to_string() const;

  /// This date shifted by `count` months (day clamped to 28 to stay valid).
  [[nodiscard]] Date plus_months(std::int32_t count) const;

  /// Whole months from `earlier` to this date (sign-sensitive).
  [[nodiscard]] std::int32_t months_since(const Date& earlier) const noexcept {
    return (year - earlier.year) * 12 + (month - earlier.month);
  }
};

inline std::string Date::to_string() const {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02d", year, month, day);
  return buffer;
}

inline Date Date::plus_months(std::int32_t count) const {
  const std::int32_t base = year * 12 + (month - 1) + count;
  Date out;
  out.year = base / 12;
  out.month = base % 12 + 1;
  out.day = day > 28 ? 28 : day;
  return out;
}

}  // namespace sp

template <>
struct std::hash<sp::Date> {
  std::size_t operator()(const sp::Date& d) const noexcept {
    return std::hash<std::int64_t>{}((std::int64_t{d.year} << 16) ^ (d.month << 8) ^ d.day);
  }
};
