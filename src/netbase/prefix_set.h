// A set of CIDR prefixes with canonical aggregation.
//
// Invariants after every mutation: members are pairwise disjoint, and the
// representation is minimal — no member is covered by another, and no two
// buddy prefixes (the two halves of a common parent) are both present
// (they are merged into the parent, recursively). This is the object an
// operator materializes an ACL or route filter from; subtract() punches
// holes by decomposing members into their uncovered fragments.
//
// Both families can live in one set; they never merge or overlap.
#pragma once

#include <cstddef>
#include <set>
#include <span>
#include <vector>

#include "netbase/prefix.h"

namespace sp {

class PrefixSet {
 public:
  PrefixSet() = default;
  explicit PrefixSet(std::span<const Prefix> prefixes) {
    for (const Prefix& prefix : prefixes) add(prefix);
  }

  /// Inserts `prefix`, swallowing covered members and merging buddies.
  void add(const Prefix& prefix);

  /// Removes the address range of `prefix` from the set, splitting any
  /// member that partially overlaps. Returns true when anything changed.
  bool subtract(const Prefix& prefix);

  /// True when `address` falls inside some member.
  [[nodiscard]] bool contains(const IPAddress& address) const noexcept;

  /// True when the entire range of `prefix` is covered (single member —
  /// by the invariants a covered range always lies within one member).
  [[nodiscard]] bool covers(const Prefix& prefix) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// Members in canonical (address, length) order.
  [[nodiscard]] std::vector<Prefix> members() const {
    return std::vector<Prefix>(members_.begin(), members_.end());
  }

  /// Total addresses covered, saturating at uint64 max.
  [[nodiscard]] std::uint64_t address_count_saturated() const noexcept;

  friend bool operator==(const PrefixSet&, const PrefixSet&) = default;

 private:
  /// The member covering `key`'s range start, if any.
  [[nodiscard]] std::set<Prefix>::const_iterator covering_member(
      const Prefix& key) const noexcept;

  std::set<Prefix> members_;
};

}  // namespace sp
