#include "netbase/prefix_set.h"

namespace sp {

namespace {

/// The buddy of `prefix`: the other half of its parent. Requires
/// length > 0.
Prefix buddy_of(const Prefix& prefix) {
  const Prefix parent = *prefix.supernet();
  const Prefix low = parent.child(0);
  return prefix == low ? parent.child(1) : low;
}

}  // namespace

std::set<Prefix>::const_iterator PrefixSet::covering_member(
    const Prefix& key) const noexcept {
  // Members are disjoint, so the only candidate is the last member whose
  // (address, length) sorts at or before `key`.
  auto it = members_.upper_bound(key);
  if (it != members_.begin()) {
    const auto prev = std::prev(it);
    if (prev->contains(key)) return prev;
  }
  // A member with the same address but greater length sorts after `key`;
  // it can only cover `key` when it *is* key-with-longer-length, which
  // cannot cover a shorter key. Nothing else qualifies.
  return members_.end();
}

void PrefixSet::add(const Prefix& prefix) {
  if (covering_member(prefix) != members_.end()) return;  // already covered

  // Drop all members the new prefix covers: they form a contiguous run in
  // the ordering starting at lower_bound(prefix).
  auto it = members_.lower_bound(prefix);
  while (it != members_.end() && prefix.contains(*it)) it = members_.erase(it);

  // Insert, then merge buddy chains upward.
  Prefix current = prefix;
  while (true) {
    if (current.length() == 0) {
      members_.insert(current);
      break;
    }
    const Prefix buddy = buddy_of(current);
    const auto buddy_it = members_.find(buddy);
    if (buddy_it == members_.end()) {
      members_.insert(current);
      break;
    }
    members_.erase(buddy_it);
    current = *current.supernet();
  }
}

bool PrefixSet::subtract(const Prefix& prefix) {
  bool changed = false;

  // Case 1: members covered by `prefix` — a contiguous run.
  auto it = members_.lower_bound(prefix);
  while (it != members_.end() && prefix.contains(*it)) {
    it = members_.erase(it);
    changed = true;
  }

  // Case 2: one member strictly covering `prefix` — split it into the
  // fragments along the path from the member down to `prefix`.
  const auto cover = covering_member(prefix);
  if (cover != members_.end()) {
    Prefix current = prefix;
    std::vector<Prefix> fragments;
    while (current != *cover) {
      fragments.push_back(buddy_of(current));
      current = *current.supernet();
    }
    members_.erase(cover);
    // Fragments are disjoint and none is a buddy of another (they sit at
    // distinct depths along one path), so plain insertion keeps the
    // invariants.
    members_.insert(fragments.begin(), fragments.end());
    changed = true;
  }
  return changed;
}

bool PrefixSet::contains(const IPAddress& address) const noexcept {
  return covering_member(Prefix::host(address)) != members_.end();
}

bool PrefixSet::covers(const Prefix& prefix) const noexcept {
  if (members_.contains(prefix)) return true;
  return covering_member(prefix) != members_.end();
}

std::uint64_t PrefixSet::address_count_saturated() const noexcept {
  std::uint64_t total = 0;
  for (const Prefix& member : members_) {
    const std::uint64_t count = member.address_count_saturated();
    if (total + count < total) return ~std::uint64_t{0};  // overflow
    total += count;
  }
  return total;
}

}  // namespace sp
