// IP address value types for the sibling-prefix library.
//
// Provides IPv4Address, IPv6Address and the family-erased IPAddress.
// Parsing follows RFC 4291 section 2.2 for IPv6 text representations and
// strict dotted-quad for IPv4; formatting of IPv6 follows RFC 5952
// (lowercase, longest zero-run compressed, leftmost run on ties).
//
// All types are small regular value types: trivially copyable, totally
// ordered and hashable, so they can be used directly as keys in ordered
// and unordered containers.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace sp {

/// Address family of an address or prefix.
enum class Family : std::uint8_t { v4 = 4, v6 = 6 };

/// Number of bits in an address of the given family (32 or 128).
[[nodiscard]] constexpr unsigned address_bits(Family family) noexcept {
  return family == Family::v4 ? 32u : 128u;
}

/// Short human-readable family name ("IPv4" / "IPv6").
[[nodiscard]] std::string_view family_name(Family family) noexcept;

/// An IPv4 address stored as a host-order 32-bit integer.
class IPv4Address {
 public:
  constexpr IPv4Address() noexcept = default;
  explicit constexpr IPv4Address(std::uint32_t host_order_value) noexcept
      : value_(host_order_value) {}

  /// Builds an address from its four dotted-quad octets.
  [[nodiscard]] static constexpr IPv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                                         std::uint8_t c,
                                                         std::uint8_t d) noexcept {
    return IPv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses strict dotted-quad text ("192.0.2.1"). Octets must be decimal,
  /// in range, and must not have leading zeros. Returns nullopt on error.
  [[nodiscard]] static std::optional<IPv4Address> from_string(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  [[nodiscard]] constexpr std::array<std::uint8_t, 4> octets() const noexcept {
    return {static_cast<std::uint8_t>(value_ >> 24), static_cast<std::uint8_t>(value_ >> 16),
            static_cast<std::uint8_t>(value_ >> 8), static_cast<std::uint8_t>(value_)};
  }

  /// Bit `i` counted from the most significant bit; `i` must be < 32.
  [[nodiscard]] constexpr bool bit(unsigned i) const noexcept {
    return ((value_ >> (31u - i)) & 1u) != 0;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IPv4Address&, const IPv4Address&) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv6 address stored as 16 network-order bytes.
class IPv6Address {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr IPv6Address() noexcept : bytes_{} {}
  explicit constexpr IPv6Address(const Bytes& bytes) noexcept : bytes_(bytes) {}

  /// Builds an address from its eight 16-bit groups (host order).
  [[nodiscard]] static IPv6Address from_groups(const std::array<std::uint16_t, 8>& groups);

  /// Parses RFC 4291 text ("2001:db8::1", "::", "::ffff:192.0.2.1").
  /// Zone identifiers ("%eth0") are rejected. Returns nullopt on error.
  [[nodiscard]] static std::optional<IPv6Address> from_string(std::string_view text);

  [[nodiscard]] constexpr const Bytes& bytes() const noexcept { return bytes_; }

  /// 16-bit group `i` (0..7) in host order.
  [[nodiscard]] constexpr std::uint16_t group(unsigned i) const noexcept {
    return static_cast<std::uint16_t>((std::uint16_t{bytes_[2 * i]} << 8) | bytes_[2 * i + 1]);
  }

  /// Bit `i` counted from the most significant bit; `i` must be < 128.
  [[nodiscard]] constexpr bool bit(unsigned i) const noexcept {
    return ((bytes_[i / 8] >> (7u - i % 8u)) & 1u) != 0;
  }

  /// Canonical RFC 5952 text representation.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IPv6Address&, const IPv6Address&) noexcept = default;

 private:
  Bytes bytes_;
};

/// A family-erased IP address. IPv4 addresses occupy the first four bytes
/// of the internal storage; remaining bytes are zero, so comparison and
/// hashing are uniform across families (family participates in ordering).
class IPAddress {
 public:
  constexpr IPAddress() noexcept : IPAddress(IPv4Address{}) {}

  constexpr IPAddress(IPv4Address v4) noexcept : family_(Family::v4), bytes_{} {
    const auto octets = v4.octets();
    bytes_[0] = octets[0];
    bytes_[1] = octets[1];
    bytes_[2] = octets[2];
    bytes_[3] = octets[3];
  }

  constexpr IPAddress(IPv6Address v6) noexcept : family_(Family::v6), bytes_(v6.bytes()) {}

  /// Parses either family, auto-detected by the presence of ':'.
  [[nodiscard]] static std::optional<IPAddress> from_string(std::string_view text);

  /// Parses or throws std::invalid_argument; for literals in tests/examples.
  [[nodiscard]] static IPAddress must_parse(std::string_view text);

  [[nodiscard]] constexpr Family family() const noexcept { return family_; }
  [[nodiscard]] constexpr bool is_v4() const noexcept { return family_ == Family::v4; }
  [[nodiscard]] constexpr bool is_v6() const noexcept { return family_ == Family::v6; }

  /// The IPv4 view; only valid when is_v4().
  [[nodiscard]] constexpr IPv4Address v4() const noexcept {
    return IPv4Address::from_octets(bytes_[0], bytes_[1], bytes_[2], bytes_[3]);
  }

  /// The IPv6 view; only valid when is_v6().
  [[nodiscard]] constexpr IPv6Address v6() const noexcept { return IPv6Address(bytes_); }

  /// Raw 16-byte storage (v4 in the leading 4 bytes, rest zero).
  [[nodiscard]] constexpr const std::array<std::uint8_t, 16>& storage() const noexcept {
    return bytes_;
  }

  /// Bit `i` counted from the most significant bit of the address
  /// (i < 32 for IPv4, i < 128 for IPv6).
  [[nodiscard]] constexpr bool bit(unsigned i) const noexcept {
    return ((bytes_[i / 8] >> (7u - i % 8u)) & 1u) != 0;
  }

  [[nodiscard]] constexpr unsigned max_prefix_length() const noexcept {
    return address_bits(family_);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IPAddress&, const IPAddress&) noexcept = default;

 private:
  Family family_;
  std::array<std::uint8_t, 16> bytes_;
};

/// True for addresses that cannot appear in the global routing table:
/// private (RFC 1918), loopback, link-local, CGN (RFC 6598), multicast,
/// class E, and the special-purpose test networks for IPv4; anything
/// outside the global-unicast 2000::/3 block for IPv6. The pipeline
/// discards DNS answers pointing at such addresses (paper section 2.2).
[[nodiscard]] bool is_reserved(const IPv4Address& address) noexcept;
[[nodiscard]] bool is_reserved(const IPv6Address& address) noexcept;
[[nodiscard]] bool is_reserved(const IPAddress& address) noexcept;

/// FNV-1a over an arbitrary byte range; shared by the hash specializations.
[[nodiscard]] std::size_t hash_bytes(const std::uint8_t* data, std::size_t size,
                                     std::size_t seed) noexcept;

}  // namespace sp

template <>
struct std::hash<sp::IPv4Address> {
  std::size_t operator()(const sp::IPv4Address& a) const noexcept {
    const auto o = a.octets();
    return sp::hash_bytes(o.data(), o.size(), 0x4u);
  }
};

template <>
struct std::hash<sp::IPv6Address> {
  std::size_t operator()(const sp::IPv6Address& a) const noexcept {
    return sp::hash_bytes(a.bytes().data(), a.bytes().size(), 0x6u);
  }
};

template <>
struct std::hash<sp::IPAddress> {
  std::size_t operator()(const sp::IPAddress& a) const noexcept {
    return sp::hash_bytes(a.storage().data(), a.storage().size(),
                          static_cast<std::size_t>(a.family()));
  }
};
