// CSV interchange for the AS metadata databases, so real datasets (CAIDA
// AS2Org / Chen et al. sibling ASes, Stanford ASdb) can be loaded after
// a one-line conversion from their native formats.
//
// as2org layout:   asn,org_name            (e.g. "AS15169,Google LLC")
// asdb layout:     asn,category[,category...]   (ASdb top-level names)
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "asinfo/as_org.h"
#include "asinfo/asdb.h"

namespace sp::asinfo {

/// The ASdb category for its canonical name; nullopt for unknown names.
[[nodiscard]] std::optional<BusinessType> business_type_from_string(std::string_view name);

[[nodiscard]] bool write_as2org_csv(const std::string& path, const AsOrgDatabase& db);
[[nodiscard]] std::optional<AsOrgDatabase> read_as2org_csv(const std::string& path);

[[nodiscard]] bool write_asdb_csv(const std::string& path, const AsdbDatabase& db);
[[nodiscard]] std::optional<AsdbDatabase> read_asdb_csv(const std::string& path);

}  // namespace sp::asinfo
