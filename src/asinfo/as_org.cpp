#include "asinfo/as_org.h"

#include <algorithm>
#include <vector>

namespace sp::asinfo {

void AsOrgDatabase::set_org(std::uint32_t asn, std::string org_name) {
  const auto existing = org_by_as_.find(asn);
  if (existing != org_by_as_.end()) {
    if (existing->second == org_name) return;
    auto& old_members = ases_by_org_[existing->second];
    old_members.erase(std::remove(old_members.begin(), old_members.end(), asn),
                      old_members.end());
    if (old_members.empty()) ases_by_org_.erase(existing->second);
  }
  ases_by_org_[org_name].push_back(asn);
  org_by_as_[asn] = std::move(org_name);
}

void AsOrgDatabase::visit(
    const std::function<void(std::uint32_t, const std::string&)>& fn) const {
  std::vector<std::uint32_t> asns;
  asns.reserve(org_by_as_.size());
  for (const auto& [asn, org] : org_by_as_) asns.push_back(asn);
  std::sort(asns.begin(), asns.end());
  for (const std::uint32_t asn : asns) fn(asn, org_by_as_.at(asn));
}

const std::string* AsOrgDatabase::org_name(std::uint32_t asn) const noexcept {
  const auto it = org_by_as_.find(asn);
  return it == org_by_as_.end() ? nullptr : &it->second;
}

bool AsOrgDatabase::same_org(std::uint32_t a, std::uint32_t b) const noexcept {
  if (a == b) return true;
  const std::string* org_a = org_name(a);
  const std::string* org_b = org_name(b);
  return org_a != nullptr && org_b != nullptr && *org_a == *org_b;
}

std::vector<std::uint32_t> AsOrgDatabase::sibling_ases(std::uint32_t asn) const {
  const std::string* org = org_name(asn);
  if (org == nullptr) return {};
  const auto it = ases_by_org_.find(*org);
  return it == ases_by_org_.end() ? std::vector<std::uint32_t>{} : it->second;
}

}  // namespace sp::asinfo
