#include "asinfo/asdb.h"

#include <algorithm>
#include <vector>

namespace sp::asinfo {

namespace {
const std::vector<BusinessType> kNoCategories;
}  // namespace

std::string_view business_type_name(BusinessType type) noexcept {
  switch (type) {
    case BusinessType::ComputerIT: return "Computer and IT";
    case BusinessType::Media: return "Media, Publishing, and Broadcasting";
    case BusinessType::Finance: return "Finance and Insurance";
    case BusinessType::Education: return "Education and Research";
    case BusinessType::ServiceBusiness: return "Service";
    case BusinessType::Nonprofit: return "Community Groups and Nonprofits";
    case BusinessType::ConstructionRealEstate: return "Construction and Real Estate";
    case BusinessType::Entertainment: return "Museums, Libraries, and Entertainment";
    case BusinessType::Utilities: return "Utilities";
    case BusinessType::HealthCare: return "Health Care Services";
    case BusinessType::Travel: return "Travel and Accommodation";
    case BusinessType::Freight: return "Freight, Shipment, and Postal Services";
    case BusinessType::Government: return "Government and Public Administration";
    case BusinessType::Retail: return "Retail, Wholesale, and E-commerce";
    case BusinessType::Manufacturing: return "Manufacturing";
    case BusinessType::Agriculture: return "Agriculture, Mining, and Refineries";
    case BusinessType::Other: return "Other";
  }
  return "?";
}

void AsdbDatabase::add_category(std::uint32_t asn, BusinessType type) {
  auto& list = categories_[asn];
  if (std::find(list.begin(), list.end(), type) == list.end()) list.push_back(type);
}

void AsdbDatabase::visit(
    const std::function<void(std::uint32_t, const std::vector<BusinessType>&)>& fn) const {
  std::vector<std::uint32_t> asns;
  asns.reserve(categories_.size());
  for (const auto& [asn, list] : categories_) asns.push_back(asn);
  std::sort(asns.begin(), asns.end());
  for (const std::uint32_t asn : asns) fn(asn, categories_.at(asn));
}

const std::vector<BusinessType>& AsdbDatabase::categories(std::uint32_t asn) const noexcept {
  const auto it = categories_.find(asn);
  return it == categories_.end() ? kNoCategories : it->second;
}

std::optional<BusinessType> AsdbDatabase::single_category(std::uint32_t asn) const noexcept {
  const auto& list = categories(asn);
  if (list.size() != 1) return std::nullopt;
  return list.front();
}

}  // namespace sp::asinfo
