#include "asinfo/asinfo_csv.h"

#include <charconv>

#include "io/csv.h"

namespace sp::asinfo {

namespace {

const io::CsvRow kAs2OrgHeader = {"asn", "org_name"};
const io::CsvRow kAsdbHeaderPrefix = {"asn"};  // followed by category columns

std::optional<std::uint32_t> parse_asn(std::string_view text) {
  if (text.starts_with("AS") || text.starts_with("as")) text.remove_prefix(2);
  std::uint32_t asn = 0;
  const auto result = std::from_chars(text.data(), text.data() + text.size(), asn);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return asn;
}

}  // namespace

std::optional<BusinessType> business_type_from_string(std::string_view name) {
  for (int i = 0; i < kBusinessTypeCount; ++i) {
    const auto type = static_cast<BusinessType>(i);
    if (business_type_name(type) == name) return type;
  }
  return std::nullopt;
}

bool write_as2org_csv(const std::string& path, const AsOrgDatabase& db) {
  std::vector<io::CsvRow> rows;
  rows.reserve(db.as_count() + 1);
  rows.push_back(kAs2OrgHeader);
  db.visit([&rows](std::uint32_t asn, const std::string& org) {
    rows.push_back({"AS" + std::to_string(asn), org});
  });
  return io::write_csv_file(path, rows);
}

std::optional<AsOrgDatabase> read_as2org_csv(const std::string& path) {
  const auto rows = io::read_csv_file(path);
  if (!rows || rows->empty() || rows->front() != kAs2OrgHeader) return std::nullopt;
  AsOrgDatabase db;
  for (std::size_t i = 1; i < rows->size(); ++i) {
    const io::CsvRow& row = (*rows)[i];
    if (row.size() != 2 || row[1].empty()) return std::nullopt;
    const auto asn = parse_asn(row[0]);
    if (!asn) return std::nullopt;
    db.set_org(*asn, row[1]);
  }
  return db;
}

bool write_asdb_csv(const std::string& path, const AsdbDatabase& db) {
  std::vector<io::CsvRow> rows;
  rows.reserve(db.as_count() + 1);
  rows.push_back(kAsdbHeaderPrefix);
  rows.front().push_back("categories...");
  db.visit([&rows](std::uint32_t asn, const std::vector<BusinessType>& categories) {
    io::CsvRow row = {"AS" + std::to_string(asn)};
    for (const BusinessType type : categories) {
      row.push_back(std::string(business_type_name(type)));
    }
    rows.push_back(std::move(row));
  });
  return io::write_csv_file(path, rows);
}

std::optional<AsdbDatabase> read_asdb_csv(const std::string& path) {
  const auto rows = io::read_csv_file(path);
  if (!rows || rows->empty() || rows->front().empty() || rows->front()[0] != "asn") {
    return std::nullopt;
  }
  AsdbDatabase db;
  for (std::size_t i = 1; i < rows->size(); ++i) {
    const io::CsvRow& row = (*rows)[i];
    if (row.size() < 2) return std::nullopt;
    const auto asn = parse_asn(row[0]);
    if (!asn) return std::nullopt;
    for (std::size_t column = 1; column < row.size(); ++column) {
      if (row[column].empty()) continue;  // tolerate ragged exports
      const auto type = business_type_from_string(row[column]);
      if (!type) return std::nullopt;
      db.add_category(*asn, *type);
    }
  }
  return db;
}

}  // namespace sp::asinfo
