// AS-to-organization mapping (the CAIDA AS2Org / Chen et al. role).
//
// Organizations may own several ASes ("sibling ASes"), including distinct
// ASes for their IPv4 and IPv6 deployments — the property the paper's
// same-organization analysis (section 4.5) relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sp::asinfo {

class AsOrgDatabase {
 public:
  /// Registers (or overwrites) the organization name of an AS.
  void set_org(std::uint32_t asn, std::string org_name);

  /// Organization name of an AS, or nullptr when unknown.
  [[nodiscard]] const std::string* org_name(std::uint32_t asn) const noexcept;

  /// True when both ASes are known and registered to the same organization
  /// name (AS equality alone also counts as the same organization).
  [[nodiscard]] bool same_org(std::uint32_t a, std::uint32_t b) const noexcept;

  /// All ASes registered to the same organization as `asn` (including
  /// `asn` itself); empty when the AS is unknown.
  [[nodiscard]] std::vector<std::uint32_t> sibling_ases(std::uint32_t asn) const;

  [[nodiscard]] std::size_t as_count() const noexcept { return org_by_as_.size(); }
  [[nodiscard]] std::size_t org_count() const noexcept { return ases_by_org_.size(); }

  /// Visits every (asn, org name) mapping in ascending ASN order.
  void visit(const std::function<void(std::uint32_t, const std::string&)>& fn) const;

 private:
  std::unordered_map<std::uint32_t, std::string> org_by_as_;
  std::unordered_map<std::string, std::vector<std::uint32_t>> ases_by_org_;
};

}  // namespace sp::asinfo
