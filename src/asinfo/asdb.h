// ASdb business-type classification (Ziv et al., IMC 2021).
//
// ASdb tags every AS with one or more of 17 business categories; the
// paper's section 4.6 heatmaps use the ~80% of ASes carrying exactly one
// category.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sp::asinfo {

/// The 17 ASdb top-level categories.
enum class BusinessType : std::uint8_t {
  ComputerIT = 0,
  Media,
  Finance,
  Education,
  ServiceBusiness,
  Nonprofit,
  ConstructionRealEstate,
  Entertainment,
  Utilities,
  HealthCare,
  Travel,
  Freight,
  Government,
  Retail,
  Manufacturing,
  Agriculture,
  Other,
};

inline constexpr int kBusinessTypeCount = 17;

[[nodiscard]] std::string_view business_type_name(BusinessType type) noexcept;

class AsdbDatabase {
 public:
  /// Tags an AS with a category (duplicates are ignored).
  void add_category(std::uint32_t asn, BusinessType type);

  /// All categories of an AS (empty when unknown).
  [[nodiscard]] const std::vector<BusinessType>& categories(std::uint32_t asn) const noexcept;

  /// The category when the AS maps to exactly one; nullopt otherwise.
  /// The paper's business-type analysis keeps only these ASes.
  [[nodiscard]] std::optional<BusinessType> single_category(std::uint32_t asn) const noexcept;

  [[nodiscard]] std::size_t as_count() const noexcept { return categories_.size(); }

  /// Visits every (asn, categories) entry in ascending ASN order.
  void visit(const std::function<void(std::uint32_t, const std::vector<BusinessType>&)>& fn)
      const;

 private:
  std::unordered_map<std::uint32_t, std::vector<BusinessType>> categories_;
};

}  // namespace sp::asinfo
