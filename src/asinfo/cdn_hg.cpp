#include "asinfo/cdn_hg.h"

#include <algorithm>

namespace sp::asinfo {

void CdnHgCatalog::add(std::string org_name, OrgProfile profile) {
  profiles_[std::move(org_name)] = profile;
}

const OrgProfile* CdnHgCatalog::profile(const std::string& org_name) const noexcept {
  const auto it = profiles_.find(org_name);
  return it == profiles_.end() ? nullptr : &it->second;
}

bool CdnHgCatalog::is_hypergiant(const std::string& org_name) const noexcept {
  const OrgProfile* p = profile(org_name);
  return p != nullptr && p->hypergiant;
}

bool CdnHgCatalog::is_cdn(const std::string& org_name) const noexcept {
  const OrgProfile* p = profile(org_name);
  return p != nullptr && p->cdn;
}

bool CdnHgCatalog::is_cdn_or_hg(const std::string& org_name) const noexcept {
  const OrgProfile* p = profile(org_name);
  return p != nullptr && (p->cdn || p->hypergiant);
}

std::vector<std::string> CdnHgCatalog::org_names() const {
  std::vector<std::string> names;
  names.reserve(profiles_.size());
  for (const auto& [name, profile] : profiles_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

CdnHgCatalog CdnHgCatalog::paper_catalog() {
  CdnHgCatalog catalog;
  // Pair weights follow the paper's Figure 17 sibling pair counts.
  // address_agility reflects CDNs that decouple names from addresses.
  catalog.add("Amazon", {.hypergiant = true, .cdn = true, .pair_weight = 4564,
                         .address_agility = 0.05});
  catalog.add("Microsoft", {.hypergiant = true, .cdn = false, .pair_weight = 1125,
                            .address_agility = 0.05});
  catalog.add("Akamai", {.hypergiant = true, .cdn = true, .pair_weight = 1056,
                         .address_agility = 0.45});
  catalog.add("Google", {.hypergiant = true, .cdn = false, .pair_weight = 1046,
                         .address_agility = 0.08});
  catalog.add("Alibaba", {.hypergiant = true, .cdn = true, .pair_weight = 403,
                          .address_agility = 0.10});
  catalog.add("Cloudflare", {.hypergiant = true, .cdn = true, .pair_weight = 364,
                             .address_agility = 0.55});
  catalog.add("Facebook", {.hypergiant = true, .cdn = false, .pair_weight = 349,
                           .address_agility = 0.02});
  catalog.add("GoDaddy", {.hypergiant = false, .cdn = true, .pair_weight = 236,
                          .address_agility = 0.05});
  catalog.add("Apple", {.hypergiant = true, .cdn = false, .pair_weight = 200,
                        .address_agility = 0.08});
  catalog.add("Incapsula", {.hypergiant = false, .cdn = true, .pair_weight = 172,
                            .address_agility = 0.20});
  catalog.add("Leaseweb", {.hypergiant = false, .cdn = true, .pair_weight = 148,
                           .address_agility = 0.10});
  catalog.add("CDN77", {.hypergiant = false, .cdn = true, .pair_weight = 105,
                        .address_agility = 0.15});
  catalog.add("Edgecast", {.hypergiant = false, .cdn = true, .pair_weight = 75,
                           .address_agility = 0.15});
  catalog.add("Fastly", {.hypergiant = false, .cdn = true, .pair_weight = 70,
                         .address_agility = 0.25});
  catalog.add("Rackspace", {.hypergiant = false, .cdn = true, .pair_weight = 56,
                            .address_agility = 0.10});
  catalog.add("KPN", {.hypergiant = false, .cdn = true, .pair_weight = 47,
                      .address_agility = 0.05});
  catalog.add("Yahoo", {.hypergiant = true, .cdn = false, .pair_weight = 24,
                        .address_agility = 0.05});
  catalog.add("Telenor", {.hypergiant = false, .cdn = true, .pair_weight = 16,
                          .address_agility = 0.05});
  catalog.add("Netflix", {.hypergiant = true, .cdn = false, .pair_weight = 14,
                          .address_agility = 0.05});
  catalog.add("NTT", {.hypergiant = false, .cdn = true, .pair_weight = 11,
                      .address_agility = 0.05});
  catalog.add("Telstra", {.hypergiant = false, .cdn = true, .pair_weight = 6,
                          .address_agility = 0.05});
  catalog.add("Lumen", {.hypergiant = true, .cdn = false, .pair_weight = 3,
                        .address_agility = 0.05});
  catalog.add("Telin", {.hypergiant = false, .cdn = true, .pair_weight = 2,
                        .address_agility = 0.05});
  catalog.add("Twitter", {.hypergiant = true, .cdn = false, .pair_weight = 2,
                          .address_agility = 0.05});
  return catalog;
}

}  // namespace sp::asinfo
