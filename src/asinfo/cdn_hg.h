// Hypergiant / CDN catalog (Böttger et al., Gigis et al., cdnplanet).
//
// Classifies organizations as hypergiants, CDNs, both, or neither. The
// default catalog lists the 24 organizations the paper's Figure 17 reports
// sibling prefixes for, with per-organization behaviour profiles used by
// the synthetic topology (address-agile CDNs such as Cloudflare and Akamai
// decouple domains from stable addresses, which depresses their Jaccard
// values — the effect visible in the paper's Figure 17).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace sp::asinfo {

struct OrgProfile {
  bool hypergiant = false;
  bool cdn = false;
  /// Relative size: expected number of sibling prefix pairs, used by the
  /// generator to apportion prefixes/domains (Fig 17 pair counts).
  std::uint32_t pair_weight = 0;
  /// Probability [0,1] that a domain in this org is re-homed to unrelated
  /// addresses between the v4 and v6 views (address agility).
  double address_agility = 0.0;
};

class CdnHgCatalog {
 public:
  void add(std::string org_name, OrgProfile profile);

  [[nodiscard]] const OrgProfile* profile(const std::string& org_name) const noexcept;
  [[nodiscard]] bool is_hypergiant(const std::string& org_name) const noexcept;
  [[nodiscard]] bool is_cdn(const std::string& org_name) const noexcept;
  [[nodiscard]] bool is_cdn_or_hg(const std::string& org_name) const noexcept;

  [[nodiscard]] std::vector<std::string> org_names() const;
  [[nodiscard]] std::size_t size() const noexcept { return profiles_.size(); }

  /// The 24 organizations of the paper's Figure 17 with weights matching
  /// the reported pair counts.
  [[nodiscard]] static CdnHgCatalog paper_catalog();

 private:
  std::unordered_map<std::string, OrgProfile> profiles_;
};

}  // namespace sp::asinfo
