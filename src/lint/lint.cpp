#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "lint/index.h"
#include "lint/semantic.h"
#include "lint/suppress.h"

namespace sp::lint {

namespace {

void json_escape(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
}

[[nodiscard]] bool has_suffix(std::string_view path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

/// The shared back half of the pipeline: per-file rules over every
/// indexed file, semantic passes over the whole index, suppression
/// application, and the stale audit. Findings come back unsorted.
[[nodiscard]] std::vector<Finding> run_pipeline(const ProjectIndex& index,
                                                const SemanticOptions& semantic_options) {
  std::vector<Finding> findings;
  std::unordered_map<std::string, Suppressions> suppressions;
  for (const FileIndex& file : index.files()) {
    suppressions.emplace(file.path, collect_suppressions(file.path, file.blocks, findings));
    run_file_rules(file.path, file.source, file.blocks, findings);
  }
  for (Finding& finding : run_semantic_passes(index, semantic_options)) {
    findings.push_back(std::move(finding));
  }
  for (Finding& finding : findings) {
    if (finding.rule == "suppression") continue;
    const auto it = suppressions.find(finding.file);
    if (it != suppressions.end()) apply_suppressions(it->second, finding);
  }
  // Staleness is decided only now, after every rule and pass has had
  // its chance to consume each entry.
  for (const FileIndex& file : index.files()) {
    for (Finding& finding : stale_suppressions(file.path, suppressions.at(file.path))) {
      findings.push_back(std::move(finding));
    }
  }
  return findings;
}

}  // namespace

LintOptions LintOptions::detect(const std::string& root) {
  namespace fs = std::filesystem;
  LintOptions options;
  std::error_code ec;
  const std::string design = root.empty() ? "DESIGN.md" : root + "/DESIGN.md";
  const std::string layers =
      root.empty() ? "src/lint/layers.def" : root + "/src/lint/layers.def";
  if (fs::is_regular_file(design, ec)) options.design_md_path = design;
  if (fs::is_regular_file(layers, ec)) options.layers_def_path = layers;
  return options;
}

std::string LintReport::to_json() const {
  std::string out = "{\"files_scanned\":" + std::to_string(files_scanned) +
                    ",\"unsuppressed\":" + std::to_string(unsuppressed_count()) +
                    ",\"suppressed\":" + std::to_string(suppressed_count()) + ",\"findings\":[";
  bool first = true;
  for (const Finding& finding : findings) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"file\":\"";
    json_escape(out, finding.file);
    out += "\",\"line\":" + std::to_string(finding.line) + ",\"rule\":\"";
    json_escape(out, finding.rule);
    out += "\",\"message\":\"";
    json_escape(out, finding.message);
    out += finding.suppressed ? "\",\"suppressed\":true,\"reason\":\""
                              : "\",\"suppressed\":false,\"reason\":\"";
    json_escape(out, finding.suppress_reason);
    out += "\"}";
  }
  out += "]}";
  return out;
}

const std::vector<std::string>& default_roots() {
  static const std::vector<std::string> roots = {"src", "examples", "tests", "tools", "fuzz"};
  return roots;
}

bool lintable_path(const std::string& path) {
  if (!has_suffix(path, ".h") && !has_suffix(path, ".hpp") && !has_suffix(path, ".cpp") &&
      !has_suffix(path, ".cc")) {
    return false;
  }
  // Build trees carry generated compiler-id sources; lint_fixtures are
  // the linter's own seeded violations (lint_selftest lints them
  // explicitly, the tree walk must not).
  if (path.find("lint_fixtures") != std::string::npos) return false;
  std::string_view rest = path;
  while (!rest.empty()) {
    const std::size_t slash = rest.find('/');
    const std::string_view component = rest.substr(0, slash);
    if (component.substr(0, 5) == "build" || component == "CMakeFiles") return false;
    if (slash == std::string_view::npos) break;
    rest.remove_prefix(slash + 1);
  }
  return true;
}

std::vector<Finding> lint_file(const std::string& path, const std::string& label) {
  const std::string& name = label.empty() ? path : label;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{name, 0, "io", "cannot read file", false, {}}};
  }
  std::ostringstream content;
  content << in.rdbuf();
  ProjectIndex index;
  index.add_file(name, tokenize(content.str()));
  std::vector<Finding> findings = run_pipeline(index, SemanticOptions{});
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return findings;
}

LintReport lint_paths(const std::vector<std::string>& roots, const LintOptions& options) {
  namespace fs = std::filesystem;
  LintReport report;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && lintable_path(it->path().generic_string())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  ProjectIndex index;
  for (const std::string& file : files) {
    index.add_file(file, tokenize(slurp(file)));
    ++report.files_scanned;
  }

  SemanticOptions semantic_options;
  if (!options.design_md_path.empty()) {
    semantic_options.design_md_text = slurp(options.design_md_path);
  }
  if (!options.layers_def_path.empty()) {
    semantic_options.layers_def_text = slurp(options.layers_def_path);
    semantic_options.layers_def_path = options.layers_def_path;
  }

  report.findings = run_pipeline(index, semantic_options);
  if (!options.rule_filter.empty()) {
    report.findings.erase(std::remove_if(report.findings.begin(), report.findings.end(),
                                         [&](const Finding& finding) {
                                           return finding.rule != options.rule_filter;
                                         }),
                          report.findings.end());
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return report;
}

}  // namespace sp::lint
