#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sp::lint {

namespace {

void json_escape(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
}

[[nodiscard]] bool has_suffix(std::string_view path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string LintReport::to_json() const {
  std::string out = "{\"files_scanned\":" + std::to_string(files_scanned) +
                    ",\"unsuppressed\":" + std::to_string(unsuppressed_count()) +
                    ",\"suppressed\":" + std::to_string(suppressed_count()) + ",\"findings\":[";
  bool first = true;
  for (const Finding& finding : findings) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"file\":\"";
    json_escape(out, finding.file);
    out += "\",\"line\":" + std::to_string(finding.line) + ",\"rule\":\"";
    json_escape(out, finding.rule);
    out += "\",\"message\":\"";
    json_escape(out, finding.message);
    out += finding.suppressed ? "\",\"suppressed\":true,\"reason\":\""
                              : "\",\"suppressed\":false,\"reason\":\"";
    json_escape(out, finding.suppress_reason);
    out += "\"}";
  }
  out += "]}";
  return out;
}

const std::vector<std::string>& default_roots() {
  static const std::vector<std::string> roots = {"src", "examples", "tests", "tools", "fuzz"};
  return roots;
}

bool lintable_path(const std::string& path) {
  if (!has_suffix(path, ".h") && !has_suffix(path, ".hpp") && !has_suffix(path, ".cpp") &&
      !has_suffix(path, ".cc")) {
    return false;
  }
  // Build trees carry generated compiler-id sources; lint_fixtures are
  // the linter's own seeded violations (lint_selftest lints them
  // explicitly, the tree walk must not).
  if (path.find("lint_fixtures") != std::string::npos) return false;
  std::string_view rest = path;
  while (!rest.empty()) {
    const std::size_t slash = rest.find('/');
    const std::string_view component = rest.substr(0, slash);
    if (component.substr(0, 5) == "build" || component == "CMakeFiles") return false;
    if (slash == std::string_view::npos) break;
    rest.remove_prefix(slash + 1);
  }
  return true;
}

std::vector<Finding> lint_file(const std::string& path, const std::string& label) {
  const std::string& name = label.empty() ? path : label;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{name, 0, "io", "cannot read file", false, {}}};
  }
  std::ostringstream content;
  content << in.rdbuf();
  return lint_source(name, content.str());
}

LintReport lint_paths(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  LintReport report;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && lintable_path(it->path().generic_string())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (const std::string& file : files) {
    std::vector<Finding> found = lint_file(file);
    report.findings.insert(report.findings.end(), std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
    ++report.files_scanned;
  }
  return report;
}

}  // namespace sp::lint
