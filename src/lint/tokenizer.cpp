#include "lint/token.h"

#include <cctype>

namespace sp::lint {

namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text` is a valid string-literal encoding prefix, with or
/// without the raw-string R (u8R, LR, R, ...).
[[nodiscard]] bool is_string_prefix(std::string_view text, bool* raw) {
  *raw = !text.empty() && text.back() == 'R';
  const std::string_view encoding = *raw ? text.substr(0, text.size() - 1) : text;
  return encoding.empty() || encoding == "u8" || encoding == "u" || encoding == "U" ||
         encoding == "L";
}

class Lexer {
 public:
  explicit Lexer(std::string_view content) : text_(content) {}

  SourceFile lex() {
    while (pos_ < text_.size()) step();
    return std::move(out_);
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void note_comment(std::size_t line, std::string_view piece) {
    std::string& slot = out_.comments[line];
    if (!slot.empty()) slot.push_back(' ');
    slot.append(piece);
  }

  void line_comment() {
    const std::size_t start_line = line_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    note_comment(start_line, text_.substr(start, pos_ - start));
  }

  void block_comment() {
    std::size_t piece_start = pos_;
    std::size_t piece_line = line_;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (text_[pos_] == '\n') {
        note_comment(piece_line, text_.substr(piece_start, pos_ - piece_start));
        advance();
        piece_start = pos_;
        piece_line = line_;
        continue;
      }
      ++pos_;
    }
    note_comment(piece_line, text_.substr(piece_start, pos_ - piece_start));
  }

  /// Consumes a (non-raw) string or character literal body; the opening
  /// delimiter is at pos_.
  void quoted(char delimiter) {
    advance();  // opening delimiter
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        advance();
        advance();
        continue;
      }
      advance();
      if (c == delimiter) return;
      // A literal never spans a physical line; an unterminated one stops
      // at the newline so the rest of the file still lexes sanely.
      if (c == '\n') return;
    }
  }

  /// Consumes R"delim( ... )delim"; the opening quote is at pos_.
  void raw_string() {
    advance();  // opening quote
    std::string delimiter;
    while (pos_ < text_.size() && text_[pos_] != '(') {
      delimiter.push_back(text_[pos_]);
      advance();
    }
    if (pos_ < text_.size()) advance();  // '('
    const std::string closer = ")" + delimiter + "\"";
    const std::size_t at = text_.find(closer, pos_);
    const std::size_t stop = at == std::string_view::npos ? text_.size() : at + closer.size();
    while (pos_ < stop) advance();
  }

  void preprocessor() {
    const std::size_t start_line = line_;
    std::string directive;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        if (!directive.empty() && directive.back() == '\\') {
          directive.pop_back();  // logical-line continuation
          advance();
          continue;
        }
        break;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        pos_ += 2;
        block_comment();
        directive.push_back(' ');
        continue;
      }
      directive.push_back(c);
      advance();
    }
    out_.tokens.push_back({TokenKind::Preprocessor, std::move(directive), start_line});
  }

  void step() {
    const char c = text_[pos_];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (c == '\n') at_line_start_ = true;
      advance();
      return;
    }
    if (c == '/' && peek(1) == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      pos_ += 2;
      block_comment();
      return;
    }
    if (c == '#' && at_line_start_) {
      preprocessor();
      return;
    }
    at_line_start_ = false;
    if (is_ident_start(c)) {
      const std::size_t start = pos_;
      const std::size_t start_line = line_;
      while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
      const std::string_view word = text_.substr(start, pos_ - start);
      bool raw = false;
      if ((peek() == '"' || peek() == '\'') && is_string_prefix(word, &raw)) {
        // Encoding-prefixed literal: u8"...", L'...', R"(...)" — the
        // prefix belongs to the literal, not the identifier stream.
        if (peek() == '"' && raw) {
          raw_string();
        } else {
          quoted(peek());
        }
        out_.tokens.push_back({TokenKind::String, std::string(word) + "\"...\"", start_line});
        return;
      }
      out_.tokens.push_back({TokenKind::Identifier, std::string(word), start_line});
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = pos_;
      const std::size_t start_line = line_;
      while (pos_ < text_.size() &&
             (is_ident_char(text_[pos_]) || text_[pos_] == '.' || text_[pos_] == '\'')) {
        ++pos_;
      }
      out_.tokens.push_back(
          {TokenKind::Number, std::string(text_.substr(start, pos_ - start)), start_line});
      return;
    }
    if (c == '"') {
      const std::size_t start_line = line_;
      quoted('"');
      out_.tokens.push_back({TokenKind::String, "\"...\"", start_line});
      return;
    }
    if (c == '\'') {
      const std::size_t start_line = line_;
      quoted('\'');
      out_.tokens.push_back({TokenKind::CharLiteral, "'...'", start_line});
      return;
    }
    out_.tokens.push_back({TokenKind::Punct, std::string(1, c), line_});
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  bool at_line_start_ = true;
  SourceFile out_;
};

}  // namespace

SourceFile tokenize(std::string_view content) { return Lexer(content).lex(); }

}  // namespace sp::lint
