// sp::lint comment machinery — merged comment blocks and `sp-lint`
// suppressions, shared by the per-file rule catalog (rules.cpp), the
// project index (index.cpp) and the cross-file semantic passes
// (semantic.cpp).
//
// Suppressions track *use*: every entry remembers whether it silenced at
// least one finding. An entry that silenced nothing is stale — the code
// it argued about has moved or been fixed — and stale entries are
// findings themselves (rule `stale-suppression`), so the escape-hatch
// inventory cannot rot. Because semantic findings are produced after
// the per-file rules, staleness is only decided once every pass has had
// its chance to consume the entry (lint.cpp orchestrates this).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lint/finding.h"
#include "lint/token.h"

namespace sp::lint {

/// A run of comments on consecutive lines, merged into one text. Authors
/// wrap long suppression reasons and lock-order annotations over several
/// `//` lines; rules must see the whole block, not one physical line.
struct CommentBlock {
  std::size_t first = 0;
  std::size_t last = 0;
  std::string text;  // the lines' comment text, joined with single spaces
};

/// Merges `source.comments` into consecutive-line blocks, sorted by line.
[[nodiscard]] std::vector<CommentBlock> comment_blocks(const SourceFile& source);

/// One parsed `<rule>-ok(<reason>)` entry with its use tracked.
struct SuppressionEntry {
  std::string rule;
  std::string reason;
  std::size_t line = 0;  // first line of the declaring comment block
  bool file_scope = false;
  bool used = false;  // set when the entry silences a finding
};

struct Suppressions {
  std::vector<SuppressionEntry> entries;
  // line → rule → index into entries; block-scoped entries are mapped
  // from every line the block spans (so line/line-1 matching reaches
  // code directly below a wrapped comment).
  std::map<std::size_t, std::unordered_map<std::string, std::size_t>> by_line;
  std::unordered_map<std::string, std::size_t> by_file;
};

/// Parses every `sp-lint:` / `sp-lint-file:` marker out of `blocks`.
/// Malformed entries (no parens, empty reason) become `suppression`
/// findings in `findings` and are not registered.
[[nodiscard]] Suppressions collect_suppressions(std::string_view path,
                                                const std::vector<CommentBlock>& blocks,
                                                std::vector<Finding>& findings);

/// Marks `finding` suppressed when a matching line- or file-scoped
/// entry exists (a line entry covers the finding's line and the line
/// directly above it) and records the entry as used.
void apply_suppressions(Suppressions& suppressions, Finding& finding);

/// One `stale-suppression` finding per entry that never silenced
/// anything — call only after every rule and pass has run.
[[nodiscard]] std::vector<Finding> stale_suppressions(std::string_view path,
                                                      const Suppressions& suppressions);

}  // namespace sp::lint
