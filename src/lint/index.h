// sp::lint::ProjectIndex — the lightweight whole-tree index the
// cross-file semantic passes (semantic.h) share. Built on the same
// tokenizer as the per-file rules (token.h): no libclang, no
// preprocessor expansion — per file it records exactly the facts the
// passes need and nothing more:
//
//   * project-relative `#include "sub/file.h"` references (the layering
//     DAG's edges, and the closure that scopes name resolution);
//   * function definitions with their body token spans (free functions,
//     methods, constructors; lambdas belong to the enclosing named
//     function, which is the right owner for lock scopes and call
//     sites);
//   * call sites inside each function body (callee spelling only — the
//     lock-rank pass inlines one level through calls whose name
//     resolves inside the caller's include closure);
//   * guard-object lock acquisitions (`scoped_lock`/`lock_guard`/
//     `unique_lock`/`shared_lock`) with the acquired member's spelling
//     and the token span the guard is held for (its enclosing block);
//   * `// lock-order: <rank> <name>` annotations resolved to the mutex
//     member they document.
//
// File keys: every indexed file is addressed by its path with the
// leading `.../src/` stripped (`serve/service.h`), matching the
// spelling of project includes, so the include closure and the
// `foo.cpp` ↔ `foo.h` stem pairing are plain string lookups.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lint/suppress.h"
#include "lint/token.h"

namespace sp::lint {

struct IncludeRef {
  std::string target;  // include spelling, e.g. "core/worker_pool.h"
  std::size_t line = 0;
};

struct CallSite {
  std::string callee;     // spelling of the called identifier
  std::size_t token = 0;  // index of the callee identifier token
  std::size_t line = 0;
};

struct LockSite {
  std::string member;         // last identifier of the mutex expression
  std::size_t token = 0;      // index of the guard-type identifier token
  std::size_t line = 0;
  std::size_t scope_end = 0;  // token index closing the guard's block
};

struct FunctionDef {
  std::string name;        // unqualified spelling ("run", "query_many")
  std::string qualifier;   // "WorkerPool" from WorkerPool::run, or ""
  std::size_t line = 0;
  std::size_t body_begin = 0;  // token index of the body '{'
  std::size_t body_end = 0;    // token index of the matching '}'
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
};

struct LockAnnotation {
  int rank = 0;
  std::string name;    // global lock name, e.g. "serve.service.pool_mutex"
  std::string member;  // the annotated member's spelling, e.g. "mutex_"
  std::size_t line = 0;
};

struct FileIndex {
  std::string path;  // as walked (findings use this spelling)
  std::string key;   // path with the leading ".../src/" stripped
  SourceFile source;
  std::vector<CommentBlock> blocks;
  std::vector<IncludeRef> includes;
  std::vector<FunctionDef> functions;
  std::vector<LockAnnotation> annotations;
};

class ProjectIndex {
 public:
  /// Indexes one already-tokenized file and takes ownership of the
  /// token stream. Call once per file, then resolve lookups.
  void add_file(std::string path, SourceFile source);

  [[nodiscard]] const std::vector<FileIndex>& files() const { return files_; }

  /// The file indexed under `key`, or nullptr.
  [[nodiscard]] const FileIndex* by_key(std::string_view key) const;

  /// Transitive include closure of `file` as a set of file keys,
  /// `file.key` included. Only includes that resolve to indexed files
  /// are followed (system headers and out-of-tree includes are not in
  /// the index).
  [[nodiscard]] std::unordered_set<std::string> include_closure(const FileIndex& file) const;

  /// True when `file`'s closure reaches `key` directly, or reaches the
  /// header paired with `key` by stem (`core/worker_pool.h` stands in
  /// for `core/worker_pool.cpp` — definitions live in the .cpp, but
  /// consumers include the header).
  [[nodiscard]] bool closure_reaches(const std::unordered_set<std::string>& closure,
                                     std::string_view key) const;

  /// Every indexed function definition with spelling `name`.
  [[nodiscard]] std::vector<std::pair<const FileIndex*, const FunctionDef*>> definitions_of(
      std::string_view name) const;

 private:
  std::vector<FileIndex> files_;
  std::unordered_map<std::string, std::size_t> by_key_;
  std::unordered_map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
      defs_by_name_;  // name → (file idx, function idx)
};

/// The file key for `path`: everything after the last "/src/" component
/// (or after a leading "src/"), else the path unchanged. "a/b" keys are
/// what project includes spell.
[[nodiscard]] std::string file_key(std::string_view path);

/// Stem of a key with its extension dropped: "core/worker_pool".
[[nodiscard]] std::string key_stem(std::string_view key);

}  // namespace sp::lint
