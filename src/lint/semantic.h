// sp::lint cross-file semantic passes — the whole-tree analyses that
// consume the ProjectIndex (index.h) instead of one token stream at a
// time (see DESIGN.md §3.10):
//
//   lock-rank        Re-derives the acquired-after graph statically:
//                    every guard acquisition of an annotated mutex
//                    member, nested guard scopes within one function,
//                    and one level of inlining through intra-project
//                    calls (the callee must resolve by name inside the
//                    caller's include closure). Each derived edge must
//                    go strictly rank-upward per the `// lock-order:`
//                    annotations; the annotation set itself must agree
//                    with the DESIGN.md §3.5 rank table in both
//                    directions. A rank inversion, a duplicated rank,
//                    an undocumented lock, or a table row with no
//                    annotation in the tree is a finding.
//   layering         The src/ subsystem dependency DAG: layers.def
//                    (src/lint/layers.def) declares the allowed order,
//                    lowest layer first; the actual `#include` graph is
//                    derived from the index, and any upward include,
//                    undeclared subsystem, or unsanctioned same-layer
//                    include is flagged at the offending #include.
//   snapshot-escape  In serve/ and net/: a raw pointer or reference
//                    derived from a pinned shared_ptr<Snapshot> (via
//                    .get(), address-of, or a raw-declared local bound
//                    through the pin) must not be stored into a class
//                    member, a static local, or an out-parameter — all
//                    of which outlive the pinning scope. Copying the
//                    shared_ptr itself, or values read through the
//                    pin, is fine. This is exactly the bug class of the
//                    PR 6 handle_http use-after-free and the PR 9
//                    generation-tally loss.
//
// All passes emit ordinary Findings; the driver (lint.cpp) applies each
// file's sp-lint suppressions and the stale-suppression audit after
// every pass has run.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/index.h"
#include "lint/rules.h"

namespace sp::lint {

struct SemanticOptions {
  /// DESIGN.md contents for the §3.5 rank-table cross-check; empty
  /// skips the cross-check (annotation-vs-annotation checks still run).
  std::string design_md_text;
  /// layers.def contents; empty skips the layering pass entirely.
  std::string layers_def_text;
  /// Path recorded in findings about layers.def itself.
  std::string layers_def_path = "src/lint/layers.def";
};

/// The statically derived lock-order graph, for the selftest that pins
/// "the tree re-derives DESIGN.md §3.5": annotation ranks plus every
/// acquired-after edge found by scope nesting and one-level inlining.
struct LockRankGraph {
  std::map<std::string, int> ranks;
  std::set<std::pair<std::string, std::string>> edges;
};

[[nodiscard]] LockRankGraph derive_lock_graph(const ProjectIndex& index);

/// The `| rank | lock |` rows of the DESIGN.md §3.5 "Lock-order ranks"
/// table (name → rank). Parsing starts at the table's marker line and
/// stops at the next heading.
[[nodiscard]] std::map<std::string, int> parse_design_ranks(std::string_view markdown);

/// Runs all three passes over the index. Findings are unsuppressed and
/// unsorted; the driver merges them into per-file reports.
[[nodiscard]] std::vector<Finding> run_semantic_passes(const ProjectIndex& index,
                                                       const SemanticOptions& options);

}  // namespace sp::lint
