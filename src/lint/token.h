// sp::lint tokenizer — a lightweight C++ lexer for the project-invariant
// static analyzer (tools/sp_lint). No libclang, no preprocessor
// expansion: the rules in rules.h need token streams with line numbers
// and the comment text per line (for `// sp-lint: <rule>-ok(<reason>)`
// suppressions and `// lock-order:` annotations), not a full AST.
//
// The lexer understands exactly as much C++ as the rules require:
//
//   * line and block comments (collected per covered line, off the
//     token stream);
//   * string literals, including encoding prefixes and raw strings
//     (R"delim(...)delim"), and character literals — their contents
//     never produce identifier tokens, so `"rand()"` in a log message
//     cannot trip the determinism rule;
//   * preprocessor directives, folded (with line continuations) into a
//     single Preprocessor token holding the directive text;
//   * identifiers/keywords, numbers, and single-character punctuators
//     (`::` is matched by the rules as two adjacent `:` tokens).
//
// Everything else (templates, overload resolution, macros) is out of
// scope by design — the rules are written as token patterns that are
// robust to it, and the `sp-lint` suppression escape hatch covers the
// residue.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sp::lint {

enum class TokenKind : unsigned char {
  Identifier,    // keywords included; the rules match on spelling
  Number,
  String,        // any string literal, raw or not, prefix included
  CharLiteral,
  Punct,         // one character of punctuation
  Preprocessor,  // a whole directive, continuations folded
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line;  // 1-based line the token starts on
};

/// One lexed translation unit: the token stream plus the comment text
/// seen on each physical line (a block comment spanning lines
/// contributes to every line it covers; multiple comments on one line
/// are concatenated).
struct SourceFile {
  std::vector<Token> tokens;
  std::unordered_map<std::size_t, std::string> comments;

  /// Comment text on `line`, or an empty view when the line has none.
  [[nodiscard]] std::string_view comment_on(std::size_t line) const {
    const auto it = comments.find(line);
    return it == comments.end() ? std::string_view{} : std::string_view{it->second};
  }
};

/// Lexes `content`. Never fails: unterminated constructs are closed at
/// end of input (the rules run on best-effort streams; the compilers,
/// not the linter, reject malformed C++).
[[nodiscard]] SourceFile tokenize(std::string_view content);

}  // namespace sp::lint
