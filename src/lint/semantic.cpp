#include "lint/semantic.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace sp::lint {

namespace {

Finding make(std::string file, std::size_t line, std::string rule, std::string message) {
  Finding finding;
  finding.file = std::move(file);
  finding.line = line;
  finding.rule = std::move(rule);
  finding.message = std::move(message);
  return finding;
}

[[nodiscard]] bool is_punct(const Token& token, char c) {
  return token.kind == TokenKind::Punct && token.text.size() == 1 && token.text[0] == c;
}

/// True when `path` has `dir` as one of its directory components.
[[nodiscard]] bool in_dir(std::string_view path, std::string_view dir) {
  const std::string needle = "/" + std::string(dir) + "/";
  if (path.find(needle) != std::string_view::npos) return true;
  const std::string prefix = std::string(dir) + "/";
  return path.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] std::string trim(std::string_view text) {
  const std::size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return {};
  const std::size_t end = text.find_last_not_of(" \t\r");
  return std::string(text.substr(begin, end - begin + 1));
}

// ---------------------------------------------------------------------------
// Pass 1: lock-rank

/// An annotated lock resolved at an acquisition or annotation site.
struct ResolvedLock {
  const LockAnnotation* annotation = nullptr;
  const FileIndex* declared_in = nullptr;
};

/// A derived acquired-after edge with the witness site that produced it.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;      // witness: where `to` is acquired (or called)
  std::size_t line = 0;
  std::string via;       // callee name when derived by one-level inlining
};

class LockRankPass {
 public:
  explicit LockRankPass(const ProjectIndex& index) : index_(index) {
    for (const FileIndex& file : index.files()) {
      for (const LockAnnotation& annotation : file.annotations) {
        by_member_[annotation.member].push_back({&annotation, &file});
      }
    }
  }

  /// Resolves the mutex member spelling acquired in `site_file` to its
  /// annotation: candidates must be declared in the acquiring file's
  /// include closure; ties break to the same file, then the same stem
  /// (foo.cpp ↔ foo.h), then the same directory. Ambiguity resolves to
  /// nothing — the pass stays silent rather than guess a rank.
  [[nodiscard]] std::optional<ResolvedLock> resolve(
      const std::string& member, const FileIndex& site_file,
      const std::unordered_set<std::string>& closure) const {
    const auto it = by_member_.find(member);
    if (it == by_member_.end()) return std::nullopt;
    std::vector<ResolvedLock> viable;
    for (const ResolvedLock& candidate : it->second) {
      if (index_.closure_reaches(closure, candidate.declared_in->key)) {
        viable.push_back(candidate);
      }
    }
    if (viable.empty()) return std::nullopt;
    if (viable.size() == 1) return viable[0];
    const auto prefer = [&](auto&& predicate) -> std::optional<ResolvedLock> {
      std::vector<ResolvedLock> kept;
      for (const ResolvedLock& candidate : viable) {
        if (predicate(*candidate.declared_in)) kept.push_back(candidate);
      }
      if (kept.size() == 1) return kept[0];
      return std::nullopt;
    };
    if (auto hit = prefer([&](const FileIndex& f) { return &f == &site_file; })) return hit;
    const std::string stem = key_stem(site_file.key);
    if (auto hit = prefer([&](const FileIndex& f) { return key_stem(f.key) == stem; })) {
      return hit;
    }
    const std::string dir = site_file.key.substr(0, site_file.key.rfind('/') + 1);
    if (auto hit = prefer([&](const FileIndex& f) {
          return f.key.substr(0, f.key.rfind('/') + 1) == dir;
        })) {
      return hit;
    }
    return std::nullopt;
  }

  /// Every acquired-after edge in the tree: guard scopes nested within
  /// one function, plus one level of inlining — a call made while a
  /// guard is held contributes the callee's own acquisitions.
  [[nodiscard]] std::vector<LockEdge> derive_edges() const {
    std::vector<LockEdge> edges;
    for (const FileIndex& file : index_.files()) {
      const auto closure = index_.include_closure(file);
      for (const FunctionDef& fn : file.functions) {
        for (const LockSite& held : fn.locks) {
          const auto from = resolve(held.member, file, closure);
          if (!from) continue;
          // Direct nesting: a second guard constructed inside the span
          // the first is held for.
          for (const LockSite& inner : fn.locks) {
            if (inner.token <= held.token || inner.token > held.scope_end) continue;
            const auto to = resolve(inner.member, file, closure);
            if (!to || to->annotation->name == from->annotation->name) continue;
            edges.push_back({from->annotation->name, to->annotation->name, file.path,
                             inner.line, ""});
          }
          // One-level inlining: calls made under the guard pull in the
          // callee's acquisitions. The callee must resolve by name to a
          // definition whose file (or stem-paired header) is in the
          // caller's include closure — cross-TU, but never cross-tree.
          for (const CallSite& call : fn.calls) {
            if (call.token <= held.token || call.token > held.scope_end) continue;
            for (const auto& [callee_file, callee] : index_.definitions_of(call.callee)) {
              if (!index_.closure_reaches(closure, callee_file->key)) continue;
              const auto callee_closure = index_.include_closure(*callee_file);
              for (const LockSite& inner : callee->locks) {
                const auto to = resolve(inner.member, *callee_file, callee_closure);
                if (!to || to->annotation->name == from->annotation->name) continue;
                edges.push_back({from->annotation->name, to->annotation->name, file.path,
                                 call.line, call.callee});
              }
            }
          }
        }
      }
    }
    return edges;
  }

  void run(const SemanticOptions& options, std::vector<Finding>& findings) const {
    // Annotation-vs-annotation: a global lock name must carry one rank,
    // and a rank must name one lock.
    std::map<std::string, int> ranks;
    std::map<int, std::string> by_rank;
    for (const FileIndex& file : index_.files()) {
      for (const LockAnnotation& annotation : file.annotations) {
        const auto [it, inserted] = ranks.emplace(annotation.name, annotation.rank);
        if (!inserted && it->second != annotation.rank) {
          findings.push_back(make(file.path, annotation.line, "lock-rank",
                              "lock '" + annotation.name + "' annotated rank " +
                                  std::to_string(annotation.rank) + " here but rank " +
                                  std::to_string(it->second) + " elsewhere"));
          continue;
        }
        const auto [rank_it, rank_new] = by_rank.emplace(annotation.rank, annotation.name);
        if (!rank_new && rank_it->second != annotation.name) {
          findings.push_back(make(file.path, annotation.line, "lock-rank",
                              "rank " + std::to_string(annotation.rank) + " is claimed by both '" +
                                  rank_it->second + "' and '" + annotation.name +
                                  "' — ranks must totally order the hierarchy"));
        }
      }
    }

    // The derived graph must be strictly rank-upward.
    for (const LockEdge& edge : derive_edges()) {
      const int from_rank = ranks.at(edge.from);
      const int to_rank = ranks.at(edge.to);
      if (from_rank < to_rank) continue;
      std::string message = "acquiring '" + edge.to + "' (rank " + std::to_string(to_rank) +
                            ") while holding '" + edge.from + "' (rank " +
                            std::to_string(from_rank) + ") inverts the documented order";
      if (!edge.via.empty()) message += " (one level in, via call to '" + edge.via + "')";
      findings.push_back(make(edge.file, edge.line, "lock-rank", std::move(message)));
    }

    // Cross-check against the DESIGN.md §3.5 table, both directions.
    if (options.design_md_text.empty()) return;
    const auto table = parse_rank_table(options.design_md_text);
    std::unordered_set<std::string> documented;
    for (const auto& [name, row] : table) documented.insert(name);
    for (const FileIndex& file : index_.files()) {
      for (const LockAnnotation& annotation : file.annotations) {
        const auto it = table.find(annotation.name);
        if (it == table.end()) {
          findings.push_back(make(file.path, annotation.line, "lock-rank",
                              "lock '" + annotation.name +
                                  "' is not in the DESIGN.md §3.5 rank table — document it "
                                  "before shipping a new lock"));
        } else if (it->second.rank != annotation.rank) {
          findings.push_back(make(file.path, annotation.line, "lock-rank",
                              "lock '" + annotation.name + "' annotated rank " +
                                  std::to_string(annotation.rank) + " but DESIGN.md §3.5 says " +
                                  std::to_string(it->second.rank)));
        }
        documented.erase(annotation.name);
      }
    }
    for (const std::string& name : documented) {
      findings.push_back(make("DESIGN.md", table.at(name).line, "lock-rank",
                          "documented lock '" + name +
                              "' has no `// lock-order:` annotation anywhere in the tree"));
    }
  }

  struct TableRow {
    int rank = 0;
    std::size_t line = 0;
  };

  [[nodiscard]] static std::map<std::string, TableRow> parse_rank_table(
      std::string_view markdown) {
    std::map<std::string, TableRow> rows;
    std::istringstream in{std::string(markdown)};
    std::string line;
    bool armed = false;
    for (std::size_t number = 1; std::getline(in, line); ++number) {
      if (line.find("Lock-order ranks") != std::string::npos) {
        armed = true;
        continue;
      }
      if (!armed) continue;
      if (line.rfind("###", 0) == 0 || line.rfind("**", 0) == 0) break;
      const std::string text = trim(line);
      if (text.empty() || text.front() != '|') continue;
      // | <rank> | `<name>` | — split on '|', expect two payload cells.
      std::vector<std::string> cells;
      std::size_t at = 1;
      while (at <= text.size()) {
        const std::size_t next = text.find('|', at);
        if (next == std::string::npos) break;
        cells.push_back(trim(text.substr(at, next - at)));
        at = next + 1;
      }
      if (cells.size() != 2) continue;
      const std::string& rank_cell = cells[0];
      std::string name_cell = cells[1];
      if (rank_cell.empty() ||
          rank_cell.find_first_not_of("0123456789") != std::string::npos) {
        continue;  // header or divider row
      }
      if (name_cell.size() >= 2 && name_cell.front() == '`' && name_cell.back() == '`') {
        name_cell = name_cell.substr(1, name_cell.size() - 2);
      }
      if (name_cell.empty()) continue;
      rows.emplace(name_cell, TableRow{std::stoi(rank_cell), number});
    }
    return rows;
  }

 private:
  const ProjectIndex& index_;
  std::unordered_map<std::string, std::vector<ResolvedLock>> by_member_;
};

// ---------------------------------------------------------------------------
// Pass 2: layering

struct LayerDef {
  std::map<std::string, std::size_t> layer_of;         // subsystem → layer index
  std::vector<std::string> layer_names;                // by index
  std::set<std::pair<std::string, std::string>> allowed;  // explicit exceptions
  std::vector<Finding> parse_findings;
};

[[nodiscard]] LayerDef parse_layers(std::string_view text, const std::string& path) {
  LayerDef def;
  std::istringstream in{std::string(text)};
  std::string line;
  for (std::size_t number = 1; std::getline(in, line); ++number) {
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::istringstream fields(trimmed);
    std::string keyword;
    fields >> keyword;
    if (keyword == "layer") {
      std::string name;
      fields >> name;
      if (name.empty()) {
        def.parse_findings.push_back(make(path, number, "layering", "layer line has no name"));
        continue;
      }
      def.layer_names.push_back(name);
      std::string subsystem;
      std::size_t members = 0;
      while (fields >> subsystem) {
        ++members;
        if (!def.layer_of.emplace(subsystem, def.layer_names.size() - 1).second) {
          def.parse_findings.push_back(make(path, number, "layering",
                                        "subsystem '" + subsystem +
                                            "' is declared in more than one layer"));
        }
      }
      if (members == 0) {
        def.parse_findings.push_back(make(path, number, "layering",
                                      "layer '" + name + "' declares no subsystems"));
      }
    } else if (keyword == "allow") {
      std::string from, to;
      fields >> from >> to;
      if (from.empty() || to.empty()) {
        def.parse_findings.push_back(make(path, number, "layering",
                                      "allow line needs `allow <from> <to>`"));
        continue;
      }
      def.allowed.emplace(from, to);
    } else {
      def.parse_findings.push_back(make(path, number, "layering",
                                    "unknown directive '" + keyword +
                                        "' (expected `layer` or `allow`)"));
    }
  }
  return def;
}

void run_layering(const ProjectIndex& index, const SemanticOptions& options,
                  std::vector<Finding>& findings) {
  if (options.layers_def_text.empty()) return;
  LayerDef def = parse_layers(options.layers_def_text, options.layers_def_path);
  for (Finding& finding : def.parse_findings) findings.push_back(std::move(finding));

  for (const FileIndex& file : index.files()) {
    // Only files under a src/ subsystem participate: file_key stripped
    // a ".../src/" prefix iff path != key, and the key's first
    // component is the subsystem. Top-level files (src/sp.h) and
    // non-src roots (tests/, examples/) are consumers, not layers.
    if (file.path == file.key) continue;
    const std::size_t slash = file.key.find('/');
    if (slash == std::string::npos) continue;
    const std::string subsystem = file.key.substr(0, slash);
    const auto source_layer = def.layer_of.find(subsystem);
    if (source_layer == def.layer_of.end()) {
      findings.push_back(make(file.path, 1, "layering",
                          "subsystem '" + subsystem +
                              "' is not declared in layers.def — add it to a layer"));
      continue;
    }
    for (const IncludeRef& include : file.includes) {
      const std::size_t include_slash = include.target.find('/');
      if (include_slash == std::string::npos) continue;  // "sp.h" umbrella style
      const std::string target = include.target.substr(0, include_slash);
      if (target == subsystem) continue;
      const auto target_layer = def.layer_of.find(target);
      if (target_layer == def.layer_of.end()) {
        findings.push_back(make(file.path, include.line, "layering",
                            "#include \"" + include.target + "\": subsystem '" + target +
                                "' is not declared in layers.def"));
        continue;
      }
      if (def.allowed.count({subsystem, target}) != 0) continue;
      if (target_layer->second > source_layer->second) {
        findings.push_back(make(file.path, include.line, "layering",
                            "#include \"" + include.target + "\": upward dependency — '" +
                                subsystem + "' (layer " + def.layer_names[source_layer->second] +
                                ") may not include '" + target + "' (layer " +
                                def.layer_names[target_layer->second] + ")"));
      } else if (target_layer->second == source_layer->second) {
        findings.push_back(make(file.path, include.line, "layering",
                            "#include \"" + include.target + "\": same-layer dependency '" +
                                subsystem + "' → '" + target +
                                "' is not declared; add an `allow " + subsystem + " " + target +
                                "` line or move one subsystem"));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 3: snapshot-escape

/// Name sets tracked per function body: pins (shared_ptr<Snapshot>
/// owners) and raws (pointers/references derived through a pin).
struct EscapeState {
  std::unordered_set<std::string> pins;
  std::unordered_set<std::string> raws;
};

[[nodiscard]] bool is_assign_token(const std::vector<Token>& tokens, std::size_t i) {
  if (!is_punct(tokens[i], '=')) return false;
  if (i + 1 < tokens.size() && is_punct(tokens[i + 1], '=')) return false;  // ==
  if (i == 0) return false;
  const Token& before = tokens[i - 1];
  if (before.kind != TokenKind::Punct) return true;
  const char c = before.text[0];
  return c != '=' && c != '!' && c != '<' && c != '>' && c != '+' && c != '-' && c != '*' &&
         c != '/' && c != '%' && c != '&' && c != '|' && c != '^';
}

/// True when the token range [begin, end) yields a raw pointer or
/// reference into pinned snapshot data: `pin.get()`, address-of an
/// expression rooted at a pin, or any reference to an already-derived
/// raw local. Value reads through the pin (`pin->field` copied into a
/// plain variable) are not raw.
[[nodiscard]] bool raw_expr(const std::vector<Token>& tokens, std::size_t begin,
                            std::size_t end, const EscapeState& state) {
  for (std::size_t i = begin; i < end; ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::Identifier) continue;
    if (state.raws.count(token.text) != 0) return true;
    if (state.pins.count(token.text) == 0) continue;
    if (i > begin && is_punct(tokens[i - 1], '&')) return true;             // &pin...
    if (i > begin + 1 && is_punct(tokens[i - 2], '&') && is_punct(tokens[i - 1], '*')) {
      return true;                                                          // &*pin
    }
    if (i + 3 < end && is_punct(tokens[i + 1], '.') &&
        tokens[i + 2].kind == TokenKind::Identifier && tokens[i + 2].text == "get" &&
        is_punct(tokens[i + 3], '(')) {
      return true;                                                          // pin.get()
    }
  }
  return false;
}

/// True when [begin, end) mentions a pin at all (any access form).
[[nodiscard]] bool mentions_pin(const std::vector<Token>& tokens, std::size_t begin,
                                std::size_t end, const EscapeState& state) {
  for (std::size_t i = begin; i < end; ++i) {
    if (tokens[i].kind == TokenKind::Identifier && state.pins.count(tokens[i].text) != 0) {
      return true;
    }
  }
  return false;
}

/// Raw out-parameters (pointer or reference) of the function whose
/// parameter list spans (params_open, params_close).
[[nodiscard]] std::unordered_set<std::string> out_params(const std::vector<Token>& tokens,
                                                         std::size_t params_open,
                                                         std::size_t params_close) {
  std::unordered_set<std::string> names;
  std::size_t depth = 0;
  bool raw = false;
  std::string last_ident;
  for (std::size_t i = params_open + 1; i <= params_close && i < tokens.size(); ++i) {
    const bool splitter =
        i == params_close || (depth == 0 && is_punct(tokens[i], ','));
    if (is_punct(tokens[i], '(') || is_punct(tokens[i], '<') || is_punct(tokens[i], '[')) {
      ++depth;
    } else if (is_punct(tokens[i], ')') || is_punct(tokens[i], '>') ||
               is_punct(tokens[i], ']')) {
      if (depth > 0) --depth;
    } else if (depth == 0 && (is_punct(tokens[i], '*') || is_punct(tokens[i], '&'))) {
      raw = true;
    } else if (depth == 0 && tokens[i].kind == TokenKind::Identifier) {
      last_ident = tokens[i].text;
    }
    if (splitter) {
      if (raw && !last_ident.empty()) names.insert(last_ident);
      raw = false;
      last_ident.clear();
    }
  }
  return names;
}

class SnapshotEscapePass {
 public:
  void run(const ProjectIndex& index, std::vector<Finding>& findings) const {
    for (const FileIndex& file : index.files()) {
      if (!in_dir(file.path, "serve") && !in_dir(file.path, "net")) continue;
      for (const FunctionDef& fn : file.functions) {
        analyze_function(file, fn, findings);
      }
    }
  }

 private:
  static void analyze_function(const FileIndex& file, const FunctionDef& fn,
                               std::vector<Finding>& findings) {
    const auto& tokens = file.source.tokens;
    std::unordered_set<std::string> outs;
    if (fn.body_begin > 0) {
      // Walk back from the body to the parameter list's ')'.
      std::size_t close = fn.body_begin;
      while (close-- > 0) {
        if (is_punct(tokens[close], ')')) break;
        if (is_punct(tokens[close], '{') || is_punct(tokens[close], ';')) {
          close = 0;
          break;
        }
      }
      if (close > 0) {
        std::size_t depth = 0;
        std::size_t open = close + 1;
        while (open-- > 0) {
          if (is_punct(tokens[open], ')')) ++depth;
          if (is_punct(tokens[open], '(') && --depth == 0) break;
        }
        outs = out_params(tokens, open, close);
      }
    }

    EscapeState state;
    // Statement-at-a-time scan: statements are token runs ending at ';'
    // at brace depth relative to the body (braces reset nothing — the
    // name sets are function-scoped, a deliberate over-approximation:
    // a pin's derived raws stay suspect past the pin's block).
    std::size_t statement_begin = fn.body_begin + 1;
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end && i < tokens.size(); ++i) {
      if (is_punct(tokens[i], '{') || is_punct(tokens[i], '}')) {
        statement_begin = i + 1;
        continue;
      }
      if (!is_punct(tokens[i], ';')) continue;
      analyze_statement(file, tokens, statement_begin, i, outs, state, findings);
      statement_begin = i + 1;
    }
  }

  static void analyze_statement(const FileIndex& file, const std::vector<Token>& tokens,
                                std::size_t begin, std::size_t end,
                                const std::unordered_set<std::string>& outs,
                                EscapeState& state, std::vector<Finding>& findings) {
    if (begin >= end) return;
    // Locate the top-level assignment, if any.
    std::size_t assign = end;
    std::size_t depth = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (is_punct(tokens[i], '(') || is_punct(tokens[i], '[')) ++depth;
      if (is_punct(tokens[i], ')') || is_punct(tokens[i], ']')) {
        if (depth > 0) --depth;
      }
      if (depth == 0 && is_assign_token(tokens, i)) {
        assign = i;
        break;
      }
    }

    const bool is_static = tokens[begin].kind == TokenKind::Identifier &&
                           tokens[begin].text == "static";

    if (assign != end) {
      // Declaration heuristic: the statement starts with an identifier
      // (a type name, const, auto, static) and the token right before
      // the variable name is type-ish (identifier, '*', '&', '>'), so
      // `auto p = ...` and `const T* p = ...` register while `p = ...`,
      // `x.m = ...` and `*out = ...` do not.
      const std::size_t name_at = assign - 1;
      const bool named = tokens[name_at].kind == TokenKind::Identifier;
      const bool declaration =
          named && name_at > begin && tokens[begin].kind == TokenKind::Identifier &&
          (tokens[name_at - 1].kind == TokenKind::Identifier ||
           is_punct(tokens[name_at - 1], '*') || is_punct(tokens[name_at - 1], '&') ||
           is_punct(tokens[name_at - 1], '>'));
      if (declaration) {
        track_declaration(file, tokens, begin, name_at, assign + 1, end, is_static, state,
                          findings);
        return;
      }
      check_store(file, tokens, begin, assign, end, outs, state, findings);
      return;
    }

    // No '=': constructor-style declarations `T* p(expr);` / `T& r{...}`
    // are rare in this tree; what matters here is member-container
    // stores: `member_.push_back(raw)`.
    check_container_store(file, tokens, begin, end, state, findings);
  }

  static void track_declaration(const FileIndex& file, const std::vector<Token>& tokens,
                                std::size_t begin, std::size_t name_at, std::size_t init_begin,
                                std::size_t init_end, bool is_static, EscapeState& state,
                                std::vector<Finding>& findings) {
    const std::string& name = tokens[name_at].text;
    // Pin: the declared type spells shared_ptr<...Snapshot...>, or the
    // initializer calls a snapshot() accessor or make_shared<Snapshot>.
    bool type_shared = false;
    bool type_snapshot = false;
    bool type_raw = false;
    for (std::size_t i = begin; i < name_at; ++i) {
      if (tokens[i].kind == TokenKind::Identifier) {
        if (tokens[i].text == "shared_ptr") type_shared = true;
        if (tokens[i].text == "Snapshot") type_snapshot = true;
      }
      if (is_punct(tokens[i], '*') || is_punct(tokens[i], '&')) type_raw = true;
    }
    bool init_pins = false;
    bool init_mentions_snapshot_type = false;
    for (std::size_t i = init_begin; i < init_end; ++i) {
      if (tokens[i].kind != TokenKind::Identifier) continue;
      if (tokens[i].text == "Snapshot") init_mentions_snapshot_type = true;
      const bool called = i + 1 < init_end && is_punct(tokens[i + 1], '(');
      if (called && (tokens[i].text == "snapshot" || tokens[i].text == "make_shared")) {
        init_pins = tokens[i].text == "snapshot" ||
                    init_mentions_snapshot_type;  // make_shared<Snapshot>(...)
      }
    }
    if (!type_raw && ((type_shared && type_snapshot) || init_pins)) {
      state.pins.insert(name);
      return;
    }
    // Raw derivation: a raw-yielding initializer, or a pointer/reference
    // declarator bound through a pin.
    const bool raw_init = raw_expr(tokens, init_begin, init_end, state);
    const bool ref_through_pin =
        type_raw && mentions_pin(tokens, init_begin, init_end, state);
    if (raw_init || ref_through_pin) {
      if (is_static) {
        findings.push_back(make(file.path, tokens[name_at].line, "snapshot-escape",
                            "static local '" + name +
                                "' captures a raw pointer/reference derived from a pinned "
                                "snapshot; it outlives every pin — keep the shared_ptr "
                                "instead"));
        return;
      }
      state.raws.insert(name);
    }
  }

  static void check_store(const FileIndex& file, const std::vector<Token>& tokens,
                          std::size_t begin, std::size_t assign, std::size_t end,
                          const std::unordered_set<std::string>& outs, EscapeState& state,
                          std::vector<Finding>& findings) {
    if (!raw_expr(tokens, assign + 1, end, state)) return;
    // Members: a bare `member_ = ...` or `this->member_ = ...` (trailing
    // underscore is the project's member spelling, enforced by style).
    const Token& lhs_last = tokens[assign - 1];
    if (lhs_last.kind == TokenKind::Identifier && !lhs_last.text.empty() &&
        lhs_last.text.back() == '_') {
      const bool bare = assign - 1 == begin;
      const bool via_this = assign >= begin + 4 && is_punct(tokens[assign - 2], '>') &&
                            is_punct(tokens[assign - 3], '-') &&
                            tokens[assign - 4].kind == TokenKind::Identifier &&
                            tokens[assign - 4].text == "this";
      if (bare || via_this) {
        findings.push_back(make(file.path, lhs_last.line, "snapshot-escape",
                            "storing a raw pointer/reference derived from a pinned snapshot "
                            "into member '" + lhs_last.text +
                                "' — the member outlives the pin; store the shared_ptr or "
                                "copy the value"));
        return;
      }
    }
    // Out-parameters: `*out = ...`, `out->field = ...`, `out.field = ...`.
    for (std::size_t i = begin; i < assign; ++i) {
      if (tokens[i].kind == TokenKind::Identifier && outs.count(tokens[i].text) != 0) {
        findings.push_back(make(file.path, tokens[i].line, "snapshot-escape",
                            "storing a raw pointer/reference derived from a pinned snapshot "
                            "through out-parameter '" + tokens[i].text +
                                "' — the caller's storage outlives the pin"));
        return;
      }
    }
  }

  static void check_container_store(const FileIndex& file, const std::vector<Token>& tokens,
                                    std::size_t begin, std::size_t end, EscapeState& state,
                                    std::vector<Finding>& findings) {
    for (std::size_t i = begin; i + 3 < end; ++i) {
      const Token& object = tokens[i];
      if (object.kind != TokenKind::Identifier || object.text.empty() ||
          object.text.back() != '_') {
        continue;
      }
      if (!is_punct(tokens[i + 1], '.')) continue;
      const Token& method = tokens[i + 2];
      if (method.kind != TokenKind::Identifier ||
          (method.text != "push_back" && method.text != "emplace_back" &&
           method.text != "insert" && method.text != "emplace" && method.text != "push" &&
           method.text != "assign")) {
        continue;
      }
      if (!is_punct(tokens[i + 3], '(')) continue;
      std::size_t close = i + 3;
      std::size_t depth = 0;
      for (; close < end; ++close) {
        if (is_punct(tokens[close], '(')) ++depth;
        if (is_punct(tokens[close], ')') && --depth == 0) break;
      }
      if (raw_expr(tokens, i + 4, close, state)) {
        findings.push_back(make(file.path, object.line, "snapshot-escape",
                            "storing a raw pointer/reference derived from a pinned snapshot "
                            "into member container '" + object.text +
                                "' — it outlives the pin; store the shared_ptr or copy the "
                                "value"));
      }
    }
  }
};

}  // namespace

LockRankGraph derive_lock_graph(const ProjectIndex& index) {
  const LockRankPass pass(index);
  LockRankGraph graph;
  for (const FileIndex& file : index.files()) {
    for (const LockAnnotation& annotation : file.annotations) {
      graph.ranks.emplace(annotation.name, annotation.rank);
    }
  }
  for (const LockEdge& edge : pass.derive_edges()) graph.edges.emplace(edge.from, edge.to);
  return graph;
}

std::map<std::string, int> parse_design_ranks(std::string_view markdown) {
  std::map<std::string, int> ranks;
  for (const auto& [name, row] : LockRankPass::parse_rank_table(markdown)) {
    ranks.emplace(name, row.rank);
  }
  return ranks;
}

std::vector<Finding> run_semantic_passes(const ProjectIndex& index,
                                         const SemanticOptions& options) {
  std::vector<Finding> findings;
  LockRankPass(index).run(options, findings);
  run_layering(index, options, findings);
  SnapshotEscapePass().run(index, findings);
  return findings;
}

}  // namespace sp::lint
