// sp::lint rule catalog — the project invariants enforced as token
// patterns over lint::SourceFile streams (see DESIGN.md §3.5).
//
// Shipped rules, each grounded in a subsystem contract:
//
//   determinism     No wall-clock or nondeterministic randomness in any
//                   detect/serve/pipeline path: `rand`/`srand`,
//                   `std::random_device`, `system_clock`, and argless
//                   `time(nullptr/NULL/0)` are banned outside src/synth/
//                   (whose hash-based seeding is the one sanctioned
//                   entropy source). Protects the serial/parallel
//                   byte-identity (PR 1) and crash-resume byte-identity
//                   (PR 3) guarantees.
//   atomics         `memory_order_relaxed` is allowed only inside
//                   src/obs/ (the sharded metric cells it was designed
//                   for); every other site must carry a suppression
//                   naming why relaxed is sound there. `volatile` is
//                   never a synchronization primitive and is flagged
//                   everywhere.
//   mmap-safety     In serve/: no non-const pointer may be minted from
//                   the sibdb mapping (`reinterpret_cast<T*>` with a
//                   non-const T, or any `const_cast`), and a
//                   `reinterpret_cast` whose operand derives from the
//                   mapped base (`data_`/`mapping`) must be preceded by
//                   a bounds check in the same function body.
//   header-hygiene  Library headers must not include <iostream> (static
//                   initialization + code bloat in every consumer) and
//                   must not contain `using namespace` at any scope.
//   lock-order      Every std::mutex-family member declaration carries a
//                   `// lock-order: <rank> <name>` annotation naming its
//                   place in the project lock hierarchy — the static
//                   half of lint::LockOrderRegistry (lock_order.h).
//
// Suppressions: `// sp-lint: <rule>-ok(<reason>)` on the finding's line
// or the line above suppresses one rule there; a file-scoped
// `// sp-lint-file: <rule>-ok(<reason>)` anywhere in the file suppresses
// the rule for the whole file (used where a file-level design comment
// already argues the invariant, e.g. the relaxed counters of
// serve/service.cpp). A suppression with an empty reason is itself a
// finding (rule `suppression`): every escape hatch must say why.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/token.h"

namespace sp::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;  // set when suppressed

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Runs every rule over one lexed file. `path` is the path as walked
/// (rule applicability is path-based: src/obs/, serve/, src/synth/,
/// header extensions) and is copied into each finding.
[[nodiscard]] std::vector<Finding> run_rules(std::string_view path, const SourceFile& source);

/// Convenience: tokenize + run_rules.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path, std::string_view content);

}  // namespace sp::lint
