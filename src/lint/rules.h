// sp::lint per-file rule catalog — the project invariants enforced as
// token patterns over one lint::SourceFile stream at a time (see
// DESIGN.md §3.5). The cross-file analyses live in semantic.h; the
// driver (lint.h) runs both over the same index and owns suppression
// application.
//
// Shipped per-file rules, each grounded in a subsystem contract:
//
//   determinism     No wall-clock or nondeterministic randomness in any
//                   detect/serve/pipeline path: `rand`/`srand`,
//                   `std::random_device`, `system_clock`, and argless
//                   `time(nullptr/NULL/0)` are banned outside src/synth/
//                   (whose hash-based seeding is the one sanctioned
//                   entropy source). Protects the serial/parallel
//                   byte-identity (PR 1) and crash-resume byte-identity
//                   (PR 3) guarantees.
//   atomics         `memory_order_relaxed` is allowed only inside
//                   src/obs/ (the sharded metric cells it was designed
//                   for); every other site must carry a suppression
//                   naming why relaxed is sound there. `volatile` is
//                   never a synchronization primitive and is flagged
//                   everywhere.
//   mmap-safety     In serve/: no non-const pointer may be minted from
//                   the sibdb mapping (`reinterpret_cast<T*>` with a
//                   non-const T, or any `const_cast`), and a
//                   `reinterpret_cast` whose operand derives from the
//                   mapped base (`data_`/`mapping`) must be preceded by
//                   a bounds check in the same function body.
//   header-hygiene  Library headers must not include <iostream> (static
//                   initialization + code bloat in every consumer) and
//                   must not contain `using namespace` at any scope.
//   lock-order      Every std::mutex-family member declaration carries a
//                   `// lock-order: <rank> <name>` annotation naming its
//                   place in the project lock hierarchy — the static
//                   half of lint::LockOrderRegistry (lock_order.h). The
//                   ranks themselves are verified by the cross-file
//                   `lock-rank` pass (semantic.h).
//
// Suppressions: `// sp-lint: <rule>-ok(<reason>)` on the finding's line
// or the line above suppresses one rule there; a file-scoped
// `// sp-lint-file: <rule>-ok(<reason>)` anywhere in the file suppresses
// the rule for the whole file (used where a file-level design comment
// already argues the invariant, e.g. the relaxed counters of
// serve/service.cpp). A suppression with an empty reason is itself a
// finding (rule `suppression`), and one that silences nothing is a
// `stale-suppression` finding: every escape hatch must say why, and
// must still be earning its keep (suppress.h).
#pragma once

#include <string_view>
#include <vector>

#include "lint/finding.h"
#include "lint/suppress.h"
#include "lint/token.h"

namespace sp::lint {

/// Runs the per-file rule catalog over one lexed file, appending raw
/// (unsuppressed, unsorted) findings. `path` is the path as walked
/// (rule applicability is path-based: src/obs/, serve/, src/synth/,
/// header extensions) and is copied into each finding; `blocks` are the
/// file's merged comment blocks (comment_blocks()). The driver applies
/// suppressions afterwards, so their use-tracking also spans the
/// semantic passes.
void run_file_rules(std::string_view path, const SourceFile& source,
                    const std::vector<CommentBlock>& blocks, std::vector<Finding>& findings);

}  // namespace sp::lint
