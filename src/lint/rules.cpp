#include "lint/rules.h"

#include <algorithm>
#include <cctype>

namespace sp::lint {

namespace {

Finding make(std::string file, std::size_t line, std::string rule, std::string message) {
  Finding finding;
  finding.file = std::move(file);
  finding.line = line;
  finding.rule = std::move(rule);
  finding.message = std::move(message);
  return finding;
}

// ---------------------------------------------------------------------------
// Path classification

[[nodiscard]] bool has_suffix(std::string_view path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

[[nodiscard]] bool is_header(std::string_view path) {
  return has_suffix(path, ".h") || has_suffix(path, ".hpp");
}

/// True when `path` has `dir` as one of its directory components.
[[nodiscard]] bool in_dir(std::string_view path, std::string_view dir) {
  const std::string needle = "/" + std::string(dir) + "/";
  if (path.find(needle) != std::string_view::npos) return true;
  const std::string prefix = std::string(dir) + "/";
  return path.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] bool contains_ci(std::string_view haystack, std::string_view needle) {
  const auto it = std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end(),
                              [](char a, char b) {
                                return std::tolower(static_cast<unsigned char>(a)) ==
                                       std::tolower(static_cast<unsigned char>(b));
                              });
  return it != haystack.end();
}

// ---------------------------------------------------------------------------
// Token-stream helpers

[[nodiscard]] bool is_ident(const Token& token, std::string_view text) {
  return token.kind == TokenKind::Identifier && token.text == text;
}

[[nodiscard]] bool is_punct(const Token& token, char c) {
  return token.kind == TokenKind::Punct && token.text.size() == 1 && token.text[0] == c;
}

/// Index of the matching closer for the opener at `open`, or the stream
/// end. `opener`/`closer` are single punctuation characters.
[[nodiscard]] std::size_t matching(const std::vector<Token>& tokens, std::size_t open,
                                   char opener, char closer) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], opener)) ++depth;
    if (is_punct(tokens[i], closer) && --depth == 0) return i;
  }
  return tokens.size();
}

/// Index of the matching opener for the closer at `close`, scanning
/// backwards. Returns 0 when unbalanced.
[[nodiscard]] std::size_t matching_back(const std::vector<Token>& tokens, std::size_t close,
                                        char opener, char closer) {
  std::size_t depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(tokens[i], closer)) ++depth;
    if (is_punct(tokens[i], opener) && --depth == 0) return i;
  }
  return 0;
}

/// True when the ')' at `close` ends a control-flow condition —
/// `if (...)`, `while (...)` and friends — rather than a parameter list.
[[nodiscard]] bool closes_control_condition(const std::vector<Token>& tokens,
                                            std::size_t close) {
  const std::size_t open = matching_back(tokens, close, '(', ')');
  if (open == 0) return false;
  const Token& before = tokens[open - 1];
  return before.kind == TokenKind::Identifier &&
         (before.text == "if" || before.text == "for" || before.text == "while" ||
          before.text == "switch" || before.text == "catch");
}

/// Start index of the function body enclosing token `at`: walks outward
/// over unmatched '{'s and accepts the first one that directly follows a
/// parameter-list ')' (allowing const/noexcept/override/trailing-return
/// tokens in between) — a function or lambda body, as opposed to a
/// class, namespace or control-flow brace. Returns 0 when no enclosing
/// function is found.
[[nodiscard]] std::size_t enclosing_function_start(const std::vector<Token>& tokens,
                                                   std::size_t at) {
  std::size_t depth = 0;
  for (std::size_t i = at; i-- > 0;) {
    if (is_punct(tokens[i], '}')) ++depth;
    if (!is_punct(tokens[i], '{')) continue;
    if (depth > 0) {
      --depth;
      continue;
    }
    // Unmatched '{': look back a few tokens for the parameter-list ')'.
    std::size_t back = i;
    for (int hops = 0; back-- > 0 && hops < 8; ++hops) {
      const Token& token = tokens[back];
      if (is_punct(token, ')')) {
        if (closes_control_condition(tokens, back)) break;  // if/for/while body
        return i;
      }
      const bool qualifier = token.kind == TokenKind::Identifier &&
                             (token.text == "const" || token.text == "noexcept" ||
                              token.text == "override" || token.text == "final" ||
                              token.text == "mutable");
      const bool arrow_type = token.kind == TokenKind::Identifier ||
                              is_punct(token, '>') || is_punct(token, '-') ||
                              is_punct(token, ':') || is_punct(token, '*');
      if (!qualifier && !arrow_type) break;
    }
    // Class/namespace/initializer/control brace: keep walking outward.
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Rules

void rule_determinism(std::string_view path, const SourceFile& source,
                      std::vector<Finding>& findings) {
  if (in_dir(path, "synth")) return;  // the sanctioned seeding site
  const auto& tokens = source.tokens;
  const auto flag = [&](std::size_t i, std::string message) {
    findings.push_back(make(std::string(path), tokens[i].line, "determinism", std::move(message)));
  };
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::Identifier) continue;
    const bool called = i + 1 < tokens.size() && is_punct(tokens[i + 1], '(');
    if ((token.text == "rand" || token.text == "srand") && called) {
      flag(i, token.text + "() draws from hidden global state; derive values from "
                           "sp::synth::mix* seeding instead");
    } else if (token.text == "random_device") {
      flag(i, "std::random_device is nondeterministic; seed from configuration so runs "
              "stay byte-reproducible");
    } else if (token.text == "system_clock") {
      flag(i, "system_clock reads the wall clock; use steady_clock for intervals or pass "
              "timestamps in as data");
    } else if (token.text == "random_shuffle") {
      flag(i, "random_shuffle uses unspecified global randomness; use std::shuffle with a "
              "seeded engine");
    } else if (token.text == "time" && called && i + 2 < tokens.size()) {
      const Token& arg = tokens[i + 2];
      const bool argless = is_punct(arg, ')') || is_ident(arg, "nullptr") ||
                           is_ident(arg, "NULL") ||
                           (arg.kind == TokenKind::Number && arg.text == "0");
      if (argless) {
        flag(i, "time(nullptr) reads the wall clock; pass timestamps in as data");
      }
    }
  }
}

void rule_atomics(std::string_view path, const SourceFile& source,
                  std::vector<Finding>& findings) {
  const bool obs = in_dir(path, "obs");
  for (const Token& token : source.tokens) {
    if (token.kind != TokenKind::Identifier) continue;
    if (token.text == "memory_order_relaxed" && !obs) {
      findings.push_back(make(std::string(path), token.line, "atomics",
                          "memory_order_relaxed outside src/obs/ — relaxed is reserved for "
                          "the sharded metric cells; justify other sites with a suppression"));
    } else if (token.text == "volatile") {
      findings.push_back(make(std::string(path), token.line, "atomics",
                          "volatile is not a synchronization primitive; use std::atomic or a "
                          "mutex"));
    }
  }
}

void rule_mmap_safety(std::string_view path, const SourceFile& source,
                      std::vector<Finding>& findings) {
  if (!in_dir(path, "serve")) return;
  const auto& tokens = source.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::Identifier) continue;
    if (token.text == "const_cast") {
      findings.push_back(make(std::string(path), token.line, "mmap-safety",
                          "const_cast in serve/ mints a writable pointer; the sibdb mapping "
                          "is PROT_READ and must never be written through"));
      continue;
    }
    if (token.text != "reinterpret_cast") continue;
    // Template argument: reinterpret_cast< ...type... >
    if (i + 1 >= tokens.size() || !is_punct(tokens[i + 1], '<')) continue;
    const std::size_t type_end = matching(tokens, i + 1, '<', '>');
    bool has_pointer = false;
    bool has_const = false;
    for (std::size_t j = i + 2; j < type_end; ++j) {
      has_pointer = has_pointer || is_punct(tokens[j], '*');
      has_const = has_const || is_ident(tokens[j], "const");
    }
    if (has_pointer && !has_const) {
      findings.push_back(make(std::string(path), token.line, "mmap-safety",
                          "reinterpret_cast to a non-const pointer in serve/; mapped bytes "
                          "are read-only — cast to a pointer-to-const"));
    }
    // Operand derived from the mapped base must be bounds-checked in the
    // same function before the cast reads through it.
    if (type_end + 1 >= tokens.size() || !is_punct(tokens[type_end + 1], '(')) continue;
    const std::size_t operand_end = matching(tokens, type_end + 1, '(', ')');
    bool from_mapping = false;
    for (std::size_t j = type_end + 2; j < operand_end; ++j) {
      from_mapping = from_mapping || is_ident(tokens[j], "data_") ||
                     is_ident(tokens[j], "mapping");
    }
    if (!from_mapping) continue;
    const std::size_t body_start = enclosing_function_start(tokens, i);
    bool checked = false;
    for (std::size_t j = body_start; j < i && !checked; ++j) {
      if (tokens[j].kind != TokenKind::Identifier) continue;
      checked = tokens[j].text == "if" || contains_ci(tokens[j].text, "check") ||
                contains_ci(tokens[j].text, "valid") || has_suffix(tokens[j].text, "_ok") ||
                tokens[j].text == "ok" || contains_ci(tokens[j].text, "fits");
    }
    if (!checked) {
      findings.push_back(make(std::string(path), token.line, "mmap-safety",
                          "reinterpret_cast on mapping-derived bytes with no bounds check "
                          "earlier in this function; validate offsets/sizes first"));
    }
  }
}

void rule_header_hygiene(std::string_view path, const SourceFile& source,
                         std::vector<Finding>& findings) {
  if (!is_header(path)) return;
  const auto& tokens = source.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind == TokenKind::Preprocessor &&
        token.text.find("include") != std::string::npos &&
        token.text.find("<iostream>") != std::string::npos) {
      findings.push_back(make(std::string(path), token.line, "header-hygiene",
                          "<iostream> in a header drags iostream statics into every consumer; "
                          "include <iosfwd> or move the I/O to a .cpp"));
    }
    if (is_ident(token, "using") && i + 1 < tokens.size() &&
        is_ident(tokens[i + 1], "namespace")) {
      findings.push_back(make(std::string(path), token.line, "header-hygiene",
                          "using-directive in a header leaks the namespace into every "
                          "includer"));
    }
  }
}

void rule_lock_order(std::string_view path, const SourceFile& source,
                     const std::vector<CommentBlock>& blocks,
                     std::vector<Finding>& findings) {
  const bool header = is_header(path);
  const auto& tokens = source.tokens;
  // The annotation may sit on the declaration line or in the comment
  // block directly above it — wrapped annotations span several lines, so
  // match against whole blocks, not physical lines.
  const auto annotated = [&](std::size_t line) {
    for (const CommentBlock& block : blocks) {
      if (block.first > line) break;
      const bool on_line = block.first <= line && line <= block.last;
      if ((on_line || block.last + 1 == line) &&
          block.text.find("lock-order:") != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i + 4 < tokens.size(); ++i) {
    if (!is_ident(tokens[i], "std") || !is_punct(tokens[i + 1], ':') ||
        !is_punct(tokens[i + 2], ':')) {
      continue;
    }
    const Token& type = tokens[i + 3];
    if (type.kind != TokenKind::Identifier ||
        (type.text != "mutex" && type.text != "recursive_mutex" &&
         type.text != "shared_mutex" && type.text != "timed_mutex" &&
         type.text != "recursive_timed_mutex" && type.text != "shared_timed_mutex")) {
      continue;
    }
    // A declaration, not a template argument or parameter: the type is
    // followed by a name and a terminating ';'.
    const Token& name = tokens[i + 4];
    if (name.kind != TokenKind::Identifier || i + 5 >= tokens.size() ||
        !is_punct(tokens[i + 5], ';')) {
      continue;
    }
    // Headers hold the library's member mutexes; in .cpp files only the
    // member naming convention (trailing underscore) is checked, so test
    // locals stay unannotated.
    if (!header && name.text.back() != '_') continue;
    const std::size_t line = tokens[i].line;
    if (!annotated(line)) {
      findings.push_back(make(std::string(path), line, "lock-order",
                          "std::" + type.text + " member '" + name.text +
                              "' has no `// lock-order: <rank> <name>` annotation (see "
                              "DESIGN.md §3.5 for the hierarchy)"));
    }
  }
}

}  // namespace

void run_file_rules(std::string_view path, const SourceFile& source,
                    const std::vector<CommentBlock>& blocks, std::vector<Finding>& findings) {
  rule_determinism(path, source, findings);
  rule_atomics(path, source, findings);
  rule_mmap_safety(path, source, findings);
  rule_header_hygiene(path, source, findings);
  rule_lock_order(path, source, blocks, findings);
}

}  // namespace sp::lint
