// sp::lint driver — walks the tree, builds the shared ProjectIndex
// (index.h), runs the per-file rule catalog (rules.h) and the
// cross-file semantic passes (semantic.h) over it, applies each file's
// sp-lint suppressions, audits the suppressions for staleness, and
// aggregates a report for tools/sp_lint, scripts/tier1.sh stage 8, and
// the CI lint job.
//
// Pass ordering matters: suppressions are applied only after both the
// per-file rules and the semantic passes have produced their findings,
// so an entry's use-tracking sees every rule that could consume it; the
// stale-suppression audit runs last. Findings of rules `suppression`
// and `stale-suppression` are themselves unsuppressable — the escape
// hatch cannot excuse its own rot.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/finding.h"
#include "lint/rules.h"

namespace sp::lint {

struct LintOptions {
  /// DESIGN.md path for the lock-rank §3.5 table cross-check; empty
  /// skips the cross-check (annotation consistency and derived-edge
  /// verification still run).
  std::string design_md_path;
  /// layers.def path for the layering pass; empty skips the pass.
  std::string layers_def_path;
  /// When nonempty, the report keeps only findings of this rule.
  std::string rule_filter;

  /// Options with design_md_path/layers_def_path filled in for
  /// `<root>/DESIGN.md` and `<root>/src/lint/layers.def` when those
  /// files exist — what the CLI uses when run from a repo checkout.
  [[nodiscard]] static LintOptions detect(const std::string& root);
};

struct LintReport {
  std::vector<Finding> findings;  // suppressed ones included, flagged
  std::size_t files_scanned = 0;

  [[nodiscard]] std::size_t unsuppressed_count() const noexcept {
    std::size_t n = 0;
    for (const Finding& finding : findings) n += finding.suppressed ? 0 : 1;
    return n;
  }
  [[nodiscard]] std::size_t suppressed_count() const noexcept {
    return findings.size() - unsuppressed_count();
  }

  /// Machine-readable report: {"files_scanned":N,"unsuppressed":N,
  /// "suppressed":N,"findings":[{file,line,rule,message,suppressed,
  /// reason}...]} — what tier1.sh and ci.yml assert on.
  [[nodiscard]] std::string to_json() const;
};

/// The directories sp_lint walks by default, relative to the repo root.
[[nodiscard]] const std::vector<std::string>& default_roots();

/// True for files the walker lints (.h/.hpp/.cpp/.cc outside build
/// trees and the linter's own violation fixtures).
[[nodiscard]] bool lintable_path(const std::string& path);

/// Lints one on-disk file through the full pipeline — per-file rules,
/// the semantic passes a single file can sustain (lock-rank annotation
/// consistency and derived edges, snapshot-escape; layering and the
/// DESIGN.md cross-check need the tree and are skipped), suppressions,
/// and the stale audit. `label` is the path recorded in findings and
/// used for path-based rule applicability (defaults to `path`). Missing
/// files produce an `io` finding. Sorted by (line, rule).
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const std::string& label = {});

/// Walks `roots` (files or directories, recursively), indexes every
/// lintable file, and runs the full pipeline. Paths in findings are as
/// discovered. Deterministic: directory entries are visited in sorted
/// order and findings are sorted by (file, line, rule).
[[nodiscard]] LintReport lint_paths(const std::vector<std::string>& roots,
                                    const LintOptions& options = {});

}  // namespace sp::lint
