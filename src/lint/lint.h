// sp::lint driver — walks the tree, runs the rule catalog (rules.h) on
// every C++ source file, and aggregates a report for tools/sp_lint,
// scripts/tier1.sh stage 4, and the CI lint job.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/rules.h"

namespace sp::lint {

struct LintReport {
  std::vector<Finding> findings;  // suppressed ones included, flagged
  std::size_t files_scanned = 0;

  [[nodiscard]] std::size_t unsuppressed_count() const noexcept {
    std::size_t n = 0;
    for (const Finding& finding : findings) n += finding.suppressed ? 0 : 1;
    return n;
  }
  [[nodiscard]] std::size_t suppressed_count() const noexcept {
    return findings.size() - unsuppressed_count();
  }

  /// Machine-readable report: {"files_scanned":N,"unsuppressed":N,
  /// "suppressed":N,"findings":[{file,line,rule,message,suppressed,
  /// reason}...]} — what tier1.sh and ci.yml assert on.
  [[nodiscard]] std::string to_json() const;
};

/// The directories sp_lint walks by default, relative to the repo root.
[[nodiscard]] const std::vector<std::string>& default_roots();

/// True for files the walker lints (.h/.hpp/.cpp/.cc outside build
/// trees and the linter's own violation fixtures).
[[nodiscard]] bool lintable_path(const std::string& path);

/// Lints one on-disk file; `label` is the path recorded in findings
/// (defaults to `path`). Missing files produce an `io` finding.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const std::string& label = {});

/// Walks `roots` (files or directories, recursively) and lints every
/// lintable file. Paths in findings are as discovered. Deterministic:
/// directory entries are visited in sorted order.
[[nodiscard]] LintReport lint_paths(const std::vector<std::string>& roots);

}  // namespace sp::lint
