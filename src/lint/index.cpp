#include "lint/index.h"

#include <cctype>

namespace sp::lint {

namespace {

[[nodiscard]] bool is_ident(const Token& token, std::string_view text) {
  return token.kind == TokenKind::Identifier && token.text == text;
}

[[nodiscard]] bool is_punct(const Token& token, char c) {
  return token.kind == TokenKind::Punct && token.text.size() == 1 && token.text[0] == c;
}

[[nodiscard]] std::size_t matching(const std::vector<Token>& tokens, std::size_t open,
                                   char opener, char closer) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], opener)) ++depth;
    if (is_punct(tokens[i], closer) && --depth == 0) return i;
  }
  return tokens.size();
}

[[nodiscard]] std::size_t matching_back(const std::vector<Token>& tokens, std::size_t close,
                                        char opener, char closer) {
  std::size_t depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(tokens[i], closer)) ++depth;
    if (is_punct(tokens[i], opener) && --depth == 0) return i;
  }
  return 0;
}

[[nodiscard]] bool is_control_keyword(std::string_view text) {
  return text == "if" || text == "for" || text == "while" || text == "switch" ||
         text == "catch";
}

[[nodiscard]] bool is_guard_type(std::string_view text) {
  return text == "scoped_lock" || text == "lock_guard" || text == "unique_lock" ||
         text == "shared_lock";
}

/// Keywords and cast forms that read as `name (` but are not calls the
/// lock-rank pass could ever inline through.
[[nodiscard]] bool is_uncallable(std::string_view text) {
  return is_control_keyword(text) || text == "return" || text == "sizeof" ||
         text == "alignof" || text == "decltype" || text == "noexcept" ||
         text == "static_cast" || text == "dynamic_cast" || text == "reinterpret_cast" ||
         text == "const_cast" || text == "new" || text == "delete" || text == "throw" ||
         text == "static_assert" || is_guard_type(text);
}

/// True when the '{' at `open` starts a function (or lambda) body:
/// walks back a few tokens over qualifiers/trailing-return spellings to
/// a ')' that does not close an if/for/while/switch/catch condition.
/// On success `*params_close` is that ')' token.
[[nodiscard]] bool is_function_body(const std::vector<Token>& tokens, std::size_t open,
                                    std::size_t* params_close) {
  std::size_t back = open;
  for (int hops = 0; back-- > 0 && hops < 8; ++hops) {
    const Token& token = tokens[back];
    if (is_punct(token, ')')) {
      const std::size_t param_open = matching_back(tokens, back, '(', ')');
      if (param_open > 0 && tokens[param_open - 1].kind == TokenKind::Identifier &&
          is_control_keyword(tokens[param_open - 1].text)) {
        return false;  // if/for/while body
      }
      *params_close = back;
      return true;
    }
    const bool qualifier = token.kind == TokenKind::Identifier &&
                           (token.text == "const" || token.text == "noexcept" ||
                            token.text == "override" || token.text == "final" ||
                            token.text == "mutable" || token.text == "try");
    const bool arrow_type = token.kind == TokenKind::Identifier || is_punct(token, '>') ||
                            is_punct(token, '-') || is_punct(token, ':') ||
                            is_punct(token, '*');
    if (!qualifier && !arrow_type) return false;
  }
  return false;
}

/// Name and qualifier of the function whose parameter list closes at
/// `params_close`. Empty name when the spelling before '(' is not an
/// identifier (lambdas, operators, function-style initializers).
void function_name(const std::vector<Token>& tokens, std::size_t params_close,
                   std::string* name, std::string* qualifier) {
  const std::size_t open = matching_back(tokens, params_close, '(', ')');
  if (open == 0 || tokens[open - 1].kind != TokenKind::Identifier) return;
  *name = tokens[open - 1].text;
  if (open >= 4 && is_punct(tokens[open - 2], ':') && is_punct(tokens[open - 3], ':') &&
      tokens[open - 4].kind == TokenKind::Identifier) {
    *qualifier = tokens[open - 4].text;
  }
}

/// Token index closing the innermost block that encloses token `at`
/// (bounded by `limit`): the lifetime of a guard declared at `at`.
[[nodiscard]] std::size_t enclosing_block_end(const std::vector<Token>& tokens, std::size_t at,
                                              std::size_t limit) {
  std::size_t depth = 0;
  for (std::size_t i = at; i <= limit && i < tokens.size(); ++i) {
    if (is_punct(tokens[i], '{')) ++depth;
    if (is_punct(tokens[i], '}')) {
      if (depth == 0) return i;
      --depth;
    }
  }
  return limit;
}

/// Extracts the guard acquisition starting at guard-type token `i`
/// (already matched by is_guard_type). Appends one LockSite per mutex
/// argument; returns the index to resume scanning at.
std::size_t extract_lock(const std::vector<Token>& tokens, std::size_t i, std::size_t body_end,
                         std::vector<LockSite>& out) {
  std::size_t j = i + 1;
  if (j < tokens.size() && is_punct(tokens[j], '<')) j = matching(tokens, j, '<', '>') + 1;
  if (j < tokens.size() && tokens[j].kind == TokenKind::Identifier) ++j;  // guard variable
  if (j >= tokens.size() || !is_punct(tokens[j], '(')) return i + 1;
  const std::size_t args_end = matching(tokens, j, '(', ')');
  const std::size_t scope_end = enclosing_block_end(tokens, i, body_end);
  std::size_t arg_begin = j + 1;
  std::size_t depth = 0;
  for (std::size_t k = j + 1; k <= args_end && k < tokens.size(); ++k) {
    const bool splitter = k == args_end || (depth == 0 && is_punct(tokens[k], ','));
    if (is_punct(tokens[k], '(') || is_punct(tokens[k], '[') || is_punct(tokens[k], '<')) {
      ++depth;
    } else if (is_punct(tokens[k], ')') || is_punct(tokens[k], ']') ||
               is_punct(tokens[k], '>')) {
      if (depth > 0) --depth;
    }
    if (!splitter) continue;
    // The mutex expression's last identifier names the member —
    // `months_[m]->mutex`, `worker.inbox_mutex_` and plain `mutex_` all
    // resolve through their final path component.
    std::string member;
    bool tag_arg = false;
    for (std::size_t t = arg_begin; t < k; ++t) {
      if (tokens[t].kind != TokenKind::Identifier) continue;
      if (tokens[t].text == "adopt_lock" || tokens[t].text == "defer_lock" ||
          tokens[t].text == "try_to_lock") {
        tag_arg = true;
      }
      member = tokens[t].text;
    }
    if (!member.empty() && !tag_arg) {
      out.push_back({member, i, tokens[i].line, scope_end});
    }
    arg_begin = k + 1;
  }
  return args_end + 1;
}

void extract_body_facts(const std::vector<Token>& tokens, FunctionDef& fn) {
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end && i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::Identifier) continue;
    if (is_guard_type(token.text)) {
      i = extract_lock(tokens, i, fn.body_end, fn.locks) - 1;
      continue;
    }
    if (i + 1 < tokens.size() && is_punct(tokens[i + 1], '(') && !is_uncallable(token.text)) {
      fn.calls.push_back({token.text, i, token.line});
    }
  }
}

[[nodiscard]] std::vector<IncludeRef> extract_includes(const SourceFile& source) {
  std::vector<IncludeRef> includes;
  for (const Token& token : source.tokens) {
    if (token.kind != TokenKind::Preprocessor) continue;
    const std::size_t at = token.text.find("include");
    if (at == std::string::npos) continue;
    const std::size_t open = token.text.find('"', at);
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = token.text.find('"', open + 1);
    if (close == std::string::npos) continue;
    includes.push_back({token.text.substr(open + 1, close - open - 1), token.line});
  }
  return includes;
}

/// Parses "lock-order: <rank> <name>" out of a comment block's text.
[[nodiscard]] bool parse_annotation(std::string_view text, int* rank, std::string* name) {
  const std::size_t at = text.find("lock-order:");
  if (at == std::string_view::npos) return false;
  std::size_t i = at + 11;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  const std::size_t digits = i;
  int value = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
    value = value * 10 + (text[i] - '0');
    ++i;
  }
  if (i == digits) return false;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  const std::size_t name_begin = i;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) == 0 &&
         text[i] != '(') {
    ++i;
  }
  if (i == name_begin) return false;
  *rank = value;
  *name = std::string(text.substr(name_begin, i - name_begin));
  return true;
}

/// Annotated std::mutex-family member declarations: the same detection
/// the per-file lock-order rule uses, except here the annotation's rank
/// and global name are resolved to the member spelling for the
/// lock-rank pass.
[[nodiscard]] std::vector<LockAnnotation> extract_annotations(
    const SourceFile& source, const std::vector<CommentBlock>& blocks) {
  std::vector<LockAnnotation> annotations;
  const auto& tokens = source.tokens;
  for (std::size_t i = 0; i + 4 < tokens.size(); ++i) {
    if (!is_ident(tokens[i], "std") || !is_punct(tokens[i + 1], ':') ||
        !is_punct(tokens[i + 2], ':')) {
      continue;
    }
    const Token& type = tokens[i + 3];
    if (type.kind != TokenKind::Identifier ||
        (type.text != "mutex" && type.text != "recursive_mutex" &&
         type.text != "shared_mutex" && type.text != "timed_mutex" &&
         type.text != "recursive_timed_mutex" && type.text != "shared_timed_mutex")) {
      continue;
    }
    const Token& name = tokens[i + 4];
    if (name.kind != TokenKind::Identifier || i + 5 >= tokens.size() ||
        !is_punct(tokens[i + 5], ';')) {
      continue;
    }
    const std::size_t line = tokens[i].line;
    for (const CommentBlock& block : blocks) {
      if (block.first > line) break;
      const bool covers = (block.first <= line && line <= block.last) || block.last + 1 == line;
      if (!covers) continue;
      int rank = 0;
      std::string global;
      if (parse_annotation(block.text, &rank, &global)) {
        annotations.push_back({rank, global, name.text, line});
        break;
      }
    }
  }
  return annotations;
}

}  // namespace

std::string file_key(std::string_view path) {
  const std::size_t at = path.rfind("/src/");
  if (at != std::string_view::npos) return std::string(path.substr(at + 5));
  if (path.substr(0, 4) == "src/") return std::string(path.substr(4));
  return std::string(path);
}

std::string key_stem(std::string_view key) {
  const std::size_t dot = key.rfind('.');
  return std::string(dot == std::string_view::npos ? key : key.substr(0, dot));
}

void ProjectIndex::add_file(std::string path, SourceFile source) {
  FileIndex file;
  file.path = std::move(path);
  file.key = file_key(file.path);
  file.blocks = comment_blocks(source);
  file.includes = extract_includes(source);
  file.annotations = extract_annotations(source, file.blocks);

  const auto& tokens = source.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!is_punct(tokens[i], '{')) continue;
    std::size_t params_close = 0;
    if (!is_function_body(tokens, i, &params_close)) continue;
    FunctionDef fn;
    function_name(tokens, params_close, &fn.name, &fn.qualifier);
    fn.line = tokens[i].line;
    fn.body_begin = i;
    fn.body_end = matching(tokens, i, '{', '}');
    extract_body_facts(tokens, fn);
    if (!fn.name.empty()) {
      defs_by_name_[fn.name].push_back({files_.size(), file.functions.size()});
    }
    file.functions.push_back(std::move(fn));
    i = file.functions.back().body_end;  // nested blocks belong to this body
  }

  file.source = std::move(source);
  by_key_.emplace(file.key, files_.size());
  files_.push_back(std::move(file));
}

const FileIndex* ProjectIndex::by_key(std::string_view key) const {
  const auto it = by_key_.find(std::string(key));
  return it == by_key_.end() ? nullptr : &files_[it->second];
}

std::unordered_set<std::string> ProjectIndex::include_closure(const FileIndex& file) const {
  std::unordered_set<std::string> closure{file.key};
  std::vector<const FileIndex*> frontier{&file};
  while (!frontier.empty()) {
    const FileIndex* current = frontier.back();
    frontier.pop_back();
    for (const IncludeRef& include : current->includes) {
      if (!closure.insert(include.target).second) continue;
      if (const FileIndex* next = by_key(include.target)) frontier.push_back(next);
    }
  }
  return closure;
}

bool ProjectIndex::closure_reaches(const std::unordered_set<std::string>& closure,
                                   std::string_view key) const {
  if (closure.count(std::string(key)) != 0) return true;
  // Definitions live in "x.cpp"; consumers include "x.h"/"x.hpp".
  const std::string stem = key_stem(key);
  return closure.count(stem + ".h") != 0 || closure.count(stem + ".hpp") != 0;
}

std::vector<std::pair<const FileIndex*, const FunctionDef*>> ProjectIndex::definitions_of(
    std::string_view name) const {
  std::vector<std::pair<const FileIndex*, const FunctionDef*>> out;
  const auto it = defs_by_name_.find(std::string(name));
  if (it == defs_by_name_.end()) return out;
  for (const auto& [file_idx, fn_idx] : it->second) {
    out.push_back({&files_[file_idx], &files_[file_idx].functions[fn_idx]});
  }
  return out;
}

}  // namespace sp::lint
