#include "lint/suppress.h"

#include <cctype>

namespace sp::lint {

namespace {

Finding make(std::string file, std::size_t line, std::string rule, std::string message) {
  Finding finding;
  finding.file = std::move(file);
  finding.line = line;
  finding.rule = std::move(rule);
  finding.message = std::move(message);
  return finding;
}

/// One comment line's text with the `// `/`/* ` marker and surrounding
/// whitespace removed, so merged blocks read as continuous prose.
[[nodiscard]] std::string strip_comment_markers(std::string_view text) {
  std::size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string_view::npos) return {};
  if (text.substr(begin, 2) == "//" || text.substr(begin, 2) == "/*") {
    begin = text.find_first_not_of(" \t/*", begin);
    if (begin == std::string_view::npos) return {};
  }
  const std::size_t end = text.find_last_not_of(" \t");
  return std::string(text.substr(begin, end - begin + 1));
}

/// Parses `<rule>-ok(<reason>)` entries out of one comment's text after
/// an `sp-lint:`/`sp-lint-file:` marker. Malformed entries (no parens,
/// empty reason) produce `suppression` findings — an escape hatch that
/// does not say why is a finding itself. Well-formed entries land in
/// `out.entries`; the caller maps them to lines.
void parse_entries(std::string_view text, std::size_t line, bool file_scope,
                   std::string_view path, Suppressions& out, std::vector<Finding>& findings) {
  std::size_t at = 0;
  while ((at = text.find("-ok", at)) != std::string_view::npos) {
    // Rule name: the [A-Za-z0-9-] run ending right before "-ok".
    std::size_t start = at;
    while (start > 0 && (std::isalnum(static_cast<unsigned char>(text[start - 1])) != 0 ||
                         text[start - 1] == '-')) {
      --start;
    }
    const std::string rule(text.substr(start, at - start));
    const std::size_t after = at + 3;
    at = after;
    if (rule.empty()) continue;
    if (after >= text.size() || text[after] != '(') {
      findings.push_back(make(std::string(path), line, "suppression",
                          "suppression '" + rule + "-ok' has no (<reason>)"));
      continue;
    }
    const std::size_t close = text.find(')', after + 1);
    const std::string reason(text.substr(
        after + 1, close == std::string_view::npos ? std::string_view::npos : close - after - 1));
    if (reason.find_first_not_of(" \t") == std::string::npos ||
        close == std::string_view::npos) {
      findings.push_back(make(std::string(path), line, "suppression",
                          "suppression '" + rule + "-ok' has an empty reason"));
      continue;
    }
    out.entries.push_back({rule, reason, line, file_scope, false});
    at = close + 1;
  }
}

}  // namespace

std::vector<CommentBlock> comment_blocks(const SourceFile& source) {
  const std::map<std::size_t, std::string> ordered(source.comments.begin(),
                                                   source.comments.end());
  std::vector<CommentBlock> blocks;
  for (const auto& [line, text] : ordered) {
    if (!blocks.empty() && blocks.back().last + 1 == line) {
      blocks.back().last = line;
      blocks.back().text += ' ';
      blocks.back().text += strip_comment_markers(text);
    } else {
      blocks.push_back({line, line, strip_comment_markers(text)});
    }
  }
  return blocks;
}

Suppressions collect_suppressions(std::string_view path,
                                  const std::vector<CommentBlock>& blocks,
                                  std::vector<Finding>& findings) {
  Suppressions out;
  for (const CommentBlock& block : blocks) {
    std::size_t at = block.text.find("sp-lint-file:");
    if (at != std::string::npos) {
      const std::size_t first = out.entries.size();
      parse_entries(std::string_view(block.text).substr(at + 13), block.first,
                    /*file_scope=*/true, path, out, findings);
      for (std::size_t i = first; i < out.entries.size(); ++i) {
        out.by_file.emplace(out.entries[i].rule, i);
      }
    }
    at = block.text.find("sp-lint:");
    if (at != std::string::npos) {
      const std::size_t first = out.entries.size();
      parse_entries(std::string_view(block.text).substr(at + 8), block.first,
                    /*file_scope=*/false, path, out, findings);
      // A block-level suppression covers every line the block spans, so
      // `apply_suppressions`'s line/line-1 check reaches code directly
      // after a wrapped comment just as it does a single-line one.
      for (std::size_t i = first; i < out.entries.size(); ++i) {
        for (std::size_t line = block.first; line <= block.last; ++line) {
          out.by_line[line].emplace(out.entries[i].rule, i);
        }
      }
    }
  }
  return out;
}

void apply_suppressions(Suppressions& suppressions, Finding& finding) {
  for (const std::size_t line : {finding.line, finding.line - 1}) {
    const auto row = suppressions.by_line.find(line);
    if (row == suppressions.by_line.end()) continue;
    const auto entry = row->second.find(finding.rule);
    if (entry != row->second.end()) {
      SuppressionEntry& hit = suppressions.entries[entry->second];
      hit.used = true;
      finding.suppressed = true;
      finding.suppress_reason = hit.reason;
      return;
    }
  }
  const auto entry = suppressions.by_file.find(finding.rule);
  if (entry != suppressions.by_file.end()) {
    SuppressionEntry& hit = suppressions.entries[entry->second];
    hit.used = true;
    finding.suppressed = true;
    finding.suppress_reason = hit.reason;
  }
}

std::vector<Finding> stale_suppressions(std::string_view path,
                                        const Suppressions& suppressions) {
  std::vector<Finding> findings;
  for (const SuppressionEntry& entry : suppressions.entries) {
    if (entry.used) continue;
    findings.push_back(make(std::string(path), entry.line, "stale-suppression",
                        std::string(entry.file_scope ? "file-scoped " : "") + "suppression '" +
                            entry.rule + "-ok(" + entry.reason +
                            ")' silences nothing — the rule no longer fires here; remove it "
                            "or re-justify it at the new site"));
  }
  return findings;
}

}  // namespace sp::lint
