// sp::lint::Finding — one diagnostic, shared by the per-file rule
// catalog (rules.h), the suppression machinery (suppress.h), and the
// cross-file semantic passes (semantic.h).
#pragma once

#include <cstddef>
#include <string>

namespace sp::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;  // set when suppressed

  friend bool operator==(const Finding&, const Finding&) = default;
};

}  // namespace sp::lint
