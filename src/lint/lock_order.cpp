#include "lint/lock_order.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace sp::lint {

namespace {

/// Lock names held by the calling thread, acquisition order.
thread_local std::vector<const char*> t_held;

}  // namespace

struct LockOrderRegistry::State {
  // lock-order: 90 lint.lock_order.registry_mutex (leaf: guards the edge
  // graph only; never held while user locks are taken)
  mutable std::mutex mutex_;
  // edge A→B (A held when B acquired) → witness: the full held stack at
  // the moment the edge was first recorded, B included.
  std::map<std::string, std::map<std::string, std::vector<std::string>>> edges;
  FailHandler on_fail;
};

LockOrderRegistry::State& LockOrderRegistry::state() const {
  static State* s = new State;  // leaked: scopes may fire in static dtors
  return *s;
}

LockOrderRegistry& LockOrderRegistry::instance() {
  static LockOrderRegistry registry;
  return registry;
}

void LockOrderRegistry::set_fail_handler(FailHandler handler) {
  State& s = state();
  const std::lock_guard lock(s.mutex_);
  s.on_fail = std::move(handler);
}

void LockOrderRegistry::reset() {
  State& s = state();
  const std::lock_guard lock(s.mutex_);
  s.edges.clear();
  t_held.clear();
}

std::vector<std::string> LockOrderRegistry::edges() const {
  State& s = state();
  const std::lock_guard lock(s.mutex_);
  std::vector<std::string> out;
  for (const auto& [from, to_map] : s.edges) {
    for (const auto& [to, witness] : to_map) out.push_back(from + " -> " + to);
  }
  return out;  // map iteration order is already sorted
}

void LockOrderRegistry::on_acquire(const char* name) {
  State& s = state();
  std::string report;
  {
    const std::lock_guard lock(s.mutex_);
    for (const char* held : t_held) {
      if (std::string_view(held) == name) continue;  // same-class nesting: no edge
      // A path name →* held means the recorded order puts `name` before
      // `held`; acquiring `name` while holding `held` closes a cycle.
      std::vector<std::string> path{name};
      std::vector<std::string> stack{name};
      const auto dfs = [&](const auto& self, const std::string& node) -> bool {
        if (node == held) return true;
        const auto it = s.edges.find(node);
        if (it == s.edges.end()) return false;
        for (const auto& [next, witness] : it->second) {
          if (std::find(path.begin(), path.end(), next) != path.end()) continue;
          path.push_back(next);
          if (self(self, next)) return true;
          path.pop_back();
        }
        return false;
      };
      if (dfs(dfs, name)) {
        report = "lock-order cycle detected\n  this thread holds [";
        for (std::size_t i = 0; i < t_held.size(); ++i) {
          report += (i ? ", " : "") + std::string(t_held[i]);
        }
        report += "] and is acquiring '" + std::string(name) + "'\n  recorded order: ";
        for (std::size_t i = 0; i < path.size(); ++i) {
          report += (i ? " -> " : "") + path[i];
        }
        report += "\n  witness stacks (held locks when each edge was recorded):";
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          report += "\n    " + path[i] + " -> " + path[i + 1] + ": [";
          const auto& witness = s.edges[path[i]][path[i + 1]];
          for (std::size_t j = 0; j < witness.size(); ++j) {
            report += (j ? ", " : "") + witness[j];
          }
          report += "]";
        }
        break;
      }
      auto& witness = s.edges[held][name];
      if (witness.empty()) {
        for (const char* h : t_held) witness.emplace_back(h);
        witness.emplace_back(name);
      }
    }
    if (report.empty()) {
      t_held.push_back(name);
      return;
    }
  }
  FailHandler handler;
  {
    const std::lock_guard lock(s.mutex_);
    handler = s.on_fail;
  }
  if (handler) {
    handler(report);
    t_held.push_back(name);  // keep the stack consistent for the paired release
    return;
  }
  std::fprintf(stderr, "%s\n", report.c_str());
  std::abort();
}

void LockOrderRegistry::on_release(const char* name) {
  const auto it = std::find_if(t_held.rbegin(), t_held.rend(), [&](const char* held) {
    return std::string_view(held) == name;
  });
  if (it != t_held.rend()) t_held.erase(std::next(it).base());
}

}  // namespace sp::lint
