// sp::lint::LockOrderRegistry — the runtime half of the lock-order
// discipline (the static half is the `// lock-order:` annotation the
// lint rule requires on every mutex member; see DESIGN.md §3.5).
//
// The registry records the cross-thread acquisition-order graph by lock
// *name* (one node per annotated lock class, not per instance): when a
// thread acquires lock B while holding lock A it adds the edge A→B,
// remembering the full held stack as the edge's witness. If a later
// acquisition would close a cycle — thread 2 takes A while holding B
// after thread 1 established A→B — the registry reports both sides'
// lock-name stacks (the current thread's held stack and the witness
// stack of every edge on the reverse path) and aborts: the program has
// a latent deadlock even if this interleaving happened not to wedge.
//
// Instrumentation is a no-op unless the build defines
// SP_DEBUG_LOCKORDER (cmake -DSP_DEBUG_LOCKORDER=ON): LockOrderScope
// compiles to an empty object, so WorkerPool, SiblingService and
// StageGraph pay nothing in production builds. The registry itself is
// always compiled (sp_lintrt), so tests can drive on_acquire/on_release
// directly in any configuration.
//
// Same-name nesting (two instances of the same lock class held at once)
// is permitted and recorded as no edge: ordering is tracked per class,
// and instance-level self-deadlock is TSan's department.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace sp::lint {

class LockOrderRegistry {
 public:
  using FailHandler = std::function<void(const std::string& report)>;

  /// The process-wide registry the LockOrderScope instrumentation feeds.
  [[nodiscard]] static LockOrderRegistry& instance();

  /// Records that the calling thread acquired `name` (names must be
  /// string literals or otherwise outlive the registry). Adds ordering
  /// edges from every lock the thread already holds and fails on a
  /// cycle.
  void on_acquire(const char* name);

  /// Records the release of the most recent acquisition of `name` by
  /// the calling thread.
  void on_release(const char* name);

  /// Edges as "A -> B" strings, sorted — the recorded acquisition-order
  /// graph, for tests and debugging dumps.
  [[nodiscard]] std::vector<std::string> edges() const;

  /// Replaces the abort-on-cycle handler (tests install a capturing
  /// handler). The default prints the report to stderr and aborts.
  void set_fail_handler(FailHandler handler);

  /// Clears recorded edges and this thread's held stack (tests only;
  /// other threads' held stacks are untouched).
  void reset();

 private:
  LockOrderRegistry() = default;
  struct State;
  [[nodiscard]] State& state() const;
};

#ifdef SP_DEBUG_LOCKORDER
/// RAII acquisition record: construct immediately after taking the
/// lock, destroy where the guard releases it (scope exit). The debug
/// build's view of `std::lock_guard lock(m); LockOrderScope scope("x");`.
class LockOrderScope {
 public:
  explicit LockOrderScope(const char* name) : name_(name) {
    LockOrderRegistry::instance().on_acquire(name_);
  }
  ~LockOrderScope() { LockOrderRegistry::instance().on_release(name_); }
  LockOrderScope(const LockOrderScope&) = delete;
  LockOrderScope& operator=(const LockOrderScope&) = delete;

 private:
  const char* name_;
};
#else
class LockOrderScope {
 public:
  constexpr explicit LockOrderScope(const char*) noexcept {}
};
#endif

}  // namespace sp::lint
