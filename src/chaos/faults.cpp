#include "chaos/faults.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/protocol.h"
#include "synth/determinism.h"

namespace sp::chaos {
namespace {

FaultOutcome fail(FaultOutcome outcome, std::string error) {
  outcome.ok = false;
  outcome.error = std::move(error);
  return outcome;
}

std::optional<net::Client> connect_target(const FaultTarget& target, FaultOutcome& outcome) {
  std::string error;
  auto client = net::Client::connect(target.host, target.port, &error);
  if (!client) ++outcome.connect_failures;
  return client;
}

/// `count` keys drawn deterministically from the soak key universe.
std::vector<Prefix> pick_keys(std::span<const Prefix> keys, std::size_t count,
                              std::uint64_t seed, std::uint64_t salt) {
  std::vector<Prefix> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(keys[synth::pick(keys.size(), seed, salt, i)]);
  return out;
}

/// Closes `client` with SO_LINGER {on, 0s}: the kernel sends RST instead
/// of FIN, discarding anything the server still has queued toward us.
void abort_with_rst(net::Client& client) {
  const linger hard{1, 0};
  ::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  client.close();
}

/// Reads QUERY responses and checks the structural contract: ids echo in
/// pipeline order, answer counts match the request, generation non-zero.
bool drain_responses(net::Client& client, const std::vector<net::QueryRequest>& requests,
                     FaultOutcome& outcome) {
  for (const auto& request : requests) {
    std::string error;
    auto frame = client.read_frame(&error);
    if (!frame) {
      outcome = fail(std::move(outcome), "no response for request " +
                                             std::to_string(request.request_id) + ": " + error);
      return false;
    }
    if (frame->type != static_cast<std::uint8_t>(net::FrameType::kQueryResponse)) {
      outcome = fail(std::move(outcome),
                     "unexpected frame type " + std::to_string(frame->type));
      return false;
    }
    auto response = net::parse_query_response(frame->body, &error);
    if (!response) {
      outcome = fail(std::move(outcome), "bad query response: " + error);
      return false;
    }
    if (response->request_id != request.request_id) {
      outcome = fail(std::move(outcome),
                     "out-of-order response: want id " + std::to_string(request.request_id) +
                         ", got " + std::to_string(response->request_id));
      return false;
    }
    if (response->answers.size() != request.keys.size()) {
      outcome = fail(std::move(outcome),
                     "answer count mismatch: sent " + std::to_string(request.keys.size()) +
                         " keys, got " + std::to_string(response->answers.size()));
      return false;
    }
    if (response->generation == 0) {
      outcome = fail(std::move(outcome), "response carries generation 0 (no snapshot?)");
      return false;
    }
    ++outcome.responses_read;
  }
  return true;
}

}  // namespace

FaultOutcome query_burst(const FaultTarget& target, const ChaosEvent& event,
                         std::span<const Prefix> keys) {
  FaultOutcome outcome;
  if (keys.empty()) return fail(std::move(outcome), "query_burst: empty key universe");
  auto client = connect_target(target, outcome);
  if (!client) return outcome;  // exhaustion window; the soak's probe thread judges liveness

  const std::size_t frames = event.intensity;
  std::vector<net::QueryRequest> requests;
  std::vector<std::uint8_t> wire;
  for (std::size_t f = 0; f < frames; ++f) {
    net::QueryRequest request;
    request.request_id = static_cast<std::uint32_t>(synth::mix(event.seed, 0xB0, f));
    request.keys = pick_keys(keys, 1 + synth::pick(31, event.seed, 0xB1, f), event.seed, f);
    net::encode_query_request(wire, request);
    outcome.queries_sent += request.keys.size();
    requests.push_back(std::move(request));
  }
  std::string error;
  if (!client->send_bytes(wire, &error))
    return fail(std::move(outcome), "burst send failed: " + error);
  drain_responses(*client, requests, outcome);
  return outcome;
}

FaultOutcome slow_reader(const FaultTarget& target, const ChaosEvent& event,
                         std::span<const Prefix> keys) {
  FaultOutcome outcome;
  if (keys.empty()) return fail(std::move(outcome), "slow_reader: empty key universe");
  auto client = connect_target(target, outcome);
  if (!client) return outcome;

  // Big batches: enough response bytes to cross a small soak high_water
  // and trigger a backpressure pause while we refuse to read.
  const std::size_t frames = 2 + event.intensity;
  std::vector<net::QueryRequest> requests;
  std::vector<std::uint8_t> wire;
  for (std::size_t f = 0; f < frames; ++f) {
    net::QueryRequest request;
    request.request_id = static_cast<std::uint32_t>(synth::mix(event.seed, 0xB2, f));
    request.keys = pick_keys(keys, 256, event.seed, f ^ 0x51);
    net::encode_query_request(wire, request);
    outcome.queries_sent += request.keys.size();
    requests.push_back(std::move(request));
  }
  std::string error;
  if (!client->send_bytes(wire, &error))
    return fail(std::move(outcome), "slow_reader send failed: " + error);

  // The stall: responses pile up server-side. Duration is seeded, short
  // enough for smoke mode, long enough for the pause sweep to see it.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(20 + synth::pick(60, event.seed, 0xB3)));

  if (synth::pick(2, event.seed, 0xB4) == 0) {
    drain_responses(*client, requests, outcome);  // pause must resume and flush
  } else {
    abort_with_rst(*client);  // server sheds the wedged connection
  }
  return outcome;
}

FaultOutcome mid_frame_disconnect(const FaultTarget& target, const ChaosEvent& event) {
  FaultOutcome outcome;
  auto client = connect_target(target, outcome);
  if (!client) return outcome;

  // A QUERY header promising more body than we will ever send; the
  // decoder buffers it and the disconnect arrives mid-frame.
  const std::uint32_t promised = 64 + static_cast<std::uint32_t>(
                                          synth::pick(512, event.seed, 0xB5));
  std::vector<std::uint8_t> wire;
  wire.push_back(static_cast<std::uint8_t>(net::FrameType::kQuery));
  net::put_u32(wire, promised);
  const std::size_t partial = synth::pick(promised, event.seed, 0xB6);
  for (std::size_t i = 0; i < partial; ++i)
    wire.push_back(static_cast<std::uint8_t>(synth::pick(256, event.seed, 0xB7, i)));
  std::string error;
  if (!client->send_bytes(wire, &error))
    return fail(std::move(outcome), "mid_frame send failed: " + error);
  if (synth::pick(2, event.seed, 0xB8) == 0) {
    abort_with_rst(*client);
  } else {
    client->close();  // clean FIN with a half-frame buffered
  }
  return outcome;
}

FaultOutcome connection_flood(const FaultTarget& target, const ChaosEvent& event,
                              std::size_t max_connections) {
  FaultOutcome outcome;
  std::size_t want = static_cast<std::size_t>(8) * event.intensity;
  if (want > max_connections) want = max_connections;
  std::vector<net::Client> held;
  held.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    std::string error;
    auto client = net::Client::connect(target.host, target.port, &error,
                                       std::chrono::milliseconds(1000));
    if (!client) {
      ++outcome.connect_failures;  // EMFILE territory — exactly the point
      continue;
    }
    held.push_back(std::move(*client));
  }
  // One held connection proves the server still answers while saturated
  // (when the flood itself didn't eat every fd).
  if (!held.empty()) {
    net::QueryRequest request;
    request.request_id = static_cast<std::uint32_t>(synth::mix(event.seed, 0xB9));
    request.keys.push_back(Prefix());  // 0.0.0.0/0 LPM miss is a fine liveness probe
    std::vector<std::uint8_t> wire;
    net::encode_query_request(wire, request);
    outcome.queries_sent += 1;
    std::string error;
    if (held.front().send_bytes(wire, &error)) {
      std::vector<net::QueryRequest> one{request};
      drain_responses(held.front(), one, outcome);
    }
  }
  for (auto& client : held) client.close();
  return outcome;
}

}  // namespace sp::chaos
