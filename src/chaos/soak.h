// Soak driver — a seeded, invariant-checked endurance run of the serve
// path under chaos (scenario.h events played by faults.h actors).
//
// In-process mode (the default) the driver owns everything: it builds a
// fixture universe in `workdir` (two valid .sibdb snapshots A and B, the
// .spdl delta A→B, and one corrupt variant per CorruptKind × format,
// each verified rejected at build time), starts a real sp::net::Server
// over TCP, runs closed-loop query threads plus one fault thread walking
// the seeded schedule, and at the deadline quiesces and audits:
//
//   * the server stayed reachable the whole run (a reconnect failing
//     continuously for >5s is a violation);
//   * every corrupt RELOAD was rejected AND the previous snapshot kept
//     answering (probed on the same pipelined control connection);
//   * per-generation query tallies are conserved exactly:
//     Σ generations.queries + compacted.queries == ServerStats.queries;
//   * a final full-drain sweep over every fixture key is byte-equal to a
//     fresh LookupEngine oracle over the same snapshot;
//   * peak RSS (obs::peak_rss_kb) and the server's frame p99 stay within
//     the configured bounds.
//
// External mode (`connect_host` set) points the same schedule at an
// already-listening sp_serve; the process-local checks (conservation,
// RSS, fd limits) are skipped and liveness/corrupt-rejection/sweep/p99
// remain. The workdir must be readable by the target server.
//
// Determinism: the event sequence is a pure function of `seed`
// (scenario.h); timing-dependent interleaving varies between runs, the
// traffic does not.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace sp::chaos {

struct SoakConfig {
  std::uint64_t seed = 1;
  std::chrono::seconds duration{20};
  /// Fixture + reload-artifact directory; created if missing.
  std::string workdir;
  unsigned server_workers = 2;  // in-process server event loops
  unsigned query_threads = 2;   // closed-loop query load threads
  std::size_t pair_count = 512; // fixture snapshot size
  /// Small on purpose so slow_reader actually crosses it and exercises
  /// the backpressure pause/resume path.
  std::size_t high_water = 1u << 14;
  std::chrono::milliseconds accept_backoff{100};
  /// Lower RLIMIT_NOFILE (soft) for the run so connection floods reach
  /// real EMFILE; restored on exit. 0 = leave the limit alone.
  /// In-process mode only.
  std::uint64_t fd_soft_limit = 0;
  long max_rss_kb = 0;    // 0 = unbounded
  double max_p99_us = 0;  // 0 = unbounded; server frame p99 via STATS
  /// External mode: host of a live sp_serve --listen (empty = in-process).
  std::string connect_host;
  std::uint16_t connect_port = 0;
};

struct SoakReport {
  bool ok = false;
  std::vector<std::string> violations;

  std::uint64_t events = 0;  // schedule positions played
  std::uint64_t query_events = 0;
  std::uint64_t valid_reloads = 0;
  std::uint64_t delta_reloads = 0;
  std::uint64_t corrupt_reloads = 0;  // all must have been rejected
  std::uint64_t mismatched_delta_reloads = 0;  // base-hash mismatch, rejected
  std::uint64_t fault_events = 0;  // slow readers, mid-frame cuts, floods
  std::uint64_t connect_failures = 0;

  std::uint64_t client_queries = 0;  // keys sent by probes + actors
  std::uint64_t server_queries = 0;  // ServerStats.queries at the end (in-process)
  std::uint64_t generation_query_sum = 0;  // Σ generations + compacted (in-process)
  std::uint64_t accept_errors = 0;         // in-process
  std::uint64_t final_generation = 0;

  std::uint64_t sweep_keys = 0;
  std::uint64_t sweep_mismatches = 0;

  double p99_us = 0.0;
  long peak_rss_kb = 0;

  [[nodiscard]] std::string to_json() const;
};

[[nodiscard]] SoakReport run_soak(const SoakConfig& config);

}  // namespace sp::chaos
