#include "chaos/corrupt.h"

#include "synth/determinism.h"

namespace sp::chaos {

std::string_view to_string(CorruptKind kind) noexcept {
  switch (kind) {
    case CorruptKind::TruncatedHeader: return "truncated_header";
    case CorruptKind::TruncatedBody: return "truncated_body";
    case CorruptKind::FlippedBit: return "flipped_bit";
    case CorruptKind::BadMagic: return "bad_magic";
    case CorruptKind::FutureVersion: return "future_version";
  }
  return "unknown";
}

std::vector<std::uint8_t> corrupt_image(std::span<const std::uint8_t> image, CorruptKind kind,
                                        std::uint64_t seed) {
  std::vector<std::uint8_t> out(image.begin(), image.end());
  const std::uint64_t tag = static_cast<std::uint64_t>(kind);
  switch (kind) {
    case CorruptKind::TruncatedHeader: {
      // Keep 8..15 bytes: enough for the magic, never a whole header.
      const std::size_t keep = 8 + synth::pick(8, seed, tag, 0xC0);
      if (out.size() > keep) out.resize(keep);
      return out;
    }
    case CorruptKind::TruncatedBody: {
      // Cut somewhere in the second half so the declared sizes and the
      // trailing checksum can no longer both hold.
      if (out.size() < 2) return out;
      const std::size_t cut =
          out.size() / 2 + synth::pick(out.size() - out.size() / 2 - 1, seed, tag, 0xC1);
      out.resize(cut);
      return out;
    }
    case CorruptKind::FlippedBit: {
      if (out.empty()) return out;
      // Flip one bit in the middle third: squarely inside checksummed
      // payload, away from fields a reader might ignore.
      const std::size_t lo = out.size() / 3;
      const std::size_t span = out.size() - 2 * lo;
      const std::size_t at = lo + synth::pick(span == 0 ? 1 : span, seed, tag, 0xC2);
      out[at] ^= static_cast<std::uint8_t>(1u << synth::pick(8, seed, tag, 0xC3));
      return out;
    }
    case CorruptKind::BadMagic: {
      if (!out.empty()) out[0] = 0;
      return out;
    }
    case CorruptKind::FutureVersion: {
      // Both .sibdb and .spdl carry a little-endian u32 version at
      // offset 8, right after the 8-byte magic.
      for (std::size_t i = 8; i < out.size() && i < 12; ++i) out[i] = 0xff;
      return out;
    }
  }
  return out;
}

}  // namespace sp::chaos
