#include "chaos/soak.h"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>
#include <span>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "chaos/corrupt.h"
#include "chaos/faults.h"
#include "chaos/scenario.h"
#include "core/detect.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "netbase/ip.h"
#include "obs/metrics.h"
#include "obs/rss.h"
#include "serve/lookup.h"
#include "serve/service.h"
#include "serve/sibdb.h"
#include "stream/reload.h"
#include "stream/spdl.h"
#include "synth/determinism.h"

namespace sp::chaos {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Fixture universe: two valid snapshots sharing one ascending key set, the
// delta between them, and the corrupt variants every loader must reject.

struct Fixtures {
  std::string a_path;      // base snapshot
  std::string b_path;      // target snapshot (~25% of similarities changed)
  std::string delta_path;  // .spdl patching A into B's bytes
  std::vector<std::string> corrupt_sibdb;  // one per CorruptKind
  std::vector<std::string> corrupt_spdl;
  std::vector<Prefix> keys;  // query universe: exact keys, hosts, misses
};

std::vector<core::SiblingPair> make_pairs(std::uint64_t seed, std::size_t count,
                                          bool variant_b) {
  std::vector<core::SiblingPair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::SiblingPair pair;
    pair.v4 = Prefix::of(IPAddress(IPv4Address::from_octets(
                             10, static_cast<std::uint8_t>(i >> 8),
                             static_cast<std::uint8_t>(i & 0xff), 0)),
                         24);
    pair.v6 = Prefix::of(
        IPAddress(IPv6Address::from_groups(
            {0x2001, 0xdb8, static_cast<std::uint16_t>(i), 0, 0, 0, 0, 0})),
        48);
    pair.similarity = 0.25 + 0.75 * synth::unit(seed, 0xF0, i);
    pair.shared_domains = static_cast<std::uint32_t>(1 + synth::pick(40, seed, 0xF1, i));
    pair.v4_domain_count = pair.shared_domains +
                           static_cast<std::uint32_t>(synth::pick(10, seed, 0xF2, i));
    pair.v6_domain_count = pair.shared_domains +
                           static_cast<std::uint32_t>(synth::pick(10, seed, 0xF3, i));
    // Variant B: same key set, ~25% of the records re-scored — an
    // upsert-only delta, so the .spdl applies whenever A is being served.
    if (variant_b && synth::pick(4, seed, 0xF4, i) == 0) {
      pair.similarity = 0.25 + 0.75 * synth::unit(seed, 0xF5, i);
      pair.shared_domains = static_cast<std::uint32_t>(1 + synth::pick(40, seed, 0xF6, i));
    }
    pairs.push_back(pair);
  }
  std::sort(pairs.begin(), pairs.end());  // .sibdb and diff_sibdb expect ascending keys
  return pairs;
}

bool write_bytes(const std::string& path, std::span<const std::uint8_t> bytes,
                 std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    *error = "writing " + path + " failed";
    return false;
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> read_bytes(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "reading " + path + " failed";
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

/// Builds every fixture file and proves each corrupt variant is rejected
/// by its loader — the soak's corrupt-swap invariant is only meaningful
/// if these inputs are genuinely invalid.
std::optional<Fixtures> build_fixtures(const SoakConfig& config, std::string* error) {
  Fixtures fix;
  std::error_code ec;
  std::filesystem::create_directories(config.workdir, ec);
  if (ec) {
    *error = "creating workdir " + config.workdir + ": " + ec.message();
    return std::nullopt;
  }
  fix.a_path = config.workdir + "/a.sibdb";
  fix.b_path = config.workdir + "/b.sibdb";
  fix.delta_path = config.workdir + "/delta_ab.spdl";

  const auto pairs_a = make_pairs(config.seed, config.pair_count, false);
  const auto pairs_b = make_pairs(config.seed, config.pair_count, true);
  if (!serve::write_sibdb(fix.a_path, pairs_a, "soak fixture A") ||
      !serve::write_sibdb(fix.b_path, pairs_b, "soak fixture B")) {
    *error = "writing fixture snapshots failed";
    return std::nullopt;
  }
  auto db_a = serve::SiblingDB::load(fix.a_path, error);
  auto db_b = serve::SiblingDB::load(fix.b_path, error);
  if (!db_a || !db_b) return std::nullopt;
  auto delta = stream::diff_sibdb(*db_a, *db_b, error);
  if (!delta) return std::nullopt;
  if (!stream::write_spdl(fix.delta_path, *delta)) {
    *error = "writing " + fix.delta_path + " failed";
    return std::nullopt;
  }

  auto spdl_bytes = read_bytes(fix.delta_path, error);
  if (!spdl_bytes) return std::nullopt;
  const auto sibdb_bytes = db_a->raw_bytes();
  for (const CorruptKind kind : kAllCorruptKinds) {
    const std::string tag(to_string(kind));
    const std::string sibdb_path = config.workdir + "/corrupt_" + tag + ".sibdb";
    const std::string spdl_path = config.workdir + "/corrupt_" + tag + ".spdl";
    const auto bad_sibdb = corrupt_image(sibdb_bytes, kind, config.seed);
    const auto bad_spdl = corrupt_image(*spdl_bytes, kind, config.seed);
    if (!write_bytes(sibdb_path, bad_sibdb, error)) return std::nullopt;
    if (!write_bytes(spdl_path, bad_spdl, error)) return std::nullopt;
    std::string reject;
    if (serve::SiblingDB::load(sibdb_path, &reject)) {
      *error = "corrupt variant " + tag + " was ACCEPTED by SiblingDB::load";
      return std::nullopt;
    }
    if (stream::decode_spdl(bad_spdl, &reject)) {
      *error = "corrupt variant " + tag + " was ACCEPTED by decode_spdl";
      return std::nullopt;
    }
    fix.corrupt_sibdb.push_back(sibdb_path);
    fix.corrupt_spdl.push_back(spdl_path);
  }

  // Query universe: every stored prefix (exact LPM hits), host addresses
  // inside a sample of them, and keys no fixture covers (misses).
  for (std::size_t i = 0; i < db_a->size(); ++i) {
    fix.keys.push_back(db_a->v4_prefix(i));
    fix.keys.push_back(db_a->v6_prefix(i));
    if (i % 7 == 0) {
      fix.keys.push_back(Prefix::host(IPAddress(IPv4Address::from_octets(
          10, static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i & 0xff), 1))));
    }
  }
  fix.keys.push_back(Prefix::must_parse("192.0.2.0/24"));
  fix.keys.push_back(Prefix::must_parse("203.0.113.7/32"));
  fix.keys.push_back(Prefix::must_parse("2001:db9::/32"));
  fix.keys.push_back(Prefix::must_parse("2620:fe::9/128"));
  return fix;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------

class Soak {
 public:
  explicit Soak(const SoakConfig& config) : config_(config) {}

  SoakReport run();

 private:
  [[nodiscard]] bool in_process() const noexcept { return config_.connect_host.empty(); }

  void violation(std::string what) {
    std::lock_guard<std::mutex> lock(report_mutex_);
    if (violations_.size() < 64) violations_.push_back(std::move(what));
  }

  void merge(const FaultOutcome& outcome) {
    client_queries_.fetch_add(outcome.queries_sent);
    connect_failures_.fetch_add(outcome.connect_failures);
    if (!outcome.ok) violation(outcome.error);
  }

  void probe_loop(unsigned id);
  void fault_loop();

  // Control-connection helpers (fault thread only). The control client
  // is pipelined in-order like any connection, so a probe issued right
  // after a reload response observes the post-reload snapshot.
  [[nodiscard]] bool ensure_control();
  [[nodiscard]] std::optional<net::ReloadResponse> control_reload(const std::string& path);
  [[nodiscard]] std::optional<net::QueryResponse> control_probe(std::uint64_t salt);
  void do_valid_reload(const std::string& path, bool to_b);
  void do_delta_reload(std::uint64_t index);
  void do_corrupt_reload(const ChaosEvent& event, std::uint64_t index);

  void final_sweep(SoakReport& report);
  [[nodiscard]] std::optional<net::StatsPayload> fetch_stats();

  SoakConfig config_;
  FaultTarget target_;
  Fixtures fix_;
  std::atomic<bool> stop_{false};
  // lock-order: 70 chaos.soak.report_mutex (guards the violation list
  // only; leaf — nothing is acquired under it)
  std::mutex report_mutex_;
  std::vector<std::string> violations_;

  std::atomic<std::uint64_t> client_queries_{0};
  std::atomic<std::uint64_t> connect_failures_{0};

  // Fault-thread-only state (single walker; read by run() after join).
  std::optional<net::Client> control_;
  std::uint64_t last_generation_ = 0;
  bool serving_b_ = false;
  std::uint64_t events_ = 0;
  std::uint64_t query_events_ = 0;
  std::uint64_t valid_reloads_ = 0;
  std::uint64_t delta_reloads_ = 0;
  std::uint64_t mismatched_delta_reloads_ = 0;
  std::uint64_t corrupt_reloads_ = 0;
  std::uint64_t fault_events_ = 0;
};

bool Soak::ensure_control() {
  if (control_ && control_->connected()) return true;
  const auto deadline = steady_clock::now() + std::chrono::seconds(5);
  while (steady_clock::now() < deadline && !stop_.load()) {
    std::string error;
    control_ = net::Client::connect(target_.host, target_.port, &error, milliseconds(1000));
    if (control_) return true;
    connect_failures_.fetch_add(1);
    std::this_thread::sleep_for(milliseconds(20));
  }
  if (!stop_.load()) violation("control connection: server unreachable for 5s");
  return false;
}

std::optional<net::ReloadResponse> Soak::control_reload(const std::string& path) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!ensure_control()) return std::nullopt;
    std::vector<std::uint8_t> wire;
    net::encode_reload_request(wire, net::ReloadRequest{path});
    std::string error;
    if (!control_->send_bytes(wire, &error)) {
      control_.reset();
      continue;
    }
    auto frame = control_->read_frame(&error, milliseconds(5000));
    if (!frame) {
      control_.reset();
      continue;
    }
    if (frame->type != static_cast<std::uint8_t>(net::FrameType::kReloadResponse)) {
      violation("RELOAD answered with frame type " + std::to_string(frame->type));
      return std::nullopt;
    }
    auto response = net::parse_reload_response(frame->body, &error);
    if (!response) {
      violation("unparseable RELOAD response: " + error);
      return std::nullopt;
    }
    return response;
  }
  if (!stop_.load()) violation("RELOAD of " + path + ": control connection kept dying");
  return std::nullopt;
}

std::optional<net::QueryResponse> Soak::control_probe(std::uint64_t salt) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!ensure_control()) return std::nullopt;
    net::QueryRequest request;
    request.request_id = static_cast<std::uint32_t>(synth::mix(config_.seed, 0xA0, salt));
    request.keys.push_back(fix_.keys[synth::pick(fix_.keys.size(), config_.seed, 0xA1, salt)]);
    std::vector<std::uint8_t> wire;
    net::encode_query_request(wire, request);
    std::string error;
    if (!control_->send_bytes(wire, &error)) {
      control_.reset();
      continue;
    }
    client_queries_.fetch_add(1);
    auto frame = control_->read_frame(&error, milliseconds(5000));
    if (!frame) {
      control_.reset();
      continue;
    }
    if (frame->type != static_cast<std::uint8_t>(net::FrameType::kQueryResponse)) {
      violation("probe answered with frame type " + std::to_string(frame->type));
      return std::nullopt;
    }
    auto response = net::parse_query_response(frame->body, &error);
    if (!response) {
      violation("unparseable probe response: " + error);
      return std::nullopt;
    }
    if (response->request_id != request.request_id) {
      violation("probe response id mismatch on control connection");
      return std::nullopt;
    }
    return response;
  }
  return std::nullopt;
}

void Soak::do_valid_reload(const std::string& path, bool to_b) {
  auto response = control_reload(path);
  if (!response) return;
  if (!response->ok) {
    violation("valid RELOAD of " + path + " rejected: " + response->error);
    return;
  }
  if (response->generation <= last_generation_) {
    violation("RELOAD of " + path + " did not advance the generation");
    return;
  }
  last_generation_ = response->generation;
  serving_b_ = to_b;
  ++valid_reloads_;
}

void Soak::do_delta_reload(std::uint64_t index) {
  auto response = control_reload(fix_.delta_path);
  if (!response) return;
  if (serving_b_) {
    // The delta's base hash binds to snapshot A; applying it onto B must
    // be rejected and the serving snapshot must survive untouched.
    if (response->ok) {
      violation("delta RELOAD applied against the wrong base snapshot");
      return;
    }
    ++mismatched_delta_reloads_;
    auto probe = control_probe(index);
    if (probe && probe->generation != last_generation_)
      violation("generation changed after rejected delta RELOAD");
    return;
  }
  if (!response->ok) {
    violation("delta RELOAD against base A rejected: " + response->error);
    return;
  }
  if (response->generation <= last_generation_) {
    violation("delta RELOAD did not advance the generation");
    return;
  }
  last_generation_ = response->generation;
  serving_b_ = true;  // the applied delta reproduces B's bytes
  ++delta_reloads_;
}

void Soak::do_corrupt_reload(const ChaosEvent& event, std::uint64_t index) {
  const std::size_t which = static_cast<std::size_t>(event.corrupt);
  const std::string& path =
      event.corrupt_spdl ? fix_.corrupt_spdl[which] : fix_.corrupt_sibdb[which];
  auto response = control_reload(path);
  if (!response) return;
  if (response->ok) {
    violation("corrupt RELOAD (" + path + ") was ACCEPTED");
    return;
  }
  ++corrupt_reloads_;
  // The old snapshot must still answer, at the same generation, on the
  // very same pipelined connection that issued the rejected swap.
  auto probe = control_probe(index);
  if (!probe) return;
  if (probe->generation != last_generation_)
    violation("generation changed after rejected corrupt RELOAD of " + path);
}

void Soak::fault_loop() {
  // Learn the live generation, then pin a known snapshot so the
  // delta-reload base tracking starts from ground truth (external
  // servers arrive with arbitrary state).
  auto probe = control_probe(0);
  if (probe) last_generation_ = probe->generation;
  do_valid_reload(fix_.a_path, false);

  const std::size_t flood_cap =
      config_.fd_soft_limit != 0
          ? std::max<std::size_t>(8, static_cast<std::size_t>(config_.fd_soft_limit) / 4)
          : 64;
  std::uint64_t index = 0;
  while (!stop_.load()) {
    const ChaosEvent event = event_at(config_.seed, index);
    switch (event.kind) {
      case EventKind::QueryBurst:
        merge(query_burst(target_, event, fix_.keys));
        ++query_events_;
        break;
      case EventKind::ValidReload:
        do_valid_reload(serving_b_ ? fix_.a_path : fix_.b_path, !serving_b_);
        break;
      case EventKind::DeltaReload:
        do_delta_reload(index);
        break;
      case EventKind::CorruptReload:
        do_corrupt_reload(event, index);
        break;
      case EventKind::SlowReader:
        merge(slow_reader(target_, event, fix_.keys));
        ++fault_events_;
        break;
      case EventKind::MidFrameDisconnect:
        merge(mid_frame_disconnect(target_, event));
        ++fault_events_;
        break;
      case EventKind::ConnectionFlood:
        merge(connection_flood(target_, event, flood_cap));
        ++fault_events_;
        break;
    }
    ++index;
  }
  events_ = index;
  if (control_) control_->close();
}

void Soak::probe_loop(unsigned id) {
  std::optional<net::Client> client;
  auto last_ok = steady_clock::now();
  bool reported_unreachable = false;
  std::uint64_t iter = 0;
  while (!stop_.load()) {
    if (!client || !client->connected()) {
      std::string error;
      client = net::Client::connect(target_.host, target_.port, &error, milliseconds(1000));
      if (!client) {
        connect_failures_.fetch_add(1);
        if (!reported_unreachable &&
            steady_clock::now() - last_ok > std::chrono::seconds(5)) {
          violation("probe " + std::to_string(id) + ": server unreachable for >5s");
          reported_unreachable = true;  // once per outage, not per retry
        }
        std::this_thread::sleep_for(milliseconds(10));
        continue;
      }
    }
    net::QueryRequest request;
    request.request_id = static_cast<std::uint32_t>(synth::mix(config_.seed, id, iter));
    const std::size_t count = 4 + synth::pick(12, config_.seed, id, iter, 1);
    for (std::size_t k = 0; k < count; ++k) {
      request.keys.push_back(
          fix_.keys[synth::pick(fix_.keys.size(), config_.seed, id, iter, 2 + k)]);
    }
    std::vector<std::uint8_t> wire;
    net::encode_query_request(wire, request);
    std::string error;
    if (!client->send_bytes(wire, &error)) {
      client.reset();  // transient (eviction, shutdown race) — reconnect
      continue;
    }
    client_queries_.fetch_add(request.keys.size());
    auto frame = client->read_frame(&error, milliseconds(5000));
    if (!frame) {
      if (!stop_.load()) violation("probe " + std::to_string(id) + " query timed out/" + error);
      client.reset();
      continue;
    }
    auto response = net::parse_query_response(frame->body, &error);
    if (!response || response->request_id != request.request_id ||
        response->answers.size() != request.keys.size()) {
      violation("probe " + std::to_string(id) + ": malformed or mismatched response");
      client.reset();
      continue;
    }
    last_ok = steady_clock::now();
    reported_unreachable = false;
    ++iter;
  }
  if (client) client->close();
}

std::optional<net::StatsPayload> Soak::fetch_stats() {
  std::string error;
  auto client = net::Client::connect(target_.host, target_.port, &error, milliseconds(2000));
  if (!client) return std::nullopt;
  std::vector<std::uint8_t> wire;
  net::encode_stats_request(wire);
  if (!client->send_bytes(wire, &error)) return std::nullopt;
  auto frame = client->read_frame(&error, milliseconds(5000));
  if (!frame || frame->type != static_cast<std::uint8_t>(net::FrameType::kStatsResponse))
    return std::nullopt;
  return net::parse_stats_response(frame->body, &error);
}

void Soak::final_sweep(SoakReport& report) {
  // Quiesced byte-correctness: every fixture key answered over TCP must
  // equal an independently loaded oracle's answer.
  std::string error;
  auto oracle_db = serve::SiblingDB::load(fix_.a_path, &error);
  if (!oracle_db) {
    violation("sweep oracle load failed: " + error);
    return;
  }
  const serve::LookupEngine oracle(*oracle_db);
  auto client = net::Client::connect(target_.host, target_.port, &error, milliseconds(2000));
  if (!client) {
    violation("sweep connect failed: " + error);
    return;
  }
  const std::size_t batch = 256;
  for (std::size_t start = 0; start < fix_.keys.size(); start += batch) {
    net::QueryRequest request;
    request.request_id = static_cast<std::uint32_t>(0x51EE9000 + start);
    const std::size_t end = std::min(fix_.keys.size(), start + batch);
    request.keys.assign(fix_.keys.begin() + static_cast<std::ptrdiff_t>(start),
                        fix_.keys.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<std::uint8_t> wire;
    net::encode_query_request(wire, request);
    if (!client->send_bytes(wire, &error)) {
      violation("sweep send failed: " + error);
      return;
    }
    auto frame = client->read_frame(&error, milliseconds(5000));
    if (!frame) {
      violation("sweep response missing: " + error);
      return;
    }
    auto response = net::parse_query_response(frame->body, &error);
    if (!response || response->answers.size() != request.keys.size()) {
      violation("sweep response malformed");
      return;
    }
    for (std::size_t i = 0; i < request.keys.size(); ++i) {
      const Prefix& key = request.keys[i];
      const auto expected = key.length() == key.max_length()
                                ? oracle.query(key.address())
                                : oracle.query(key);
      ++report.sweep_keys;
      if (response->answers[i] != expected) {
        if (report.sweep_mismatches == 0)
          violation("sweep mismatch at key " + key.to_string());
        ++report.sweep_mismatches;
      }
    }
  }
}

SoakReport Soak::run() {
  SoakReport report;
  std::string error;
  auto fixtures = build_fixtures(config_, &error);
  if (!fixtures) {
    report.violations.push_back(error);
    return report;
  }
  fix_ = std::move(*fixtures);

  // In-process serving stack. A private registry keeps net.* metrics
  // (and their quantiles) scoped to this run.
  obs::MetricsRegistry registry;
  std::optional<serve::SiblingService> service;
  std::optional<net::Server> server;
  if (in_process()) {
    service.emplace(2);
    if (!service->load(fix_.a_path, &error)) {
      report.violations.push_back("initial load: " + error);
      return report;
    }
    net::ServerConfig server_config;
    server_config.workers = config_.server_workers;
    server_config.high_water = config_.high_water;
    server_config.accept_backoff = config_.accept_backoff;
    server_config.registry = &registry;
    server.emplace(*service, server_config);
    if (!server->start(&error)) {
      report.violations.push_back("server start: " + error);
      return report;
    }
    target_ = FaultTarget{"127.0.0.1", server->port()};
  } else {
    target_ = FaultTarget{config_.connect_host, config_.connect_port};
  }

  // Optional fd pressure: shrink the soft RLIMIT_NOFILE so connection
  // floods reach genuine EMFILE; restored before the final sweep.
  rlimit saved_nofile{};
  bool limited = false;
  if (in_process() && config_.fd_soft_limit != 0 &&
      ::getrlimit(RLIMIT_NOFILE, &saved_nofile) == 0) {
    rlimit lowered = saved_nofile;
    lowered.rlim_cur = std::min<rlim_t>(config_.fd_soft_limit, saved_nofile.rlim_max);
    limited = ::setrlimit(RLIMIT_NOFILE, &lowered) == 0;
  }

  std::vector<std::thread> threads;
  threads.reserve(config_.query_threads + 1);
  for (unsigned id = 0; id < config_.query_threads; ++id)
    threads.emplace_back([this, id] { probe_loop(id); });
  threads.emplace_back([this] { fault_loop(); });

  std::this_thread::sleep_for(config_.duration);
  stop_.store(true);
  for (auto& thread : threads) thread.join();
  if (limited) ::setrlimit(RLIMIT_NOFILE, &saved_nofile);

  // Re-pin snapshot A so the sweep oracle and the server agree, then run
  // the quiesced byte-correctness sweep.
  {
    stop_.store(false);  // allow the control helpers their retry window
    auto response = control_reload(fix_.a_path);
    stop_.store(true);
    if (!response || !response->ok) {
      violation("final RELOAD of " + fix_.a_path + " failed");
    } else {
      report.final_generation = response->generation;
    }
    if (control_) control_->close();
    control_.reset();
  }
  final_sweep(report);

  if (auto stats = fetch_stats()) {
    report.p99_us = stats->frame_p99_us;
    if (config_.max_p99_us > 0 && stats->frame_p99_us > config_.max_p99_us) {
      violation("frame p99 " + std::to_string(stats->frame_p99_us) + "us exceeds bound " +
                std::to_string(config_.max_p99_us) + "us");
    }
  } else {
    violation("STATS fetch after soak failed");
  }

  if (in_process()) {
    // Quiesce: all clients are gone, but a worker may still be draining
    // frames received before an abort. Wait for the exact counter to
    // settle before auditing conservation.
    std::uint64_t last = server->stats().queries;
    for (int i = 0; i < 60; ++i) {
      std::this_thread::sleep_for(milliseconds(50));
      const std::uint64_t now = server->stats().queries;
      if (now == last) break;
      last = now;
    }
    const net::ServerStats server_stats = server->stats();
    const serve::ServiceStats service_stats = service->stats();
    std::uint64_t generation_sum = service_stats.compacted.queries;
    for (const auto& generation : service_stats.generations)
      generation_sum += generation.queries;
    report.server_queries = server_stats.queries;
    report.generation_query_sum = generation_sum;
    report.accept_errors = server_stats.accept_errors;
    if (generation_sum != server_stats.queries) {
      violation("per-generation tallies not conserved: sum " +
                std::to_string(generation_sum) + " != served " +
                std::to_string(server_stats.queries));
    }
    report.peak_rss_kb = obs::peak_rss_kb();
    if (config_.max_rss_kb > 0 && report.peak_rss_kb > config_.max_rss_kb) {
      violation("peak RSS " + std::to_string(report.peak_rss_kb) + "kB exceeds bound " +
                std::to_string(config_.max_rss_kb) + "kB");
    }
    server->stop();
  }

  report.events = events_;
  report.query_events = query_events_;
  report.valid_reloads = valid_reloads_;
  report.delta_reloads = delta_reloads_;
  report.mismatched_delta_reloads = mismatched_delta_reloads_;
  report.corrupt_reloads = corrupt_reloads_;
  report.fault_events = fault_events_;
  report.client_queries = client_queries_.load();
  report.connect_failures = connect_failures_.load();
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    report.violations.insert(report.violations.end(), violations_.begin(), violations_.end());
  }
  report.ok = report.violations.empty();
  return report;
}

}  // namespace

std::string SoakReport::to_json() const {
  std::ostringstream out;
  out << "{\"ok\":" << (ok ? "true" : "false") << ",\"events\":" << events
      << ",\"query_events\":" << query_events << ",\"valid_reloads\":" << valid_reloads
      << ",\"delta_reloads\":" << delta_reloads
      << ",\"mismatched_delta_reloads\":" << mismatched_delta_reloads
      << ",\"corrupt_reloads\":" << corrupt_reloads << ",\"fault_events\":" << fault_events
      << ",\"connect_failures\":" << connect_failures
      << ",\"client_queries\":" << client_queries << ",\"server_queries\":" << server_queries
      << ",\"generation_query_sum\":" << generation_query_sum
      << ",\"accept_errors\":" << accept_errors
      << ",\"final_generation\":" << final_generation << ",\"sweep_keys\":" << sweep_keys
      << ",\"sweep_mismatches\":" << sweep_mismatches << ",\"p99_us\":" << p99_us
      << ",\"peak_rss_kb\":" << peak_rss_kb << ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << json_escape(violations[i]) << '"';
  }
  out << "]}";
  return out.str();
}

SoakReport run_soak(const SoakConfig& config) { return Soak(config).run(); }

}  // namespace sp::chaos
