// Chaos fault actors — misbehaving clients for the serve path.
//
// Each actor plays one ChaosEvent against a live sp::net::Server over
// real TCP: well-formed pipelined bursts, readers that stall against
// backpressure, connections dropped mid-frame, RST aborts with queued
// responses, and connection floods toward fd exhaustion. Actors verify
// only *structural* invariants (in-order request ids, per-frame answer
// counts, non-zero generation) — byte-level answer correctness is the
// soak driver's quiesced final sweep, where no reload can race the
// oracle.
//
// All parameter choices derive from ChaosEvent::seed via synth::mix, so
// a replay with the same scenario seed reproduces the same wire traffic.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "chaos/scenario.h"
#include "netbase/prefix.h"

namespace sp::chaos {

struct FaultTarget {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct FaultOutcome {
  bool ok = true;     // structural invariants held (or fault completed as scripted)
  std::string error;  // first violation, when !ok
  std::uint64_t queries_sent = 0;     // keys the server was asked (and will tally)
  std::uint64_t responses_read = 0;   // QUERY responses actually drained
  std::uint64_t connect_failures = 0; // expected under fd exhaustion, not a violation
};

/// Pipelined QUERY burst: `intensity` frames written back-to-back, then
/// responses read and checked for in-order request ids, matching answer
/// counts and a non-zero generation.
[[nodiscard]] FaultOutcome query_burst(const FaultTarget& target, const ChaosEvent& event,
                                       std::span<const Prefix> keys);

/// Sends large pipelined batches, then stalls without reading — driving
/// the server's output buffer past high_water so backpressure pauses the
/// connection. Half the seeds then drain everything (pause must resume);
/// the other half abort with an RST while responses are still queued
/// (the server must shed the connection without dying).
[[nodiscard]] FaultOutcome slow_reader(const FaultTarget& target, const ChaosEvent& event,
                                       std::span<const Prefix> keys);

/// Writes a frame header promising more body bytes than it sends, then
/// disconnects (clean FIN or RST by seed) mid-frame.
[[nodiscard]] FaultOutcome mid_frame_disconnect(const FaultTarget& target,
                                                const ChaosEvent& event);

/// Opens up to min(8 × intensity, max_connections) connections, holds
/// them all live at once, then closes them. Under a lowered
/// RLIMIT_NOFILE this is what drives the server to EMFILE; connect
/// failures are counted, not fatal.
[[nodiscard]] FaultOutcome connection_flood(const FaultTarget& target, const ChaosEvent& event,
                                            std::size_t max_connections);

}  // namespace sp::chaos
