// Seeded chaos scenario schedule for the serving path.
//
// A scenario is an infinite sequence of events, and `event_at(seed, i)`
// is a pure function — no generator state, no wall-clock randomness, so
// two soak runs with the same seed execute the identical fault sequence
// regardless of timing, thread interleaving, or how far each run got.
// The soak driver just walks indices 0, 1, 2, … until its deadline.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "chaos/corrupt.h"

namespace sp::chaos {

enum class EventKind : std::uint8_t {
  QueryBurst,         // pipelined query batch, responses checked in order
  ValidReload,        // RELOAD to the other valid .sibdb snapshot
  DeltaReload,        // RELOAD via the .spdl delta log (when base matches)
  CorruptReload,      // RELOAD pointing at a corrupt artifact — must be rejected
  SlowReader,         // client sends a big burst then stalls without reading
  MidFrameDisconnect, // close mid-frame: header sent, body cut short
  ConnectionFlood,    // open-and-hold a batch of raw connections
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

struct ChaosEvent {
  EventKind kind = EventKind::QueryBurst;
  /// Per-event derived seed: parameterizes the actor (query keys, stall
  /// slots, flood size, …) independently of the schedule position.
  std::uint64_t seed = 0;
  /// Kind-specific size knob in [1, 8]: queries per burst ×16,
  /// connections per flood ×8, etc. — the actor scales it.
  std::uint32_t intensity = 1;
  /// For CorruptReload: which corruption to serve.
  CorruptKind corrupt = CorruptKind::TruncatedHeader;
  /// For CorruptReload: corrupt the .spdl delta instead of the .sibdb.
  bool corrupt_spdl = false;
};

/// The event at schedule position `index` for this scenario seed.
[[nodiscard]] ChaosEvent event_at(std::uint64_t seed, std::uint64_t index) noexcept;

/// First `count` events, for tests and dry-run listings.
[[nodiscard]] std::vector<ChaosEvent> make_schedule(std::uint64_t seed, std::size_t count);

}  // namespace sp::chaos
