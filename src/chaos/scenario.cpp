#include "chaos/scenario.h"

#include "synth/determinism.h"

namespace sp::chaos {
namespace {

// Weighted mix, out of 100. Queries dominate (they are the invariant
// probes); reload churn and client misbehavior share the rest. Corrupt
// reloads are frequent enough that every kind appears within a short
// smoke window.
constexpr std::uint64_t kScheduleSalt = 0x5eed5'0a4;  // "seeds + soak"

EventKind kind_for(std::uint64_t roll) noexcept {
  if (roll < 40) return EventKind::QueryBurst;
  if (roll < 52) return EventKind::ValidReload;
  if (roll < 60) return EventKind::DeltaReload;
  if (roll < 75) return EventKind::CorruptReload;
  if (roll < 85) return EventKind::SlowReader;
  if (roll < 95) return EventKind::MidFrameDisconnect;
  return EventKind::ConnectionFlood;
}

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::QueryBurst: return "query_burst";
    case EventKind::ValidReload: return "valid_reload";
    case EventKind::DeltaReload: return "delta_reload";
    case EventKind::CorruptReload: return "corrupt_reload";
    case EventKind::SlowReader: return "slow_reader";
    case EventKind::MidFrameDisconnect: return "mid_frame_disconnect";
    case EventKind::ConnectionFlood: return "connection_flood";
  }
  return "unknown";
}

ChaosEvent event_at(std::uint64_t seed, std::uint64_t index) noexcept {
  ChaosEvent event;
  event.kind = kind_for(synth::pick(100, seed, kScheduleSalt, index, 0));
  event.seed = synth::mix(seed, kScheduleSalt, index, 1);
  event.intensity = static_cast<std::uint32_t>(1 + synth::pick(8, seed, kScheduleSalt, index, 2));
  event.corrupt =
      kAllCorruptKinds[synth::pick(kAllCorruptKinds.size(), seed, kScheduleSalt, index, 3)];
  event.corrupt_spdl = synth::pick(3, seed, kScheduleSalt, index, 4) == 0;
  return event;
}

std::vector<ChaosEvent> make_schedule(std::uint64_t seed, std::size_t count) {
  std::vector<ChaosEvent> schedule;
  schedule.reserve(count);
  for (std::size_t i = 0; i < count; ++i) schedule.push_back(event_at(seed, i));
  return schedule;
}

}  // namespace sp::chaos
