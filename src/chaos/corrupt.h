// Deterministic corruption of serving-path artifacts (.sibdb snapshots,
// .spdl delta logs) for the chaos/soak harness and the fuzz seed corpora.
//
// Every variant is a pure function of (image, kind, seed) — the same
// valid file and seed always produce the same corrupt bytes, so a soak
// failure replays exactly and interesting inputs can be promoted into
// fuzz/corpus/ verbatim (fuzz/make_seeds.cpp does exactly that).
//
// The contract: a compliant reader (serve::SiblingDB::load,
// stream::decode_spdl) must REJECT every variant. The soak driver
// re-verifies this at fixture-build time so a format change that
// accidentally moves a variant onto the accept path fails loudly instead
// of silently weakening the corrupt-swap invariant.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace sp::chaos {

enum class CorruptKind : std::uint8_t {
  TruncatedHeader,  // only the first few bytes survive: magic parses, sizes don't
  TruncatedBody,    // cut at a seeded offset past the header: checksum can't verify
  FlippedBit,       // one seeded payload bit flipped: checksum mismatch
  BadMagic,         // first byte zeroed: not this format at all
  FutureVersion,    // version field (u32 at offset 8 in both formats) maxed out
};

inline constexpr std::array<CorruptKind, 5> kAllCorruptKinds = {
    CorruptKind::TruncatedHeader, CorruptKind::TruncatedBody, CorruptKind::FlippedBit,
    CorruptKind::BadMagic, CorruptKind::FutureVersion,
};

[[nodiscard]] std::string_view to_string(CorruptKind kind) noexcept;

/// Produces a corrupt variant of a valid image. Pure and deterministic.
[[nodiscard]] std::vector<std::uint8_t> corrupt_image(std::span<const std::uint8_t> image,
                                                      CorruptKind kind, std::uint64_t seed);

}  // namespace sp::chaos
