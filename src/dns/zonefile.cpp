#include "dns/zonefile.h"

#include <charconv>
#include <fstream>
#include <iterator>
#include <sstream>

namespace sp::dns {

namespace {

struct Token {
  std::string text;
  bool quoted = false;
};

/// One logical record line (continuations joined), with its source line.
struct LogicalLine {
  std::vector<Token> tokens;
  bool owner_inherited = false;  // line began with whitespace
  std::size_t line_number = 0;
};

/// Splits master-file text into logical lines: strips ';' comments
/// (outside quotes), honors "..." quoting, and joins '(' ... ')'
/// continuations.
std::optional<std::vector<LogicalLine>> tokenize(std::string_view text,
                                                 ZoneParseError& error) {
  std::vector<LogicalLine> lines;
  LogicalLine current;
  int paren_depth = 0;
  std::size_t line_number = 1;
  bool line_started = false;  // saw the first physical line of the record

  std::string token_text;
  bool in_token = false;
  bool in_quotes = false;
  bool token_was_quoted = false;

  const auto flush_token = [&] {
    if (in_token) {
      current.tokens.push_back({std::move(token_text), token_was_quoted});
      token_text.clear();
      in_token = false;
      token_was_quoted = false;
    }
  };
  const auto flush_line = [&] {
    flush_token();
    if (!current.tokens.empty()) lines.push_back(std::move(current));
    current = LogicalLine{};
    line_started = false;
  };

  for (std::size_t i = 0; i <= text.size(); ++i) {
    const char c = i < text.size() ? text[i] : '\n';
    if (in_quotes) {
      if (c == '"') {
        in_quotes = false;
      } else if (c == '\n') {
        error = {line_number, "unterminated quoted string"};
        return std::nullopt;
      } else {
        token_text.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        in_token = true;
        token_was_quoted = true;
        break;
      case ';': {
        // Comment to end of physical line.
        while (i < text.size() && text[i] != '\n') ++i;
        --i;  // reprocess the newline
        break;
      }
      case '(':
        flush_token();
        ++paren_depth;
        break;
      case ')':
        flush_token();
        if (--paren_depth < 0) {
          error = {line_number, "unbalanced ')'"};
          return std::nullopt;
        }
        break;
      case '\n':
        ++line_number;
        flush_token();
        if (paren_depth == 0) flush_line();
        break;
      case ' ':
      case '\t':
      case '\r':
        flush_token();
        if (!line_started && paren_depth == 0 && current.tokens.empty()) {
          current.owner_inherited = true;
        }
        break;
      default:
        if (!in_token) {
          in_token = true;
          if (!line_started) {
            current.line_number = line_number;
            line_started = true;
          }
        }
        token_text.push_back(c);
        break;
    }
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n' && !line_started) {
      current.line_number = line_number;
      line_started = true;
    }
  }
  if (paren_depth != 0) {
    error = {line_number, "unbalanced '('"};
    return std::nullopt;
  }
  return lines;
}

std::optional<DomainName> resolve_name(const std::string& token, const DomainName& origin) {
  if (token == "@") return origin;
  if (!token.empty() && token.back() == '.') return DomainName::from_string(token);
  const auto relative = DomainName::from_string(token);
  if (!relative) return std::nullopt;
  if (origin.is_root()) return relative;
  return DomainName::from_string(relative->text() + "." + origin.text());
}

bool parse_u32(const std::string& token, std::uint32_t& out) {
  const auto result = std::from_chars(token.data(), token.data() + token.size(), out);
  return result.ec == std::errc{} && result.ptr == token.data() + token.size();
}

bool parse_u16(const std::string& token, std::uint16_t& out) {
  const auto result = std::from_chars(token.data(), token.data() + token.size(), out);
  return result.ec == std::errc{} && result.ptr == token.data() + token.size();
}

}  // namespace

ZoneParseResult parse_zone_text(std::string_view text, ZoneDatabase& zones,
                                const DomainName& default_origin) {
  ZoneParseResult result;
  ZoneParseError tokenize_error;
  const auto lines = tokenize(text, tokenize_error);
  if (!lines) {
    result.error = tokenize_error;
    return result;
  }

  DomainName origin = default_origin;
  std::uint32_t default_ttl = 3600;
  std::optional<DomainName> last_owner;

  const auto fail = [&result](std::size_t line, std::string message) {
    result.error = {line, std::move(message)};
    return result;
  };

  for (const LogicalLine& line : *lines) {
    std::size_t cursor = 0;
    const auto& tokens = line.tokens;

    // Directives.
    if (tokens[0].text == "$ORIGIN" && !tokens[0].quoted) {
      if (tokens.size() != 2) return fail(line.line_number, "$ORIGIN takes one name");
      const auto name = resolve_name(tokens[1].text, DomainName());
      if (!name) return fail(line.line_number, "bad $ORIGIN name");
      origin = *name;
      continue;
    }
    if (tokens[0].text == "$TTL" && !tokens[0].quoted) {
      if (tokens.size() != 2 || !parse_u32(tokens[1].text, default_ttl)) {
        return fail(line.line_number, "bad $TTL");
      }
      continue;
    }

    // Owner.
    DomainName owner;
    if (line.owner_inherited) {
      if (!last_owner) return fail(line.line_number, "no previous owner to inherit");
      owner = *last_owner;
    } else {
      const auto name = resolve_name(tokens[cursor].text, origin);
      if (!name) return fail(line.line_number, "bad owner name: " + tokens[cursor].text);
      owner = *name;
      ++cursor;
    }
    last_owner = owner;

    // Optional TTL and CLASS, in either order.
    std::uint32_t ttl = default_ttl;
    for (int i = 0; i < 2 && cursor < tokens.size(); ++i) {
      std::uint32_t parsed_ttl = 0;
      if (parse_u32(tokens[cursor].text, parsed_ttl)) {
        ttl = parsed_ttl;
        ++cursor;
      } else if (tokens[cursor].text == "IN") {
        ++cursor;
      }
    }
    if (cursor >= tokens.size()) return fail(line.line_number, "missing record type");

    const std::string& type = tokens[cursor].text;
    ++cursor;
    const std::size_t remaining = tokens.size() - cursor;
    const auto rdata_name = [&](std::size_t index) {
      return resolve_name(tokens[cursor + index].text, origin);
    };

    if (type == "A") {
      if (remaining != 1) return fail(line.line_number, "A takes one address");
      const auto address = IPv4Address::from_string(tokens[cursor].text);
      if (!address) return fail(line.line_number, "bad A address");
      zones.add(ResourceRecord::a(owner, *address, ttl));
    } else if (type == "AAAA") {
      if (remaining != 1) return fail(line.line_number, "AAAA takes one address");
      const auto address = IPv6Address::from_string(tokens[cursor].text);
      if (!address) return fail(line.line_number, "bad AAAA address");
      zones.add(ResourceRecord::aaaa(owner, *address, ttl));
    } else if (type == "CNAME" || type == "NS" || type == "PTR") {
      if (remaining != 1) return fail(line.line_number, type + " takes one name");
      const auto target = rdata_name(0);
      if (!target) return fail(line.line_number, "bad " + type + " target");
      if (type == "CNAME") {
        zones.add(ResourceRecord::cname(owner, *target, ttl));
      } else if (type == "NS") {
        zones.add(ResourceRecord::ns(owner, *target, ttl));
      } else {
        zones.add(ResourceRecord::ptr(owner, *target, ttl));
      }
    } else if (type == "MX") {
      std::uint16_t preference = 0;
      if (remaining != 2 || !parse_u16(tokens[cursor].text, preference)) {
        return fail(line.line_number, "MX takes preference + exchange");
      }
      const auto exchange = rdata_name(1);
      if (!exchange) return fail(line.line_number, "bad MX exchange");
      zones.add(ResourceRecord::mx(owner, preference, *exchange, ttl));
    } else if (type == "TXT") {
      if (remaining == 0) return fail(line.line_number, "TXT takes text");
      std::string joined;
      for (std::size_t i = cursor; i < tokens.size(); ++i) joined += tokens[i].text;
      zones.add(ResourceRecord::txt(owner, std::move(joined), ttl));
    } else if (type == "SOA") {
      if (remaining != 7) return fail(line.line_number, "SOA takes 7 fields");
      SoaData soa;
      const auto mname = rdata_name(0);
      const auto rname = rdata_name(1);
      if (!mname || !rname) return fail(line.line_number, "bad SOA names");
      soa.mname = *mname;
      soa.rname = *rname;
      if (!parse_u32(tokens[cursor + 2].text, soa.serial) ||
          !parse_u32(tokens[cursor + 3].text, soa.refresh) ||
          !parse_u32(tokens[cursor + 4].text, soa.retry) ||
          !parse_u32(tokens[cursor + 5].text, soa.expire) ||
          !parse_u32(tokens[cursor + 6].text, soa.minimum)) {
        return fail(line.line_number, "bad SOA counters");
      }
      zones.add(ResourceRecord::soa(owner, std::move(soa), ttl));
    } else {
      return fail(line.line_number, "unsupported record type: " + type);
    }
    ++result.records_added;
  }
  return result;
}

std::string write_zone_text(const ZoneDatabase& zones) {
  std::ostringstream out;
  zones.visit_records([&out](const ResourceRecord& record) {
    out << record.name.to_string() << ". " << record.ttl << " IN "
        << record_type_name(record.type) << ' ';
    switch (record.type) {
      case RecordType::A:
        out << std::get<IPv4Address>(record.data).to_string();
        break;
      case RecordType::AAAA:
        out << std::get<IPv6Address>(record.data).to_string();
        break;
      case RecordType::CNAME:
      case RecordType::NS:
      case RecordType::PTR:
        out << std::get<DomainName>(record.data).to_string() << '.';
        break;
      case RecordType::MX: {
        const auto& mx = std::get<MxData>(record.data);
        out << mx.preference << ' ' << mx.exchange.to_string() << '.';
        break;
      }
      case RecordType::TXT:
        out << '"' << std::get<TxtData>(record.data).text << '"';
        break;
      case RecordType::SOA: {
        const auto& soa = std::get<SoaData>(record.data);
        out << soa.mname.to_string() << ". " << soa.rname.to_string() << ". " << soa.serial
            << ' ' << soa.refresh << ' ' << soa.retry << ' ' << soa.expire << ' '
            << soa.minimum;
        break;
      }
      case RecordType::OPT:
        break;  // EDNS pseudo-records never appear in zone data
    }
    out << '\n';
  });
  return out.str();
}

ZoneParseResult parse_zone_file(const std::string& path, ZoneDatabase& zones,
                                const DomainName& default_origin) {
  std::ifstream in(path);
  if (!in) {
    ZoneParseResult result;
    result.error = {0, "cannot open " + path};
    return result;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  return parse_zone_text(text, zones, default_origin);
}

bool write_zone_file(const std::string& path, const ZoneDatabase& zones) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << write_zone_text(zones);
  return static_cast<bool>(out);
}

}  // namespace sp::dns
