// Iterative resolver over authoritative servers (the recursive-resolver
// role behind large-scale resolution campaigns such as OpenINTEL's).
//
// Each authoritative server is a ZoneDatabase reachable under a host name;
// resolution starts at a root server and follows NS referrals downward,
// re-encoding every query/response through the RFC 1035 wire codec so the
// full message path is exercised on every hop. CNAME answers restart the
// query at the root with the target name (bounded), and both A and AAAA
// are resolved to produce the dual-stack view the sibling pipeline needs.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/snapshot.h"
#include "dns/zone.h"

namespace sp::dns {

class IterativeResolver {
 public:
  struct Config {
    int max_referrals = 16;  // per query, guards against referral loops
    int max_cname_restarts = 8;
  };

  /// `root_server` must be registered before resolve() is called.
  explicit IterativeResolver(DomainName root_server)
      : IterativeResolver(std::move(root_server), Config{16, 8}) {}
  IterativeResolver(DomainName root_server, Config config)
      : root_server_(std::move(root_server)), config_(config) {}

  /// Registers an authoritative server; the ZoneDatabase must outlive the
  /// resolver.
  void register_server(const DomainName& server, const ZoneDatabase* zones) {
    servers_[server] = zones;
  }

  struct Trace {
    std::vector<DomainName> servers_consulted;
    std::size_t wire_bytes = 0;  // total encoded query+response bytes
    bool referral_limit_hit = false;
    bool cname_limit_hit = false;
    bool lame_delegation = false;  // referred to an unregistered server
  };

  /// Resolves A and AAAA for `name`, following referrals and CNAMEs.
  /// Returns the same shape as ZoneDatabase::resolve plus a trace.
  [[nodiscard]] ResolutionResult resolve(const DomainName& name,
                                         Trace* trace = nullptr) const;

  /// Resolves a whole domain list into a snapshot (the resolution-campaign
  /// entry point).
  [[nodiscard]] ResolutionSnapshot resolve_all(std::span<const DomainName> queries,
                                               Date date) const;

 private:
  /// One query (name, type) through the referral chain; appends addresses
  /// and returns the final CNAME target if the answer was a CNAME chain.
  [[nodiscard]] std::optional<DomainName> query_chain(const DomainName& name,
                                                      RecordType type,
                                                      ResolutionResult& result,
                                                      Trace* trace) const;

  DomainName root_server_;
  Config config_;
  std::unordered_map<DomainName, const ZoneDatabase*> servers_;
};

}  // namespace sp::dns
