#include "dns/resolver.h"

#include <algorithm>
#include <unordered_set>

namespace sp::dns {

namespace {

void sort_unique_v4(std::vector<IPv4Address>& addresses) {
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()), addresses.end());
}

void sort_unique_v6(std::vector<IPv6Address>& addresses) {
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()), addresses.end());
}

}  // namespace

std::optional<DomainName> IterativeResolver::query_chain(const DomainName& name,
                                                         RecordType type,
                                                         ResolutionResult& result,
                                                         Trace* trace) const {
  DomainName current_server = root_server_;
  std::optional<DomainName> cname_target;

  for (int hop = 0; hop <= config_.max_referrals; ++hop) {
    if (hop == config_.max_referrals) {
      if (trace != nullptr) trace->referral_limit_hit = true;
      return std::nullopt;
    }
    const auto server_it = servers_.find(current_server);
    if (server_it == servers_.end()) {
      if (trace != nullptr) trace->lame_delegation = true;
      return std::nullopt;
    }
    if (trace != nullptr) trace->servers_consulted.push_back(current_server);

    // Full wire round trip on every hop.
    Message query;
    query.header.id = static_cast<std::uint16_t>(hop + 1);
    query.questions.push_back({name, type});
    const auto query_wire = encode_message(query);
    const auto parsed_query = decode_message(query_wire);
    if (!parsed_query) return std::nullopt;  // codec bug guard
    const Message response = server_it->second->serve(*parsed_query);
    const auto response_wire = encode_message(response);
    const auto parsed = decode_message(response_wire);
    if (!parsed) return std::nullopt;
    if (trace != nullptr) trace->wire_bytes += query_wire.size() + response_wire.size();

    // Terminal answers.
    bool answered = false;
    for (const auto& record : parsed->answers) {
      if (record.type == RecordType::A && type == RecordType::A) {
        result.v4.push_back(std::get<IPv4Address>(record.data));
        answered = true;
      } else if (record.type == RecordType::AAAA && type == RecordType::AAAA) {
        result.v6.push_back(std::get<IPv6Address>(record.data));
        answered = true;
      } else if (record.type == RecordType::CNAME) {
        cname_target = std::get<DomainName>(record.data);
        answered = true;
      }
    }
    if (answered || parsed->header.rcode != 0) return cname_target;

    // Referral: follow the first NS whose server we can reach.
    const ResourceRecord* delegation = nullptr;
    for (const auto& record : parsed->authorities) {
      if (record.type != RecordType::NS) continue;
      const DomainName& server = std::get<DomainName>(record.data);
      if (servers_.contains(server)) {
        delegation = &record;
        break;
      }
      if (delegation == nullptr) delegation = &record;  // remember a lame one
    }
    if (delegation == nullptr) return cname_target;  // empty NOERROR
    const DomainName next = std::get<DomainName>(delegation->data);
    if (next == current_server) {
      // Self-referral: a broken delegation; stop rather than loop.
      if (trace != nullptr) trace->lame_delegation = true;
      return cname_target;
    }
    current_server = next;
  }
  return cname_target;
}

ResolutionResult IterativeResolver::resolve(const DomainName& name, Trace* trace) const {
  ResolutionResult result;
  result.queried = name;
  result.response_name = name;

  for (const RecordType type : {RecordType::A, RecordType::AAAA}) {
    DomainName current = name;
    std::unordered_set<DomainName> visited{current};
    for (int restart = 0;; ++restart) {
      if (restart >= config_.max_cname_restarts) {
        result.chain_too_long = true;
        if (trace != nullptr) trace->cname_limit_hit = true;
        break;
      }
      const auto cname = query_chain(current, type, result, trace);
      if (!cname) break;
      if (!visited.insert(*cname).second) {
        result.cname_loop = true;
        break;
      }
      // Track the chain only once (the A pass); both passes walk the same
      // chain because CNAMEs are type-independent.
      if (type == RecordType::A) result.cname_chain.push_back(*cname);
      current = *cname;
    }
    if (type == RecordType::A) result.response_name = current;
  }
  sort_unique_v4(result.v4);
  sort_unique_v6(result.v6);
  return result;
}

ResolutionSnapshot IterativeResolver::resolve_all(std::span<const DomainName> queries,
                                                  Date date) const {
  ResolutionSnapshot snapshot(date);
  for (const DomainName& query : queries) {
    auto result = resolve(query);
    if (result.v4.empty() && result.v6.empty()) continue;
    snapshot.add(DomainResolution{.queried = std::move(result.queried),
                                  .response_name = std::move(result.response_name),
                                  .v4 = std::move(result.v4),
                                  .v6 = std::move(result.v6)});
  }
  return snapshot;
}

}  // namespace sp::dns
