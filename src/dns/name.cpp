#include "dns/name.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace sp::dns {

namespace {

constexpr std::size_t kMaxLabelLength = 63;
constexpr std::size_t kMaxNameLength = 253;

bool valid_label(std::string_view label) {
  if (label.empty() || label.size() > kMaxLabelLength) return false;
  if (label.front() == '-' || label.back() == '-') return false;
  return std::all_of(label.begin(), label.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' || c == '_';
  });
}

}  // namespace

std::optional<DomainName> DomainName::from_string(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return DomainName();  // root
  if (text.size() > kMaxNameLength) return std::nullopt;

  std::string canonical(text);
  std::transform(canonical.begin(), canonical.end(), canonical.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });

  std::size_t start = 0;
  while (true) {
    const std::size_t dot = canonical.find('.', start);
    const std::string_view label =
        std::string_view(canonical).substr(start, dot == std::string::npos ? std::string::npos
                                                                           : dot - start);
    if (!valid_label(label)) return std::nullopt;
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return DomainName(std::move(canonical));
}

DomainName DomainName::must_parse(std::string_view text) {
  auto parsed = from_string(text);
  if (!parsed) throw std::invalid_argument("invalid domain name: " + std::string(text));
  return *std::move(parsed);
}

std::vector<std::string_view> DomainName::labels() const {
  std::vector<std::string_view> out;
  if (is_root()) return out;
  const std::string_view view(text_);
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = view.find('.', start);
    if (dot == std::string_view::npos) {
      out.push_back(view.substr(start));
      return out;
    }
    out.push_back(view.substr(start, dot - start));
    start = dot + 1;
  }
}

std::size_t DomainName::label_count() const noexcept {
  if (is_root()) return 0;
  return static_cast<std::size_t>(std::count(text_.begin(), text_.end(), '.')) + 1;
}

DomainName DomainName::parent() const {
  const std::size_t dot = text_.find('.');
  if (dot == std::string::npos) return DomainName();
  return DomainName(text_.substr(dot + 1));
}

bool DomainName::is_subdomain_of(const DomainName& ancestor) const noexcept {
  if (ancestor.is_root()) return true;
  if (text_.size() < ancestor.text_.size()) return false;
  if (text_.size() == ancestor.text_.size()) return text_ == ancestor.text_;
  const std::size_t offset = text_.size() - ancestor.text_.size();
  return text_[offset - 1] == '.' &&
         std::string_view(text_).substr(offset) == ancestor.text_;
}

std::string_view DomainName::tld() const noexcept {
  if (is_root()) return {};
  const std::size_t dot = text_.rfind('.');
  return std::string_view(text_).substr(dot == std::string::npos ? 0 : dot + 1);
}

DomainName reverse_name(const IPAddress& address) {
  std::string text;
  if (address.is_v4()) {
    const auto octets = address.v4().octets();
    for (int i = 3; i >= 0; --i) {
      text += std::to_string(octets[static_cast<std::size_t>(i)]);
      text.push_back('.');
    }
    text += "in-addr.arpa";
  } else {
    constexpr char kHex[] = "0123456789abcdef";
    // Copy: v6() returns a temporary; a reference to its bytes would dangle.
    const IPv6Address::Bytes bytes = address.v6().bytes();
    for (int i = 15; i >= 0; --i) {
      const std::uint8_t byte = bytes[static_cast<std::size_t>(i)];
      text.push_back(kHex[byte & 0xF]);
      text.push_back('.');
      text.push_back(kHex[byte >> 4]);
      text.push_back('.');
    }
    text += "ip6.arpa";
  }
  return DomainName::must_parse(text);
}

}  // namespace sp::dns
