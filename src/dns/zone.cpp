#include "dns/zone.h"

#include <algorithm>
#include <unordered_set>

namespace sp::dns {

namespace {

const std::vector<ResourceRecord> kNoRecords;

void sort_unique_v4(std::vector<IPv4Address>& addresses) {
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()), addresses.end());
}

void sort_unique_v6(std::vector<IPv6Address>& addresses) {
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()), addresses.end());
}

}  // namespace

void ZoneDatabase::add(ResourceRecord record) {
  by_name_[record.name].push_back(std::move(record));
  ++record_count_;
}

const std::vector<ResourceRecord>& ZoneDatabase::records(const DomainName& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoRecords : it->second;
}

std::vector<ResourceRecord> ZoneDatabase::records(const DomainName& name,
                                                  RecordType type) const {
  std::vector<ResourceRecord> out;
  for (const auto& record : records(name)) {
    if (record.type == type) out.push_back(record);
  }
  return out;
}

void ZoneDatabase::visit_records(
    const std::function<void(const ResourceRecord&)>& visit) const {
  std::vector<const DomainName*> names;
  names.reserve(by_name_.size());
  for (const auto& [name, records] : by_name_) names.push_back(&name);
  std::sort(names.begin(), names.end(),
            [](const DomainName* a, const DomainName* b) { return *a < *b; });
  for (const DomainName* name : names) {
    for (const auto& record : by_name_.at(*name)) visit(record);
  }
}

ResolutionResult ZoneDatabase::resolve(const DomainName& query) const {
  ResolutionResult result;
  result.queried = query;
  result.response_name = query;

  std::unordered_set<DomainName> visited{query};
  DomainName current = query;
  for (std::size_t depth = 0;; ++depth) {
    if (depth >= kMaxCnameDepth) {
      result.chain_too_long = true;
      break;
    }
    // A CNAME is exclusive with other data at the same name (RFC 1034
    // section 3.6.2), so chase it before collecting addresses.
    const auto cnames = records(current, RecordType::CNAME);
    if (cnames.empty()) {
      for (const auto& record : records(current)) {
        if (record.type == RecordType::A) {
          result.v4.push_back(std::get<IPv4Address>(record.data));
        } else if (record.type == RecordType::AAAA) {
          result.v6.push_back(std::get<IPv6Address>(record.data));
        }
      }
      break;
    }
    const DomainName& target = std::get<DomainName>(cnames.front().data);
    if (!visited.insert(target).second) {
      result.cname_loop = true;
      break;
    }
    result.cname_chain.push_back(target);
    current = target;
  }
  result.response_name = current;
  sort_unique_v4(result.v4);
  sort_unique_v6(result.v6);
  return result;
}

Message ZoneDatabase::serve(const Message& query) const {
  Message response;
  response.header = query.header;
  response.header.qr = true;
  response.header.aa = true;
  response.header.ra = false;
  response.questions = query.questions;

  bool any_name_known = query.questions.empty();
  for (const auto& question : query.questions) {
    if (by_name_.contains(question.name)) any_name_known = true;

    // Emit the CNAME chain from the queried name.
    const auto resolution = resolve(question.name);
    DomainName owner = question.name;
    for (const auto& target : resolution.cname_chain) {
      response.answers.push_back(ResourceRecord::cname(owner, target));
      owner = target;
    }
    if (question.type == RecordType::A) {
      for (const auto& address : resolution.v4) {
        response.answers.push_back(ResourceRecord::a(owner, address));
      }
    } else if (question.type == RecordType::AAAA) {
      for (const auto& address : resolution.v6) {
        response.answers.push_back(ResourceRecord::aaaa(owner, address));
      }
    } else {
      for (const auto& record : records(resolution.response_name, question.type)) {
        response.answers.push_back(record);
      }
    }
  }
  if (!any_name_known) {
    bool referred = false;
    // Walk up from each queried name: the closest enclosing SOA means we
    // are authoritative and the name does not exist (NXDOMAIN with the SOA
    // in the authority section, RFC 2308); closer NS records mean the
    // question belongs to a delegated child zone — answer with a referral
    // (NOERROR, NS in authority, glue addresses in additionals).
    for (const auto& question : query.questions) {
      DomainName zone = question.name;
      while (true) {
        const auto soas = records(zone, RecordType::SOA);
        if (!soas.empty()) {
          response.authorities.push_back(soas.front());
          break;
        }
        const auto delegations = records(zone, RecordType::NS);
        if (!delegations.empty()) {
          referred = true;
          for (const auto& ns : delegations) {
            response.authorities.push_back(ns);
            const DomainName& server = std::get<DomainName>(ns.data);
            for (const auto& glue : records(server)) {
              if (glue.type == RecordType::A || glue.type == RecordType::AAAA) {
                response.additionals.push_back(glue);
              }
            }
          }
          break;
        }
        if (zone.is_root()) break;
        zone = zone.parent();
      }
    }
    if (!referred) response.header.rcode = 3;  // NXDOMAIN
  }
  return response;
}

}  // namespace sp::dns
