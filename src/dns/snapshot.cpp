#include "dns/snapshot.h"

#include <algorithm>

namespace sp::dns {

ResolutionSnapshot ResolutionSnapshot::resolve_all(const ZoneDatabase& zones,
                                                   std::span<const DomainName> queries,
                                                   Date date) {
  ResolutionSnapshot snapshot(date);
  for (const auto& query : queries) {
    auto result = zones.resolve(query);
    if (result.v4.empty() && result.v6.empty()) continue;
    snapshot.add(DomainResolution{.queried = std::move(result.queried),
                                  .response_name = std::move(result.response_name),
                                  .v4 = std::move(result.v4),
                                  .v6 = std::move(result.v6)});
  }
  return snapshot;
}

std::size_t ResolutionSnapshot::dual_stack_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const DomainResolution& e) { return e.dual_stack(); }));
}

std::vector<const DomainResolution*> ResolutionSnapshot::dual_stack_entries() const {
  std::vector<const DomainResolution*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (entry.dual_stack()) out.push_back(&entry);
  }
  return out;
}

}  // namespace sp::dns
