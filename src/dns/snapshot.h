// Resolution snapshots: the OpenINTEL-shaped input of the pipeline.
//
// A ResolutionSnapshot is one dated pass of DNS resolutions over a domain
// list: for every queried domain, the final (post-CNAME) response name and
// its IPv4/IPv6 address sets. Sibling-prefix detection consumes the
// dual-stack subset of a snapshot.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dns/zone.h"
#include "netbase/date.h"

namespace sp::dns {

/// One domain's resolution outcome within a snapshot.
struct DomainResolution {
  DomainName queried;
  DomainName response_name;  // identity used downstream (paper section 3)
  std::vector<IPv4Address> v4;
  std::vector<IPv6Address> v6;

  [[nodiscard]] bool has_v4() const noexcept { return !v4.empty(); }
  [[nodiscard]] bool has_v6() const noexcept { return !v6.empty(); }
  [[nodiscard]] bool dual_stack() const noexcept { return has_v4() && has_v6(); }
};

class ResolutionSnapshot {
 public:
  ResolutionSnapshot() = default;
  explicit ResolutionSnapshot(Date date) : date_(date) {}

  /// Resolves every domain in `queries` against `zones` and keeps the ones
  /// that produced at least one address.
  [[nodiscard]] static ResolutionSnapshot resolve_all(const ZoneDatabase& zones,
                                                      std::span<const DomainName> queries,
                                                      Date date);

  void add(DomainResolution resolution) { entries_.push_back(std::move(resolution)); }

  [[nodiscard]] Date date() const noexcept { return date_; }
  [[nodiscard]] const std::vector<DomainResolution>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t domain_count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t dual_stack_count() const noexcept;

  /// The dual-stack subset (entries with both families), by reference.
  [[nodiscard]] std::vector<const DomainResolution*> dual_stack_entries() const;

 private:
  Date date_;
  std::vector<DomainResolution> entries_;
};

}  // namespace sp::dns
