#include "dns/wire.h"

#include <algorithm>
#include <map>

namespace sp::dns {

namespace {

constexpr std::size_t kMaxDecodedNameLength = 255;
constexpr int kMaxCompressionJumps = 32;
constexpr std::uint16_t kCompressionPointerLimit = 0x3FFF;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

class Encoder {
 public:
  void put_u8(std::uint8_t v) { out_.push_back(v); }

  void put_u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }

  void put_u32(std::uint32_t v) {
    put_u16(static_cast<std::uint16_t>(v >> 16));
    put_u16(static_cast<std::uint16_t>(v & 0xffff));
  }

  void put_bytes(std::span<const std::uint8_t> bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  /// Emits a (possibly compressed) domain name. Each emitted suffix is
  /// remembered so later occurrences become 2-byte pointers.
  void put_name(const DomainName& name) {
    std::string suffix = name.text();
    while (!suffix.empty()) {
      const auto known = suffix_offsets_.find(suffix);
      if (known != suffix_offsets_.end()) {
        put_u16(static_cast<std::uint16_t>(0xC000u | known->second));
        return;
      }
      if (out_.size() <= kCompressionPointerLimit) {
        suffix_offsets_.emplace(suffix, static_cast<std::uint16_t>(out_.size()));
      }
      const std::size_t dot = suffix.find('.');
      const std::string_view label =
          std::string_view(suffix).substr(0, dot == std::string::npos ? suffix.size() : dot);
      put_u8(static_cast<std::uint8_t>(label.size()));
      for (const char c : label) out_.push_back(static_cast<std::uint8_t>(c));
      suffix = dot == std::string::npos ? std::string() : suffix.substr(dot + 1);
    }
    put_u8(0);  // root label
  }

  /// Overwrites a previously written 16-bit slot (for RDLENGTH back-patch).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
  }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
  std::map<std::string, std::uint16_t> suffix_offsets_;
};

void encode_record(Encoder& enc, const ResourceRecord& record) {
  if (record.type == RecordType::OPT) {
    // RFC 6891: owner is the root, CLASS carries the UDP payload size and
    // TTL the extended rcode / version / DO flag.
    const auto& opt = std::get<OptData>(record.data);
    enc.put_u8(0);  // root name
    enc.put_u16(static_cast<std::uint16_t>(RecordType::OPT));
    enc.put_u16(opt.udp_payload_size);
    enc.put_u32((std::uint32_t{opt.extended_rcode} << 24) |
                (std::uint32_t{opt.version} << 16) | (opt.dnssec_ok ? 0x8000u : 0u));
    std::size_t rdlength = 0;
    for (const auto& option : opt.options) rdlength += 4 + option.data.size();
    enc.put_u16(static_cast<std::uint16_t>(rdlength));
    for (const auto& option : opt.options) {
      enc.put_u16(option.code);
      enc.put_u16(static_cast<std::uint16_t>(option.data.size()));
      enc.put_bytes(option.data);
    }
    return;
  }
  enc.put_name(record.name);
  enc.put_u16(static_cast<std::uint16_t>(record.type));
  enc.put_u16(kClassIn);
  enc.put_u32(record.ttl);
  const std::size_t rdlength_offset = enc.size();
  enc.put_u16(0);  // patched below
  const std::size_t rdata_start = enc.size();

  switch (record.type) {
    case RecordType::A: {
      const auto octets = std::get<IPv4Address>(record.data).octets();
      enc.put_bytes(octets);
      break;
    }
    case RecordType::AAAA: {
      const auto& bytes = std::get<IPv6Address>(record.data).bytes();
      enc.put_bytes(bytes);
      break;
    }
    case RecordType::CNAME:
    case RecordType::NS:
    case RecordType::PTR:
      enc.put_name(std::get<DomainName>(record.data));
      break;
    case RecordType::MX: {
      const auto& mx = std::get<MxData>(record.data);
      enc.put_u16(mx.preference);
      enc.put_name(mx.exchange);
      break;
    }
    case RecordType::SOA: {
      const auto& soa = std::get<SoaData>(record.data);
      enc.put_name(soa.mname);
      enc.put_name(soa.rname);
      enc.put_u32(soa.serial);
      enc.put_u32(soa.refresh);
      enc.put_u32(soa.retry);
      enc.put_u32(soa.expire);
      enc.put_u32(soa.minimum);
      break;
    }
    case RecordType::TXT: {
      // One or more <character-string>s, each up to 255 octets.
      const std::string& text = std::get<TxtData>(record.data).text;
      std::size_t pos = 0;
      do {
        const std::size_t chunk = std::min<std::size_t>(255, text.size() - pos);
        enc.put_u8(static_cast<std::uint8_t>(chunk));
        for (std::size_t i = 0; i < chunk; ++i) {
          enc.put_u8(static_cast<std::uint8_t>(text[pos + i]));
        }
        pos += chunk;
      } while (pos < text.size());
      break;
    }
    case RecordType::OPT:
      break;  // handled above (never reaches the generic path)
  }
  enc.patch_u16(rdlength_offset, static_cast<std::uint16_t>(enc.size() - rdata_start));
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> wire) : wire_(wire) {}

  [[nodiscard]] bool fail(std::string reason) {
    if (error_.empty()) error_ = std::move(reason);
    return false;
  }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == wire_.size(); }

  bool read_u8(std::uint8_t& out) {
    if (pos_ + 1 > wire_.size()) return fail("truncated u8");
    out = wire_[pos_++];
    return true;
  }

  bool read_u16(std::uint16_t& out) {
    if (pos_ + 2 > wire_.size()) return fail("truncated u16");
    out = static_cast<std::uint16_t>((wire_[pos_] << 8) | wire_[pos_ + 1]);
    pos_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t& out) {
    std::uint16_t hi = 0;
    std::uint16_t lo = 0;
    if (!read_u16(hi) || !read_u16(lo)) return false;
    out = (std::uint32_t{hi} << 16) | lo;
    return true;
  }

  bool read_bytes(std::size_t count, std::span<const std::uint8_t>& out) {
    if (pos_ + count > wire_.size()) return fail("truncated rdata");
    out = wire_.subspan(pos_, count);
    pos_ += count;
    return true;
  }

  /// Reads a possibly compressed name starting at the current position.
  bool read_name(DomainName& out) {
    std::string text;
    std::size_t cursor = pos_;
    bool jumped = false;
    int jumps = 0;
    while (true) {
      if (cursor >= wire_.size()) return fail("truncated name");
      const std::uint8_t len = wire_[cursor];
      if ((len & 0xC0) == 0xC0) {
        if (cursor + 2 > wire_.size()) return fail("truncated compression pointer");
        const std::uint16_t target =
            static_cast<std::uint16_t>(((len & 0x3F) << 8) | wire_[cursor + 1]);
        if (target >= cursor) return fail("forward compression pointer");
        if (++jumps > kMaxCompressionJumps) return fail("compression pointer loop");
        if (!jumped) {
          pos_ = cursor + 2;
          jumped = true;
        }
        cursor = target;
        continue;
      }
      if ((len & 0xC0) != 0) return fail("reserved label type");
      if (len == 0) {
        if (!jumped) pos_ = cursor + 1;
        break;
      }
      if (cursor + 1 + len > wire_.size()) return fail("truncated label");
      if (!text.empty()) text.push_back('.');
      for (std::size_t i = 0; i < len; ++i) {
        text.push_back(static_cast<char>(wire_[cursor + 1 + i]));
      }
      if (text.size() > kMaxDecodedNameLength) return fail("name too long");
      cursor += 1 + len;
    }
    auto name = DomainName::from_string(text);
    if (!name) return fail("invalid name: " + text);
    out = *std::move(name);
    return true;
  }

 private:
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool decode_record(Decoder& dec, ResourceRecord& record) {
  if (!dec.read_name(record.name)) return false;
  std::uint16_t type_raw = 0;
  std::uint16_t klass = 0;
  std::uint16_t rdlength = 0;
  if (!dec.read_u16(type_raw) || !dec.read_u16(klass) || !dec.read_u32(record.ttl) ||
      !dec.read_u16(rdlength)) {
    return false;
  }
  if (static_cast<RecordType>(type_raw) == RecordType::OPT) {
    // CLASS is the UDP payload size, TTL the flags word.
    OptData opt;
    opt.udp_payload_size = klass;
    opt.extended_rcode = static_cast<std::uint8_t>(record.ttl >> 24);
    opt.version = static_cast<std::uint8_t>(record.ttl >> 16);
    opt.dnssec_ok = (record.ttl & 0x8000u) != 0;
    const std::size_t options_end = dec.position() + rdlength;
    while (dec.position() < options_end) {
      EdnsOption option;
      std::uint16_t length = 0;
      if (!dec.read_u16(option.code) || !dec.read_u16(length)) return false;
      std::span<const std::uint8_t> payload;
      if (!dec.read_bytes(length, payload)) return false;
      option.data.assign(payload.begin(), payload.end());
      opt.options.push_back(std::move(option));
    }
    if (dec.position() != options_end) return dec.fail("rdlength mismatch in OPT rdata");
    record.type = RecordType::OPT;
    record.ttl = 0;  // flags were consumed into OptData
    record.data = std::move(opt);
    return true;
  }
  if (klass != kClassIn) return dec.fail("unsupported CLASS");
  const std::size_t rdata_end = dec.position() + rdlength;

  switch (static_cast<RecordType>(type_raw)) {
    case RecordType::A: {
      std::span<const std::uint8_t> bytes;
      if (rdlength != 4 || !dec.read_bytes(4, bytes)) return dec.fail("bad A rdata");
      record.type = RecordType::A;
      record.data = IPv4Address::from_octets(bytes[0], bytes[1], bytes[2], bytes[3]);
      return true;
    }
    case RecordType::AAAA: {
      std::span<const std::uint8_t> bytes;
      if (rdlength != 16 || !dec.read_bytes(16, bytes)) return dec.fail("bad AAAA rdata");
      IPv6Address::Bytes address{};
      std::copy(bytes.begin(), bytes.end(), address.begin());
      record.type = RecordType::AAAA;
      record.data = IPv6Address(address);
      return true;
    }
    case RecordType::CNAME:
    case RecordType::NS:
    case RecordType::PTR: {
      DomainName target;
      if (!dec.read_name(target)) return false;
      if (dec.position() != rdata_end) return dec.fail("rdlength mismatch in name rdata");
      record.type = static_cast<RecordType>(type_raw);
      record.data = std::move(target);
      return true;
    }
    case RecordType::MX: {
      MxData mx;
      if (!dec.read_u16(mx.preference) || !dec.read_name(mx.exchange)) return false;
      if (dec.position() != rdata_end) return dec.fail("rdlength mismatch in MX rdata");
      record.type = RecordType::MX;
      record.data = std::move(mx);
      return true;
    }
    case RecordType::SOA: {
      SoaData soa;
      if (!dec.read_name(soa.mname) || !dec.read_name(soa.rname) ||
          !dec.read_u32(soa.serial) || !dec.read_u32(soa.refresh) ||
          !dec.read_u32(soa.retry) || !dec.read_u32(soa.expire) ||
          !dec.read_u32(soa.minimum)) {
        return false;
      }
      if (dec.position() != rdata_end) return dec.fail("rdlength mismatch in SOA rdata");
      record.type = RecordType::SOA;
      record.data = std::move(soa);
      return true;
    }
    case RecordType::OPT:
      return dec.fail("OPT handled before the typed switch");  // unreachable
    case RecordType::TXT: {
      TxtData txt;
      while (dec.position() < rdata_end) {
        std::uint8_t chunk_len = 0;
        if (!dec.read_u8(chunk_len)) return false;
        std::span<const std::uint8_t> chunk;
        if (!dec.read_bytes(chunk_len, chunk)) return false;
        txt.text.append(chunk.begin(), chunk.end());
      }
      if (dec.position() != rdata_end) return dec.fail("rdlength mismatch in TXT rdata");
      record.type = RecordType::TXT;
      record.data = std::move(txt);
      return true;
    }
  }
  return dec.fail("unknown record type " + std::to_string(type_raw));
}

}  // namespace

std::string_view record_type_name(RecordType type) noexcept {
  switch (type) {
    case RecordType::A: return "A";
    case RecordType::NS: return "NS";
    case RecordType::CNAME: return "CNAME";
    case RecordType::SOA: return "SOA";
    case RecordType::PTR: return "PTR";
    case RecordType::OPT: return "OPT";
    case RecordType::MX: return "MX";
    case RecordType::TXT: return "TXT";
    case RecordType::AAAA: return "AAAA";
  }
  return "?";
}

std::vector<std::uint8_t> encode_message(const Message& message) {
  Encoder enc;
  enc.put_u16(message.header.id);
  const std::uint16_t flags = static_cast<std::uint16_t>(
      (message.header.qr ? 0x8000u : 0u) | ((message.header.opcode & 0xFu) << 11) |
      (message.header.aa ? 0x0400u : 0u) | (message.header.tc ? 0x0200u : 0u) |
      (message.header.rd ? 0x0100u : 0u) | (message.header.ra ? 0x0080u : 0u) |
      (message.header.rcode & 0xFu));
  enc.put_u16(flags);
  enc.put_u16(static_cast<std::uint16_t>(message.questions.size()));
  enc.put_u16(static_cast<std::uint16_t>(message.answers.size()));
  enc.put_u16(static_cast<std::uint16_t>(message.authorities.size()));
  enc.put_u16(static_cast<std::uint16_t>(message.additionals.size()));

  for (const auto& question : message.questions) {
    enc.put_name(question.name);
    enc.put_u16(static_cast<std::uint16_t>(question.type));
    enc.put_u16(kClassIn);
  }
  for (const auto* section : {&message.answers, &message.authorities, &message.additionals}) {
    for (const auto& record : *section) encode_record(enc, record);
  }
  return std::move(enc).take();
}

std::optional<Message> decode_message(std::span<const std::uint8_t> wire, std::string* error) {
  Decoder dec(wire);
  Message message;
  const auto report = [&](const char* fallback) -> std::optional<Message> {
    if (error != nullptr) *error = dec.error().empty() ? fallback : dec.error();
    return std::nullopt;
  };

  std::uint16_t flags = 0;
  std::uint16_t qdcount = 0;
  std::uint16_t ancount = 0;
  std::uint16_t nscount = 0;
  std::uint16_t arcount = 0;
  if (!dec.read_u16(message.header.id) || !dec.read_u16(flags) || !dec.read_u16(qdcount) ||
      !dec.read_u16(ancount) || !dec.read_u16(nscount) || !dec.read_u16(arcount)) {
    return report("truncated header");
  }
  message.header.qr = (flags & 0x8000u) != 0;
  message.header.opcode = static_cast<std::uint8_t>((flags >> 11) & 0xFu);
  message.header.aa = (flags & 0x0400u) != 0;
  message.header.tc = (flags & 0x0200u) != 0;
  message.header.rd = (flags & 0x0100u) != 0;
  message.header.ra = (flags & 0x0080u) != 0;
  message.header.rcode = static_cast<std::uint8_t>(flags & 0xFu);

  for (int i = 0; i < qdcount; ++i) {
    Question question;
    std::uint16_t type_raw = 0;
    std::uint16_t klass = 0;
    if (!dec.read_name(question.name) || !dec.read_u16(type_raw) || !dec.read_u16(klass)) {
      return report("truncated question");
    }
    if (klass != kClassIn) return report("unsupported question CLASS");
    question.type = static_cast<RecordType>(type_raw);
    message.questions.push_back(std::move(question));
  }

  const auto read_section = [&](int count, std::vector<ResourceRecord>& section) {
    for (int i = 0; i < count; ++i) {
      ResourceRecord record;
      if (!decode_record(dec, record)) return false;
      section.push_back(std::move(record));
    }
    return true;
  };
  if (!read_section(ancount, message.answers) || !read_section(nscount, message.authorities) ||
      !read_section(arcount, message.additionals)) {
    return report("truncated records");
  }
  if (!dec.at_end()) return report("trailing bytes after message");
  return message;
}

}  // namespace sp::dns
