// DNS resource record model: the record types the sibling-prefix pipeline
// needs (A, AAAA, CNAME) plus NS/MX/TXT for realistic zones and wire-codec
// coverage.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "dns/name.h"
#include "netbase/ip.h"

namespace sp::dns {

enum class RecordType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  OPT = 41,  // EDNS(0) pseudo-RR, RFC 6891
};

[[nodiscard]] std::string_view record_type_name(RecordType type) noexcept;

/// DNS CLASS; only IN is modeled.
inline constexpr std::uint16_t kClassIn = 1;

/// SOA RDATA (RFC 1035 section 3.3.13); returned in the authority
/// section of negative answers (RFC 2308).
struct SoaData {
  DomainName mname;   // primary name server
  DomainName rname;   // responsible mailbox, encoded as a name
  std::uint32_t serial = 0;
  std::uint32_t refresh = 7200;
  std::uint32_t retry = 900;
  std::uint32_t expire = 1209600;
  std::uint32_t minimum = 300;
  friend auto operator<=>(const SoaData&, const SoaData&) = default;
};

struct MxData {
  std::uint16_t preference = 0;
  DomainName exchange;
  friend auto operator<=>(const MxData&, const MxData&) = default;
};

struct TxtData {
  std::string text;
  friend auto operator<=>(const TxtData&, const TxtData&) = default;
};

/// One EDNS option (RFC 6891 section 6.1.2).
struct EdnsOption {
  std::uint16_t code = 0;
  std::vector<std::uint8_t> data;
  friend auto operator<=>(const EdnsOption&, const EdnsOption&) = default;
};

/// EDNS(0) OPT pseudo-record payload. On the wire the requestor's UDP
/// payload size rides in the CLASS field and the extended rcode/version/DO
/// flag in the TTL field; the codec maps them here.
struct OptData {
  std::uint16_t udp_payload_size = 1232;
  std::uint8_t extended_rcode = 0;
  std::uint8_t version = 0;
  bool dnssec_ok = false;
  std::vector<EdnsOption> options;
  friend auto operator<=>(const OptData&, const OptData&) = default;
};

/// The typed RDATA payload of a record.
using RData = std::variant<IPv4Address,  // A
                           IPv6Address,  // AAAA
                           DomainName,   // CNAME / NS target
                           MxData,       // MX
                           TxtData,      // TXT
                           SoaData,      // SOA
                           OptData>;     // OPT (EDNS)

struct ResourceRecord {
  DomainName name;
  RecordType type = RecordType::A;
  std::uint32_t ttl = 300;
  RData data;

  [[nodiscard]] static ResourceRecord a(DomainName name, IPv4Address address,
                                        std::uint32_t ttl = 300) {
    return {std::move(name), RecordType::A, ttl, address};
  }
  [[nodiscard]] static ResourceRecord aaaa(DomainName name, IPv6Address address,
                                           std::uint32_t ttl = 300) {
    return {std::move(name), RecordType::AAAA, ttl, address};
  }
  [[nodiscard]] static ResourceRecord cname(DomainName name, DomainName target,
                                            std::uint32_t ttl = 300) {
    return {std::move(name), RecordType::CNAME, ttl, std::move(target)};
  }
  [[nodiscard]] static ResourceRecord ns(DomainName name, DomainName server,
                                         std::uint32_t ttl = 86400) {
    return {std::move(name), RecordType::NS, ttl, std::move(server)};
  }
  [[nodiscard]] static ResourceRecord mx(DomainName name, std::uint16_t preference,
                                         DomainName exchange, std::uint32_t ttl = 3600) {
    return {std::move(name), RecordType::MX, ttl, MxData{preference, std::move(exchange)}};
  }
  [[nodiscard]] static ResourceRecord txt(DomainName name, std::string text,
                                          std::uint32_t ttl = 3600) {
    return {std::move(name), RecordType::TXT, ttl, TxtData{std::move(text)}};
  }
  [[nodiscard]] static ResourceRecord soa(DomainName zone, SoaData data,
                                          std::uint32_t ttl = 3600) {
    return {std::move(zone), RecordType::SOA, ttl, std::move(data)};
  }
  [[nodiscard]] static ResourceRecord ptr(DomainName reverse_name, DomainName target,
                                          std::uint32_t ttl = 3600) {
    return {std::move(reverse_name), RecordType::PTR, ttl, std::move(target)};
  }
  [[nodiscard]] static ResourceRecord opt(OptData data) {
    return {DomainName(), RecordType::OPT, 0, std::move(data)};
  }

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) = default;
};

}  // namespace sp::dns
