// RFC 1035 section 5 master-file (zone file) parsing and writing.
//
// Supports the constructs real zones use: $ORIGIN and $TTL directives,
// '@' for the origin, relative owner names, owner inheritance from the
// previous record, ';' comments, parenthesized continuation lines (SOA),
// quoted TXT strings, and the record types the library models
// (A, AAAA, CNAME, NS, PTR, MX, TXT, SOA). CLASS is optional and must be
// IN when present.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "dns/zone.h"

namespace sp::dns {

struct ZoneParseError {
  std::size_t line = 0;  // 1-based line of the failing record
  std::string message;
};

struct ZoneParseResult {
  std::size_t records_added = 0;
  std::optional<ZoneParseError> error;  // set when parsing stopped early

  [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

/// Parses master-file text into `zones`. Stops at the first malformed
/// record; records before the error are kept (and counted).
[[nodiscard]] ZoneParseResult parse_zone_text(std::string_view text, ZoneDatabase& zones,
                                              const DomainName& default_origin = {});

/// Renders every record of `zones` as master-file text (absolute names,
/// one record per line, sorted by owner name).
[[nodiscard]] std::string write_zone_text(const ZoneDatabase& zones);

/// File convenience wrappers.
[[nodiscard]] ZoneParseResult parse_zone_file(const std::string& path, ZoneDatabase& zones,
                                              const DomainName& default_origin = {});
[[nodiscard]] bool write_zone_file(const std::string& path, const ZoneDatabase& zones);

}  // namespace sp::dns
