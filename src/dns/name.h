// Domain name value type.
//
// Names are stored in canonical form: lowercase, no trailing dot, labels
// validated against RFC 1035 length limits (63 octets per label, 253 total
// presentation length). Comparison and hashing are case-insensitive by
// construction.
#pragma once

#include <compare>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/ip.h"

namespace sp::dns {

class DomainName {
 public:
  /// The empty (root) name.
  DomainName() = default;

  /// Parses presentation format ("www.Example.ORG." or "www.example.org").
  /// Returns nullopt when any label is empty, too long, contains characters
  /// outside [a-z0-9_-], starts/ends with '-', or the name exceeds 253
  /// octets.
  [[nodiscard]] static std::optional<DomainName> from_string(std::string_view text);

  /// Parses or throws std::invalid_argument; for literals in tests/examples.
  [[nodiscard]] static DomainName must_parse(std::string_view text);

  [[nodiscard]] bool is_root() const noexcept { return text_.empty(); }

  /// Canonical lowercase presentation form without trailing dot;
  /// the root name renders as ".".
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  [[nodiscard]] std::string to_string() const { return is_root() ? "." : text_; }

  /// Labels from leftmost to rightmost ("www", "example", "org").
  [[nodiscard]] std::vector<std::string_view> labels() const;

  [[nodiscard]] std::size_t label_count() const noexcept;

  /// The name with the leftmost label removed ("example.org"); root for a
  /// single-label name.
  [[nodiscard]] DomainName parent() const;

  /// True when this name equals `ancestor` or is underneath it.
  /// Every name is under the root.
  [[nodiscard]] bool is_subdomain_of(const DomainName& ancestor) const noexcept;

  /// The rightmost label ("org"), or empty for the root.
  [[nodiscard]] std::string_view tld() const noexcept;

  friend auto operator<=>(const DomainName&, const DomainName&) = default;

 private:
  explicit DomainName(std::string canonical) : text_(std::move(canonical)) {}

  std::string text_;
};

/// Reverse-DNS name of an address: dotted-quad octets under in-addr.arpa
/// for IPv4 (RFC 1035 section 3.5), reversed nibbles under ip6.arpa for
/// IPv6 (RFC 3596 section 2.5).
[[nodiscard]] DomainName reverse_name(const IPAddress& address);

}  // namespace sp::dns

template <>
struct std::hash<sp::dns::DomainName> {
  std::size_t operator()(const sp::dns::DomainName& name) const noexcept {
    return std::hash<std::string>{}(name.text());
  }
};
