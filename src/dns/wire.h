// RFC 1035 DNS message wire-format codec with name compression.
//
// The encoder compresses names by pointing at previously emitted suffixes
// (RFC 1035 section 4.1.4); the decoder follows compression pointers with
// strict backward-only and jump-count guards, so malformed or malicious
// messages cannot loop it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/record.h"

namespace sp::dns {

struct Header {
  std::uint16_t id = 0;
  bool qr = false;           // response flag
  std::uint8_t opcode = 0;   // QUERY
  bool aa = false;           // authoritative answer
  bool tc = false;           // truncation
  bool rd = true;            // recursion desired
  bool ra = false;           // recursion available
  std::uint8_t rcode = 0;    // NOERROR

  friend bool operator==(const Header&, const Header&) = default;
};

struct Question {
  DomainName name;
  RecordType type = RecordType::A;

  friend bool operator==(const Question&, const Question&) = default;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Serializes a message; names in questions and RDATA are compressed.
[[nodiscard]] std::vector<std::uint8_t> encode_message(const Message& message);

/// Parses a wire-format message. Returns nullopt on any structural error
/// (truncation, bad pointers, unknown record type, trailing bytes) and, when
/// `error` is non-null, stores a human-readable reason.
[[nodiscard]] std::optional<Message> decode_message(std::span<const std::uint8_t> wire,
                                                    std::string* error = nullptr);

}  // namespace sp::dns
