// Zone database and resolver.
//
// ZoneDatabase is an authoritative record store playing the role of the
// Internet's DNS in the synthetic pipeline. Its resolver follows CNAME
// chains (with loop and depth guards) exactly like step 1 of the paper's
// methodology: the *response* name at the end of the chain, not the queried
// name, identifies the service. `serve` answers wire-format queries so the
// codec and the resolver can be exercised together.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/record.h"
#include "dns/wire.h"

namespace sp::dns {

/// Result of resolving one domain through the CNAME chain.
struct ResolutionResult {
  DomainName queried;
  /// Final name at the end of the CNAME chain (equals `queried` when the
  /// name has no CNAME). This is the identity used by sibling detection.
  DomainName response_name;
  /// Intermediate CNAME targets in order (excluding `queried`).
  std::vector<DomainName> cname_chain;
  std::vector<IPv4Address> v4;
  std::vector<IPv6Address> v6;
  bool cname_loop = false;
  bool chain_too_long = false;

  [[nodiscard]] bool has_v4() const noexcept { return !v4.empty(); }
  [[nodiscard]] bool has_v6() const noexcept { return !v6.empty(); }
  [[nodiscard]] bool dual_stack() const noexcept { return has_v4() && has_v6(); }
};

class ZoneDatabase {
 public:
  /// Maximum CNAME chain length followed before giving up.
  static constexpr std::size_t kMaxCnameDepth = 8;

  void add(ResourceRecord record);

  /// All records owned by `name` (any type); empty when unknown.
  [[nodiscard]] const std::vector<ResourceRecord>& records(const DomainName& name) const;

  /// Records of one type owned by `name`.
  [[nodiscard]] std::vector<ResourceRecord> records(const DomainName& name,
                                                    RecordType type) const;

  [[nodiscard]] std::size_t record_count() const noexcept { return record_count_; }
  [[nodiscard]] std::size_t name_count() const noexcept { return by_name_.size(); }

  /// Visits every record, grouped by owner name in sorted name order.
  void visit_records(const std::function<void(const ResourceRecord&)>& visit) const;

  /// Resolves `query` for both A and AAAA, following CNAMEs. Addresses in
  /// the result are sorted and deduplicated.
  [[nodiscard]] ResolutionResult resolve(const DomainName& query) const;

  /// Answers a wire-level query message: echoes the id, sets QR/AA, copies
  /// the question, and fills the answer section with the CNAME chain plus
  /// the terminal address records of the requested type. Unknown names get
  /// rcode NXDOMAIN (3).
  [[nodiscard]] Message serve(const Message& query) const;

 private:
  std::unordered_map<DomainName, std::vector<ResourceRecord>> by_name_;
  std::size_t record_count_ = 0;
};

}  // namespace sp::dns
