// LookupEngine — point queries against a loaded sibling database.
//
// The operational question the published lists exist to answer is a point
// lookup: "given this IPv4 (or IPv6) address or prefix, what is its
// sibling prefix on the other family, with what confidence?" The engine
// builds two in-memory indexes over a SiblingDB snapshot:
//
//   * a DIR-24-8 FlatLpm4 over the v4 prefixes — O(1) per v4 address, the
//     hot path for traffic-driven consumers (blocklist transfer, policy
//     audit);
//   * a Patricia trie over both families — v6 address lookups and
//     longest-prefix-match queries for whole prefixes.
//
// When several records share one matched prefix (best-match ties), the
// engine answers with the highest-similarity record, breaking ties by
// file order, so answers are deterministic for a given snapshot.
//
// query_many shards a batch over a core::WorkerPool (the PR-1 detection
// pool). The engine itself is immutable after construction and safe for
// concurrent query() calls; it holds a pointer into the SiblingDB it was
// built from, which must outlive it (SiblingService bundles the two).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/worker_pool.h"
#include "obs/metrics.h"
#include "serve/sibdb.h"
#include "trie/flat_lpm.h"
#include "trie/prefix_trie.h"

namespace sp::serve {

/// One lookup result: the stored prefix that matched the query, its
/// sibling on the other family, and the detection evidence.
struct SiblingAnswer {
  Prefix matched;  // most specific stored prefix covering the query
  Prefix sibling;  // counterpart prefix of the answering record
  double similarity = 0.0;
  std::uint32_t shared_domains = 0;
  std::uint32_t v4_domain_count = 0;
  std::uint32_t v6_domain_count = 0;

  [[nodiscard]] friend bool operator==(const SiblingAnswer&, const SiblingAnswer&) = default;
};

class LookupEngine {
 public:
  /// Indexes `db`; the database must outlive the engine.
  explicit LookupEngine(const SiblingDB& db);

  LookupEngine(LookupEngine&&) noexcept = default;
  LookupEngine& operator=(LookupEngine&&) noexcept = default;
  LookupEngine(const LookupEngine&) = delete;
  LookupEngine& operator=(const LookupEngine&) = delete;

  /// Longest-prefix match for a single address of either family.
  [[nodiscard]] std::optional<SiblingAnswer> query(const IPAddress& address) const;

  /// Longest-prefix match for a whole prefix: the most specific stored
  /// prefix containing `prefix` (an exact match qualifies).
  [[nodiscard]] std::optional<SiblingAnswer> query(const Prefix& prefix) const;

  /// Batched lookup; answers[i] corresponds to addresses[i]. With a pool,
  /// the batch is sharded across its workers; without one it runs inline.
  [[nodiscard]] std::vector<std::optional<SiblingAnswer>> query_many(
      std::span<const IPAddress> addresses, core::WorkerPool* pool = nullptr) const;

  /// Distinct indexed prefixes per family.
  [[nodiscard]] std::size_t v4_prefix_count() const noexcept { return v4_count_; }
  [[nodiscard]] std::size_t v6_prefix_count() const noexcept { return v6_count_; }

 private:
  [[nodiscard]] SiblingAnswer answer_from(std::uint32_t record, Family query_family) const;

  const SiblingDB* db_;
  FlatLpm4<std::uint32_t> v4_lpm_;      // v4 prefix -> representative record
  PrefixTrie<std::uint32_t> trie_;      // both families -> representative record
  std::size_t v4_count_ = 0;
  std::size_t v6_count_ = 0;

  // Global-registry batch metrics, one update per query_many call (the
  // per-address cost stays a plain loop); a trace span covers each batch.
  obs::Histogram batch_us_;      // serve.batch_us
  obs::Counter batch_queries_;   // serve.batch_queries
};

}  // namespace sp::serve
