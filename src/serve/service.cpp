#include "serve/service.h"

#include <algorithm>

#include "lint/lock_order.h"

// sp-lint-file: atomics-ok(statistics counters; see the rationale in
// service.h — relaxed is exact when quiesced and nothing orders on them)

namespace sp::serve {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

}  // namespace

SiblingService::SiblingService(unsigned threads)
    : pool_(threads),
      query_us_(obs::MetricsRegistry::global().histogram("serve.query_us")),
      batch_us_(obs::MetricsRegistry::global().histogram("serve.batch_us")) {}

bool SiblingService::load(const std::string& path, std::string* error) {
  auto db = SiblingDB::load(path, error);
  if (!db) return false;
  // Build the replacement off to the side; readers keep serving the old
  // snapshot until the single pointer swap below.
  const std::uint64_t generation = next_generation_.fetch_add(1, std::memory_order_relaxed);
  auto snapshot = std::make_shared<const Snapshot>(std::move(*db), path, generation);
  {
    std::lock_guard lock(current_mutex_);
    [[maybe_unused]] const lint::LockOrderScope held("serve.service.current_mutex");
    if (current_) {
      // Retire the outgoing snapshot itself, not a captured tally:
      // batches that pinned it before the swap keep counting into its
      // atomics, so capturing numbers here would lose their counts.
      retired_.push_back(current_);
    }
    // A retired snapshot is only needed for its tally; its mmap and
    // lookup tables are not. Capture every no-longer-pinned retiree
    // (use_count()==1 is stable under current_mutex_: new pins can only
    // come from current_) into a light stats record and free the heavy
    // snapshot right away. A still-pinned entry's tally may still grow,
    // so it stays as a snapshot until a later reload finds it unpinned.
    for (auto it = retired_.begin(); it != retired_.end();) {
      if (it->use_count() == 1) {
        retired_stats_.push_back({(*it)->generation,
                                  (*it)->served_queries.load(std::memory_order_relaxed),
                                  (*it)->served_hits.load(std::memory_order_relaxed)});
        it = retired_.erase(it);
      } else {
        ++it;
      }
    }
    // A long-pinned snapshot can outlive younger retirees and capture
    // late; keep the window sorted so compaction folds oldest-first.
    std::sort(retired_stats_.begin(), retired_stats_.end(),
              [](const GenerationStats& a, const GenerationStats& b) {
                return a.generation < b.generation;
              });
    // Keep the stats window bounded under reload churn: fold the oldest
    // captured tallies into the cumulative bucket once the cap is hit.
    while (retired_stats_.size() + retired_.size() > kRetiredGenerationCap &&
           !retired_stats_.empty()) {
      compacted_.queries += retired_stats_.front().queries;
      compacted_.hits += retired_stats_.front().hits;
      ++compacted_count_;
      retired_stats_.erase(retired_stats_.begin());
    }
    current_ = std::move(snapshot);
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SiblingService::reload(std::string* error) {
  const auto snap = snapshot();
  if (!snap) {
    if (error != nullptr) *error = "nothing loaded yet; use load(path) first";
    return false;
  }
  return load(snap->path, error);
}

std::shared_ptr<const Snapshot> SiblingService::snapshot() const {
  std::lock_guard lock(current_mutex_);
  [[maybe_unused]] const lint::LockOrderScope held("serve.service.current_mutex");
  return current_;
}

void SiblingService::count_query(bool hit, std::chrono::steady_clock::time_point start) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t ns = elapsed_ns(start);
  query_ns_.fetch_add(ns, std::memory_order_relaxed);
  query_us_.record(ns / 1000);
}

std::optional<SiblingAnswer> SiblingService::query(const IPAddress& address) {
  const auto start = std::chrono::steady_clock::now();
  const auto snap = snapshot();
  std::optional<SiblingAnswer> answer;
  if (snap) {
    answer = snap->engine.query(address);
    snap->count(1, answer.has_value() ? 1 : 0);
  }
  count_query(answer.has_value(), start);
  return answer;
}

std::optional<SiblingAnswer> SiblingService::query(const Prefix& prefix) {
  const auto start = std::chrono::steady_clock::now();
  const auto snap = snapshot();
  std::optional<SiblingAnswer> answer;
  if (snap) {
    answer = snap->engine.query(prefix);
    snap->count(1, answer.has_value() ? 1 : 0);
  }
  count_query(answer.has_value(), start);
  return answer;
}

BatchResult SiblingService::query_many(std::span<const IPAddress> addresses) {
  const auto start = std::chrono::steady_clock::now();
  BatchResult result;
  result.snapshot = snapshot();  // pin: the whole batch answers from here
  if (result.snapshot) {
    std::lock_guard lock(pool_mutex_);
    [[maybe_unused]] const lint::LockOrderScope held("serve.service.pool_mutex");
    result.answers = result.snapshot->engine.query_many(addresses, &pool_);
  } else {
    result.answers.assign(addresses.size(), std::nullopt);
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_queries_.fetch_add(addresses.size(), std::memory_order_relaxed);
  std::uint64_t hit_count = 0;
  for (const auto& answer : result.answers) hit_count += answer.has_value() ? 1 : 0;
  batch_hits_.fetch_add(hit_count, std::memory_order_relaxed);
  batch_ns_.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
  if (result.snapshot) result.snapshot->count(addresses.size(), hit_count);
  return result;
}

ServiceStats SiblingService::stats() const {
  ServiceStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  out.batch_hits = batch_hits_.load(std::memory_order_relaxed);
  out.reloads = reloads_.load(std::memory_order_relaxed);
  out.query_ms_total = static_cast<double>(query_ns_.load(std::memory_order_relaxed)) / 1e6;
  out.batch_ms_total = static_cast<double>(batch_ns_.load(std::memory_order_relaxed)) / 1e6;

  const auto query_hist = obs::HistogramSnapshot::of(query_us_);
  out.query_p50_us = query_hist.quantile(0.50);
  out.query_p90_us = query_hist.quantile(0.90);
  out.query_p99_us = query_hist.quantile(0.99);
  out.query_max_us = query_hist.max;
  const auto batch_hist = obs::HistogramSnapshot::of(batch_us_);
  out.batch_p50_us = batch_hist.quantile(0.50);
  out.batch_p90_us = batch_hist.quantile(0.90);
  out.batch_p99_us = batch_hist.quantile(0.99);
  out.batch_max_us = batch_hist.max;

  std::shared_ptr<const Snapshot> snap;
  {
    std::lock_guard lock(current_mutex_);
    [[maybe_unused]] const lint::LockOrderScope held("serve.service.current_mutex");
    snap = current_;
    out.generations.reserve(retired_stats_.size() + retired_.size() + 1);
    out.generations.insert(out.generations.end(), retired_stats_.begin(),
                           retired_stats_.end());
    for (const auto& retired : retired_) {
      out.generations.push_back({retired->generation,
                                 retired->served_queries.load(std::memory_order_relaxed),
                                 retired->served_hits.load(std::memory_order_relaxed)});
    }
    // Still-pinned retirees can be older than captured records.
    std::sort(out.generations.begin(), out.generations.end(),
              [](const GenerationStats& a, const GenerationStats& b) {
                return a.generation < b.generation;
              });
    out.compacted = compacted_;
    out.compacted_generations = compacted_count_;
  }
  out.generation = snap ? snap->generation : 0;
  if (snap) {
    out.generations.push_back({snap->generation,
                               snap->served_queries.load(std::memory_order_relaxed),
                               snap->served_hits.load(std::memory_order_relaxed)});
  }
  return out;
}

}  // namespace sp::serve
