#include "serve/sibdb.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "core/sibling_list_io.h"
#include "obs/trace.h"

namespace sp::serve {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'S', 'I', 'B', 'D', 'B', '\x01'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint64_t kHeaderBytes = 128;

// The on-disk header. Field order is the file layout; everything is
// little-endian on the platforms this targets (the endian_tag rejects a
// mismatched reader).
struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint64_t header_bytes;
  std::uint64_t file_bytes;
  std::uint64_t pair_count;
  std::uint64_t checksum;  // FNV-1a64 over the file with this field zeroed
  std::uint64_t off_v4_addr;
  std::uint64_t off_v4_len;
  std::uint64_t off_v6_addr;
  std::uint64_t off_v6_len;
  std::uint64_t off_similarity;
  std::uint64_t off_shared;
  std::uint64_t off_v4_count;
  std::uint64_t off_v6_count;
  std::uint64_t off_pool;
  std::uint64_t pool_bytes;
};
static_assert(sizeof(Header) == kHeaderBytes, "sibdb header must stay 128 bytes");

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size, std::uint64_t hash) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001B3ull;
  }
  return hash;
}

/// Checksum of a whole file image with the header's checksum field zeroed.
std::uint64_t file_checksum(const std::uint8_t* data, std::size_t size) {
  constexpr std::uint64_t kBasis = 0xCBF29CE484222325ull;
  const std::size_t checksum_offset = offsetof(Header, checksum);
  std::uint64_t hash = fnv1a64(data, checksum_offset, kBasis);
  const std::uint8_t zeros[sizeof(std::uint64_t)] = {};
  hash = fnv1a64(zeros, sizeof zeros, hash);
  return fnv1a64(data + checksum_offset + sizeof(std::uint64_t),
                 size - checksum_offset - sizeof(std::uint64_t), hash);
}

constexpr std::uint64_t align8(std::uint64_t offset) { return (offset + 7) & ~std::uint64_t{7}; }

void fail(std::string* error, std::string_view reason) {
  if (error != nullptr) *error = reason;
}

/// True when the v6 network address has all bits past `length` zero.
bool v6_host_bits_zero(const std::uint8_t* bytes, unsigned length) {
  for (unsigned bit = length; bit < 128; ++bit) {
    if ((bytes[bit / 8] >> (7u - bit % 8u)) & 1u) return false;
  }
  return true;
}

}  // namespace

bool write_sibdb(const std::string& path, std::span<const core::SiblingPair> pairs,
                 std::string_view source_label) {
  const obs::ScopedSpan span("sibdb.write", "serve");
  const std::uint64_t n = pairs.size();
  Header header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kSibDbVersion;
  header.endian_tag = kEndianTag;
  header.header_bytes = kHeaderBytes;
  header.pair_count = n;

  std::uint64_t offset = kHeaderBytes;
  const auto place = [&offset](std::uint64_t bytes) {
    const std::uint64_t at = align8(offset);
    offset = at + bytes;
    return at;
  };
  header.off_v4_addr = place(n * sizeof(std::uint32_t));
  header.off_v4_len = place(n);
  header.off_v6_addr = place(n * 16);
  header.off_v6_len = place(n);
  header.off_similarity = place(n * sizeof(double));
  header.off_shared = place(n * sizeof(std::uint32_t));
  header.off_v4_count = place(n * sizeof(std::uint32_t));
  header.off_v6_count = place(n * sizeof(std::uint32_t));
  header.pool_bytes = source_label.size() + 1;  // NUL-terminated
  header.off_pool = place(header.pool_bytes);
  header.file_bytes = offset;

  std::vector<std::uint8_t> image(offset, 0);
  const auto put = [&image](std::uint64_t at, const void* data, std::size_t bytes) {
    std::memcpy(image.data() + at, data, bytes);
  };
  for (std::uint64_t i = 0; i < n; ++i) {
    const core::SiblingPair& pair = pairs[i];
    const std::uint32_t v4 = pair.v4.address().v4().value();
    const std::uint8_t v4_len = static_cast<std::uint8_t>(pair.v4.length());
    const std::uint8_t v6_len = static_cast<std::uint8_t>(pair.v6.length());
    put(header.off_v4_addr + i * 4, &v4, 4);
    put(header.off_v4_len + i, &v4_len, 1);
    put(header.off_v6_addr + i * 16, pair.v6.address().v6().bytes().data(), 16);
    put(header.off_v6_len + i, &v6_len, 1);
    put(header.off_similarity + i * 8, &pair.similarity, 8);
    put(header.off_shared + i * 4, &pair.shared_domains, 4);
    put(header.off_v4_count + i * 4, &pair.v4_domain_count, 4);
    put(header.off_v6_count + i * 4, &pair.v6_domain_count, 4);
  }
  put(header.off_pool, source_label.data(), source_label.size());
  put(0, &header, sizeof header);
  const std::uint64_t checksum = file_checksum(image.data(), image.size());
  put(offsetof(Header, checksum), &checksum, sizeof checksum);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  return static_cast<bool>(out);
}

bool convert_sibling_list(const std::string& csv_path, const std::string& sibdb_path,
                          std::string* error) {
  const obs::ScopedSpan span("sibdb.convert", "serve");
  core::SiblingListError csv_error;
  const auto pairs = core::read_sibling_list(csv_path, &csv_error);
  if (!pairs) {
    fail(error, "reading " + csv_path + ": " + csv_error.message +
                    (csv_error.line > 0 ? " (line " + std::to_string(csv_error.line) + ")" : ""));
    return false;
  }
  if (!write_sibdb(sibdb_path, *pairs, "converted from " + csv_path)) {
    fail(error, "writing " + sibdb_path + " failed");
    return false;
  }
  return true;
}

std::optional<SiblingDB> SiblingDB::load(const std::string& path, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail(error, "cannot stat " + path);
    return std::nullopt;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    fail(error, "file shorter than the sibdb header");
    return std::nullopt;
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) {
    fail(error, "mmap failed for " + path);
    return std::nullopt;
  }

  SiblingDB db;
  db.data_ = static_cast<const std::uint8_t*>(mapping);
  db.mapped_bytes_ = size;

  Header header{};
  std::memcpy(&header, db.data_, sizeof header);

  const auto reject = [&](std::string_view reason) {
    fail(error, std::string(reason));
    return std::optional<SiblingDB>{};
  };
  if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0) return reject("bad magic");
  if (header.version != kSibDbVersion) return reject("unsupported sibdb version");
  if (header.endian_tag != kEndianTag) return reject("endianness mismatch");
  if (header.header_bytes != kHeaderBytes) return reject("bad header size");
  if (header.file_bytes != size) return reject("declared size does not match the file");

  const std::uint64_t n = header.pair_count;
  const auto section_ok = [&](std::uint64_t offset, std::uint64_t element_bytes) {
    return offset % 8 == 0 && offset >= kHeaderBytes && offset <= size &&
           n <= (size - offset) / element_bytes;
  };
  if (!section_ok(header.off_v4_addr, 4) || !section_ok(header.off_v4_len, 1) ||
      !section_ok(header.off_v6_addr, 16) || !section_ok(header.off_v6_len, 1) ||
      !section_ok(header.off_similarity, 8) || !section_ok(header.off_shared, 4) ||
      !section_ok(header.off_v4_count, 4) || !section_ok(header.off_v6_count, 4)) {
    return reject("column section out of bounds");
  }
  if (header.off_pool % 8 != 0 || header.off_pool < kHeaderBytes || header.off_pool > size ||
      header.pool_bytes > size - header.off_pool) {
    return reject("string pool out of bounds");
  }
  if (header.pool_bytes > 0 && db.data_[header.off_pool + header.pool_bytes - 1] != 0) {
    return reject("string pool is not NUL-terminated");
  }
  if (file_checksum(db.data_, size) != header.checksum) return reject("checksum mismatch");

  db.pair_count_ = n;
  db.v4_addr_ = reinterpret_cast<const std::uint32_t*>(db.data_ + header.off_v4_addr);
  db.v4_len_ = db.data_ + header.off_v4_len;
  db.v6_addr_ = db.data_ + header.off_v6_addr;
  db.v6_len_ = db.data_ + header.off_v6_len;
  db.similarity_ = reinterpret_cast<const double*>(db.data_ + header.off_similarity);
  db.shared_ = reinterpret_cast<const std::uint32_t*>(db.data_ + header.off_shared);
  db.v4_count_ = reinterpret_cast<const std::uint32_t*>(db.data_ + header.off_v4_count);
  db.v6_count_ = reinterpret_cast<const std::uint32_t*>(db.data_ + header.off_v6_count);
  if (header.pool_bytes > 0) {
    db.source_label_ = reinterpret_cast<const char*>(db.data_ + header.off_pool);
  }

  // Per-record sanity: length in range, host bits zero. A record failing
  // this would make the lookup structures silently wrong, so the whole
  // file is rejected.
  for (std::uint64_t i = 0; i < n; ++i) {
    if (db.v4_len_[i] > 32 || db.v6_len_[i] > 128) return reject("prefix length out of range");
    const std::uint32_t v4 = db.v4_addr_[i];
    if (db.v4_len_[i] < 32 && (v4 & (0xFFFFFFFFu >> db.v4_len_[i])) != 0) {
      return reject("v4 prefix not canonical");
    }
    if (!v6_host_bits_zero(db.v6_addr_ + i * 16, db.v6_len_[i])) {
      return reject("v6 prefix not canonical");
    }
  }
  return db;
}

SiblingDB::SiblingDB(SiblingDB&& other) noexcept { *this = std::move(other); }

SiblingDB& SiblingDB::operator=(SiblingDB&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    pair_count_ = std::exchange(other.pair_count_, 0);
    v4_addr_ = other.v4_addr_;
    v4_len_ = other.v4_len_;
    v6_addr_ = other.v6_addr_;
    v6_len_ = other.v6_len_;
    similarity_ = other.similarity_;
    shared_ = other.shared_;
    v4_count_ = other.v4_count_;
    v6_count_ = other.v6_count_;
    source_label_ = other.source_label_;
  }
  return *this;
}

SiblingDB::~SiblingDB() { reset(); }

void SiblingDB::reset() noexcept {
  if (data_ != nullptr) {
    // sp-lint: mmap-safety-ok(munmap takes void* by signature; the
    // mapping is released here, never written)
    ::munmap(const_cast<std::uint8_t*>(data_), mapped_bytes_);
    data_ = nullptr;
    mapped_bytes_ = 0;
    pair_count_ = 0;
  }
}

Prefix SiblingDB::v4_prefix(std::size_t i) const noexcept {
  return Prefix::of(IPAddress(IPv4Address(v4_addr_[i])), v4_len_[i]);
}

Prefix SiblingDB::v6_prefix(std::size_t i) const noexcept {
  IPv6Address::Bytes bytes;
  std::memcpy(bytes.data(), v6_addr_ + i * 16, 16);
  return Prefix::of(IPAddress(IPv6Address(bytes)), v6_len_[i]);
}

double SiblingDB::similarity(std::size_t i) const noexcept { return similarity_[i]; }
std::uint32_t SiblingDB::shared_domains(std::size_t i) const noexcept { return shared_[i]; }
std::uint32_t SiblingDB::v4_domain_count(std::size_t i) const noexcept { return v4_count_[i]; }
std::uint32_t SiblingDB::v6_domain_count(std::size_t i) const noexcept { return v6_count_[i]; }

core::SiblingPair SiblingDB::pair(std::size_t i) const noexcept {
  core::SiblingPair pair;
  pair.v4 = v4_prefix(i);
  pair.v6 = v6_prefix(i);
  pair.similarity = similarity_[i];
  pair.shared_domains = shared_[i];
  pair.v4_domain_count = v4_count_[i];
  pair.v6_domain_count = v6_count_[i];
  return pair;
}

}  // namespace sp::serve
