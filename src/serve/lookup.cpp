#include "serve/lookup.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <unordered_map>

#include "obs/trace.h"

namespace sp::serve {

namespace {

/// Addresses claimed per atomic fetch in query_many; batches are cheap per
/// item, so chunks are larger than detection's.
constexpr std::size_t kBatchChunk = 256;

}  // namespace

LookupEngine::LookupEngine(const SiblingDB& db)
    : db_(&db),
      batch_us_(obs::MetricsRegistry::global().histogram("serve.batch_us")),
      batch_queries_(obs::MetricsRegistry::global().counter("serve.batch_queries")) {
  // Pick one representative record per distinct stored prefix: the
  // highest-similarity record, first-in-file on ties. The maps are
  // transient; the engine keeps only the flat table and the trie.
  std::unordered_map<Prefix, std::uint32_t> best_v4;
  std::unordered_map<Prefix, std::uint32_t> best_v6;
  best_v4.reserve(db.size());
  best_v6.reserve(db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto record = static_cast<std::uint32_t>(i);
    const auto consider = [&](std::unordered_map<Prefix, std::uint32_t>& best,
                              const Prefix& prefix) {
      const auto [it, inserted] = best.try_emplace(prefix, record);
      if (!inserted && db.similarity(record) > db.similarity(it->second)) {
        it->second = record;
      }
    };
    consider(best_v4, db.v4_prefix(i));
    consider(best_v6, db.v6_prefix(i));
  }
  v4_count_ = best_v4.size();
  v6_count_ = best_v6.size();
  for (const auto& [prefix, record] : best_v4) {
    v4_lpm_.insert(prefix, record);
    trie_.insert(prefix, record);
  }
  for (const auto& [prefix, record] : best_v6) trie_.insert(prefix, record);
}

SiblingAnswer LookupEngine::answer_from(std::uint32_t record, Family query_family) const {
  SiblingAnswer answer;
  const bool from_v4 = query_family == Family::v4;
  answer.matched = from_v4 ? db_->v4_prefix(record) : db_->v6_prefix(record);
  answer.sibling = from_v4 ? db_->v6_prefix(record) : db_->v4_prefix(record);
  answer.similarity = db_->similarity(record);
  answer.shared_domains = db_->shared_domains(record);
  answer.v4_domain_count = db_->v4_domain_count(record);
  answer.v6_domain_count = db_->v6_domain_count(record);
  return answer;
}

std::optional<SiblingAnswer> LookupEngine::query(const IPAddress& address) const {
  if (address.is_v4()) {
    const std::uint32_t* record = v4_lpm_.lookup(address.v4());
    if (record == nullptr) return std::nullopt;
    return answer_from(*record, Family::v4);
  }
  const auto hit = trie_.longest_match(address);
  if (!hit) return std::nullopt;
  return answer_from(*hit->second, Family::v6);
}

std::optional<SiblingAnswer> LookupEngine::query(const Prefix& prefix) const {
  const auto hit = trie_.longest_match(prefix);
  if (!hit) return std::nullopt;
  return answer_from(*hit->second, prefix.family());
}

std::vector<std::optional<SiblingAnswer>> LookupEngine::query_many(
    std::span<const IPAddress> addresses, core::WorkerPool* pool) const {
  const obs::ScopedSpan span("serve.query_many", "serve");
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::optional<SiblingAnswer>> answers(addresses.size());
  if (pool == nullptr || pool->thread_count() <= 1 || addresses.size() <= kBatchChunk) {
    for (std::size_t i = 0; i < addresses.size(); ++i) answers[i] = query(addresses[i]);
  } else {
    std::atomic<std::size_t> next{0};
    pool->run([&](unsigned worker) {
      const obs::ScopedSpan shard_span("serve.batch.shard" + std::to_string(worker),
                                       "serve");
      for (;;) {
        // sp-lint: atomics-ok(work-stealing chunk cursor; claims need no
        // ordering, only uniqueness — the pool join publishes results)
        const std::size_t begin = next.fetch_add(kBatchChunk, std::memory_order_relaxed);
        if (begin >= addresses.size()) return;
        const std::size_t end = std::min(addresses.size(), begin + kBatchChunk);
        for (std::size_t i = begin; i < end; ++i) answers[i] = query(addresses[i]);
      }
    });
  }
  batch_queries_.add(static_cast<std::int64_t>(addresses.size()));
  batch_us_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return answers;
}

}  // namespace sp::serve
