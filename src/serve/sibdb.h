// SiblingDB — the .sibdb binary snapshot format for published sibling
// prefix lists.
//
// The paper publishes its lists as CSV artifacts; every consumer then
// re-parses text and re-builds a longest-prefix-match structure per
// process. A .sibdb file is the same data laid out for serving: a
// versioned, checksummed, single-file columnar snapshot that is written
// once from a pair list and loaded with one mmap — zero per-record
// parsing on the read path, so a service restart or hot reload costs a
// page-table setup, not a parse.
//
// File layout (little-endian, all offsets from the start of the file;
// every section is 8-byte aligned; see DESIGN.md §3.2 for the byte-level
// table):
//
//   header (128 bytes)
//   v4_addr      pair_count × u32   IPv4 network address, host byte order
//   v4_len       pair_count × u8    prefix length, 0..32
//   v6_addr      pair_count × 16B   IPv6 network address, network order
//   v6_len       pair_count × u8    prefix length, 0..128
//   similarity   pair_count × f64   bit-exact detection output
//   shared       pair_count × u32   shared domain count
//   v4_count     pair_count × u32   v4-side domain count
//   v6_count     pair_count × u32   v6-side domain count
//   pool         NUL-terminated strings (pool[0] is the source label)
//
// The loader validates magic/version/endianness, the declared file size,
// every section's bounds and alignment, prefix canonicality (length in
// range, host bits zero), and an FNV-1a64 checksum over the whole file
// (checksum field zeroed), so truncated or corrupted files are rejected
// gracefully instead of crashing the reader.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "core/detect.h"
#include "netbase/prefix.h"

namespace sp::serve {

/// Current format version; bumped on any layout change.
inline constexpr std::uint32_t kSibDbVersion = 1;

/// Writes `pairs` as a .sibdb snapshot. `source_label` is a free-form
/// provenance string stored in the pool (e.g. the CSV the snapshot was
/// converted from). Returns false on I/O error.
[[nodiscard]] bool write_sibdb(const std::string& path, std::span<const core::SiblingPair> pairs,
                               std::string_view source_label = {});

/// Converts a published CSV list (core::read_sibling_list format) into a
/// .sibdb snapshot. On failure returns false and, when `error` is
/// non-null, stores a human-readable reason (including the offending CSV
/// line for parse failures).
[[nodiscard]] bool convert_sibling_list(const std::string& csv_path,
                                        const std::string& sibdb_path,
                                        std::string* error = nullptr);

/// A loaded, memory-mapped snapshot. Move-only; the mapping lives until
/// destruction. All accessors are zero-copy reads into the mapping.
class SiblingDB {
 public:
  /// Maps and validates `path`. Returns nullopt on any validation or I/O
  /// failure; when `error` is non-null it receives the reason.
  [[nodiscard]] static std::optional<SiblingDB> load(const std::string& path,
                                                     std::string* error = nullptr);

  SiblingDB(SiblingDB&& other) noexcept;
  SiblingDB& operator=(SiblingDB&& other) noexcept;
  SiblingDB(const SiblingDB&) = delete;
  SiblingDB& operator=(const SiblingDB&) = delete;
  ~SiblingDB();

  [[nodiscard]] std::size_t size() const noexcept { return pair_count_; }
  [[nodiscard]] bool empty() const noexcept { return pair_count_ == 0; }

  [[nodiscard]] Prefix v4_prefix(std::size_t i) const noexcept;
  [[nodiscard]] Prefix v6_prefix(std::size_t i) const noexcept;
  [[nodiscard]] double similarity(std::size_t i) const noexcept;
  [[nodiscard]] std::uint32_t shared_domains(std::size_t i) const noexcept;
  [[nodiscard]] std::uint32_t v4_domain_count(std::size_t i) const noexcept;
  [[nodiscard]] std::uint32_t v6_domain_count(std::size_t i) const noexcept;

  /// Materializes record `i` as the in-memory pair type.
  [[nodiscard]] core::SiblingPair pair(std::size_t i) const noexcept;

  /// Provenance string recorded at write time (may be empty).
  [[nodiscard]] std::string_view source_label() const noexcept { return source_label_; }

  /// Total bytes mapped.
  [[nodiscard]] std::size_t mapped_bytes() const noexcept { return mapped_bytes_; }

  /// The whole validated file image (header included). Lets consumers
  /// hash or re-serialize the exact on-disk bytes — e.g. the SPDL delta
  /// log binds its base_hash to these bytes rather than to a path that
  /// may be replaced underneath the mapping.
  [[nodiscard]] std::span<const std::uint8_t> raw_bytes() const noexcept {
    return {data_, mapped_bytes_};
  }

 private:
  SiblingDB() = default;
  void reset() noexcept;

  const std::uint8_t* data_ = nullptr;  // mmap base; nullptr when moved-from
  std::size_t mapped_bytes_ = 0;
  std::size_t pair_count_ = 0;
  const std::uint32_t* v4_addr_ = nullptr;
  const std::uint8_t* v4_len_ = nullptr;
  const std::uint8_t* v6_addr_ = nullptr;  // 16 bytes per record
  const std::uint8_t* v6_len_ = nullptr;
  const double* similarity_ = nullptr;
  const std::uint32_t* shared_ = nullptr;
  const std::uint32_t* v4_count_ = nullptr;
  const std::uint32_t* v6_count_ = nullptr;
  std::string_view source_label_;
};

}  // namespace sp::serve
