// SiblingService — concurrent lookup service over hot-swappable snapshots.
//
// A production consumer keeps answering queries while a newer published
// list is rolled out. The service holds the current snapshot behind an
// atomically swappable std::shared_ptr<const Snapshot> with RCU
// semantics:
//
//   * readers grab the shared_ptr under a briefly-held pointer lock
//     (copy only — never blocking on a reload's mmap or index build),
//     pin the snapshot for the duration of one query or one whole
//     batch, and drop the reference when done;
//   * load() builds the new snapshot entirely off to the side (mmap +
//     index build), then swaps the pointer in one assignment under the
//     same lock; the old snapshot is freed by whichever side drops the
//     last reference, so in-flight queries drain on the data they
//     started with and no answer is ever torn across two snapshots.
//
// The slot is a mutex-guarded shared_ptr rather than
// std::atomic<std::shared_ptr>: the critical section is a pointer copy,
// and the mutex is visible to ThreadSanitizer, which verifies the
// hot-reload race test (libstdc++'s lock-free _Sp_atomic spinlock is
// not modeled by TSan and reports false races).
//
// Every batch is answered from exactly one snapshot (BatchResult pins
// it), which is what the hot-reload race test asserts under TSan.
//
// Counters (queries, hits, misses, batches, reloads, latency sums) are
// relaxed atomics: cheap on the hot path, exact totals when quiesced.
//
// sp-lint-file: atomics-ok(independent statistics counters; relaxed is
// sound because nothing orders against them and exact totals are only
// read quiesced — see the file header above)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/worker_pool.h"
#include "obs/metrics.h"
#include "serve/lookup.h"
#include "serve/sibdb.h"

namespace sp::serve {

/// An immutable loaded database + its lookup indexes. The engine holds a
/// pointer into `db`, so the two live and die together. The two counters
/// are the snapshot's own serving tally (relaxed atomics, mutable so a
/// pinned const snapshot can count) — the source of the per-generation
/// hit rates in ServiceStats.
struct Snapshot {
  Snapshot(SiblingDB loaded, std::string source_path, std::uint64_t gen)
      : db(std::move(loaded)), engine(db), path(std::move(source_path)), generation(gen) {}

  void count(std::uint64_t queries, std::uint64_t hits) const noexcept {
    served_queries.fetch_add(queries, std::memory_order_relaxed);
    served_hits.fetch_add(hits, std::memory_order_relaxed);
  }

  SiblingDB db;
  LookupEngine engine;
  std::string path;
  std::uint64_t generation;  // monotonically increasing per successful load
  mutable std::atomic<std::uint64_t> served_queries{0};  // single + batch members
  mutable std::atomic<std::uint64_t> served_hits{0};
};

/// Serving tally of one snapshot generation (current or retired).
struct GenerationStats {
  std::uint64_t generation = 0;
  std::uint64_t queries = 0;  // single queries + batch members
  std::uint64_t hits = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return queries == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(queries);
  }
};

/// Retired generations kept individually before compaction folds the
/// oldest into the cumulative bucket (ServiceStats::compacted). 64 spans
/// two months of hourly reloads; beyond that only the aggregate is
/// interesting, and an unbounded vector would leak under reload churn.
inline constexpr std::size_t kRetiredGenerationCap = 64;

/// Point-in-time service counters.
struct ServiceStats {
  std::uint64_t queries = 0;  // single queries (batch members not included)
  std::uint64_t hits = 0;     // covered single queries
  std::uint64_t misses = 0;   // uncovered single queries (or no snapshot)
  std::uint64_t batches = 0;
  std::uint64_t batch_queries = 0;  // addresses across all batches
  std::uint64_t batch_hits = 0;
  std::uint64_t reloads = 0;  // successful load() calls
  double query_ms_total = 0.0;
  double batch_ms_total = 0.0;
  std::uint64_t generation = 0;  // 0 = nothing loaded yet

  // Latency distribution of single queries, estimated from the
  // serve.query_us log₂ histogram (obs/metrics.h); max is exact.
  double query_p50_us = 0.0;
  double query_p90_us = 0.0;
  double query_p99_us = 0.0;
  std::uint64_t query_max_us = 0;
  // Same for whole batches (serve.batch_us).
  double batch_p50_us = 0.0;
  double batch_p90_us = 0.0;
  double batch_p99_us = 0.0;
  std::uint64_t batch_max_us = 0;

  /// Hit rate per snapshot generation this service has served, oldest
  /// first; the last entry is the live generation. At most
  /// kRetiredGenerationCap retired entries plus the live one — older
  /// retirees are folded into `compacted`.
  std::vector<GenerationStats> generations;

  /// Cumulative tally of every retired generation older than the
  /// `generations` window (generation field is 0 — it is an aggregate).
  /// Invariant: compacted + generations sums to everything ever served.
  GenerationStats compacted;
  std::uint64_t compacted_generations = 0;  // how many were folded in
};

/// A batch answered from exactly one pinned snapshot.
struct BatchResult {
  std::shared_ptr<const Snapshot> snapshot;  // nullptr when nothing is loaded
  std::vector<std::optional<SiblingAnswer>> answers;
};

class SiblingService {
 public:
  /// `threads` sizes the batch worker pool (0 = hardware concurrency).
  explicit SiblingService(unsigned threads = 0);

  SiblingService(const SiblingService&) = delete;
  SiblingService& operator=(const SiblingService&) = delete;

  /// Loads `path` and atomically swaps it in. On failure the current
  /// snapshot stays live and `error` (when non-null) gets the reason.
  [[nodiscard]] bool load(const std::string& path, std::string* error = nullptr);

  /// Re-loads the file backing the current snapshot (the bare RELOAD of
  /// the serve CLI: the publisher replaced the .sibdb in place — e.g. a
  /// new campaign run — and the path is already known). Fails without
  /// touching the current snapshot when nothing is loaded yet or the
  /// file no longer validates.
  [[nodiscard]] bool reload(std::string* error = nullptr);

  /// The currently served snapshot (nullptr before the first load).
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const;

  /// Single-address lookup against the current snapshot.
  [[nodiscard]] std::optional<SiblingAnswer> query(const IPAddress& address);

  /// Prefix lookup (longest-prefix match) against the current snapshot.
  [[nodiscard]] std::optional<SiblingAnswer> query(const Prefix& prefix);

  /// Batched lookup pinned to one snapshot for the whole batch; sharded
  /// over the service's worker pool. Thread-safe: concurrent batches are
  /// serialized on the pool, concurrent load() needs no coordination.
  [[nodiscard]] BatchResult query_many(std::span<const IPAddress> addresses);

  [[nodiscard]] ServiceStats stats() const;

 private:
  void count_query(bool hit, std::chrono::steady_clock::time_point start);

  core::WorkerPool pool_;
  // lock-order: 10 serve.service.pool_mutex (WorkerPool::run is not
  // reentrant; held across the batch, so core.worker_pool.mutex nests
  // inside it)
  std::mutex pool_mutex_;
  std::atomic<std::uint64_t> next_generation_{1};
  // lock-order: 20 serve.service.current_mutex (guards the pointer
  // copy/swap and the retired tallies only; leaf — nothing is acquired
  // under it)
  mutable std::mutex current_mutex_;
  std::shared_ptr<const Snapshot> current_;

  std::atomic<std::uint64_t> queries_{0}, hits_{0}, misses_{0};
  std::atomic<std::uint64_t> batches_{0}, batch_queries_{0}, batch_hits_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> query_ns_{0}, batch_ns_{0};

  // Generations this service replaced (under current_mutex_) whose
  // tallies are not final yet: a batch that pinned the outgoing snapshot
  // before the swap keeps counting into its atomics after the swap, so a
  // retiree stays here *as a snapshot* only while something still pins
  // it (use_count()>1 — stable under current_mutex_: new pins can only
  // come from current_). The moment it is unpinned, its tally is
  // captured into retired_stats_ and the snapshot itself is freed:
  // holding whole snapshots for the stats window kept each one's mmap
  // and DIR-24-8 lookup tables (~80 MB) alive, and under reload churn
  // peak RSS grew by kRetiredGenerationCap × that (the soak harness's
  // RSS bound caught it). Which makes per-generation counts conserved
  // under reload-during-traffic — the invariant the net server's TSan
  // reload test asserts — while memory stays bounded by the transiently
  // pinned snapshots only.
  std::vector<std::shared_ptr<const Snapshot>> retired_;
  // Final tallies of unpinned retirees, sorted by generation; together
  // with retired_ at most kRetiredGenerationCap entries — overflow folds
  // oldest-first into compacted_.
  std::vector<GenerationStats> retired_stats_;
  GenerationStats compacted_;             // aggregate of folded retirees
  std::uint64_t compacted_count_ = 0;     // generations folded so far

  // Latency histograms in the process-wide registry (shared across
  // services by name — the registry is the fleet view; the per-service
  // exact counters above stay per-instance).
  obs::Histogram query_us_;  // serve.query_us, single queries
  obs::Histogram batch_us_;  // serve.batch_us, whole batches (LookupEngine records)
};

}  // namespace sp::serve
