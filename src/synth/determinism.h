// Deterministic hashing utilities for the synthetic model.
//
// Every random decision is a pure function of (seed, entity, purpose), so
// any snapshot or dataset can be regenerated independently and in any
// order — the generator never carries mutable RNG state across queries.
#pragma once

#include <cstdint>

namespace sp::synth {

/// SplitMix64 finalizer — fast, well-distributed 64-bit mixing.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Combines up to four values into one well-mixed word.
[[nodiscard]] constexpr std::uint64_t mix(std::uint64_t a, std::uint64_t b = 0,
                                          std::uint64_t c = 0, std::uint64_t d = 0) noexcept {
  return mix64(mix64(mix64(mix64(a) ^ b) ^ c) ^ d);
}

/// Uniform double in [0, 1).
[[nodiscard]] constexpr double unit(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
                                    std::uint64_t d = 0) noexcept {
  return static_cast<double>(mix(a, b, c, d) >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, bound).
[[nodiscard]] constexpr std::uint64_t pick(std::uint64_t bound, std::uint64_t a,
                                           std::uint64_t b = 0, std::uint64_t c = 0,
                                           std::uint64_t d = 0) noexcept {
  return bound == 0 ? 0 : mix(a, b, c, d) % bound;
}

}  // namespace sp::synth
