// The synthetic Internet: organizations, ASes, prefixes, domains, monthly
// DNS snapshots, MRT RIB dumps, RPKI ROAs, vantage-point probes and port
// scans — every dataset of the paper's section 2, generated at a
// configurable scale from one seed.
//
// Structure that matters for the experiments:
//  * Organizations own v4/v6 prefix sets; one org may register separate
//    v4/v6 ASNs (sibling ASes). ~52% of orgs are single-prefix, which
//    yields the paper's share of perfect-match default pairs.
//  * Within a multi-prefix org, a domain's IPv4 address is drawn from the
//    sub-block of its v4 prefix indexed by the domain's v6 prefix (and
//    vice versa): operators allocate services to subnets. This is the
//    structure SP-Tuner-MS exploits to lift Jaccard values by splitting.
//  * Address-agile CDNs (Cloudflare/Akamai profiles) re-home domains
//    between snapshots, depressing their pair similarity (Figure 17).
//  * A monitoring organization hosts one domain in dedicated prefixes of
//    many other orgs (the Site24x7 effect behind Figures 14/15).
//  * Routing is modeled as stable across the window; domain-level prefix
//    and address changes (Figure 7) are hosting moves, not BGP events.
//
// All data is a pure function of (config.seed, entity ids), so any month
// can be materialized independently.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asinfo/as_org.h"
#include "asinfo/asdb.h"
#include "asinfo/cdn_hg.h"
#include "bgp/rib.h"
#include "core/groundtruth.h"
#include "dns/snapshot.h"
#include "mrt/types.h"
#include "rpki/rov.h"
#include "scan/portscan.h"
#include "synth/config.h"

namespace sp::synth {

struct OrgSpec {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t v4_asn = 0;
  std::uint32_t v6_asn = 0;  // may differ from v4_asn (sibling AS)
  std::vector<Prefix> v4_prefixes;
  std::vector<Prefix> v6_prefixes;
  bool eyeball = false;     // hosts no domains
  bool structured = true;   // allocates services to per-counterpart sub-blocks
  /// Aligned multi-prefix orgs deploy one v6 prefix per v4 prefix and
  /// host each service in the matching pair — their default pairs are
  /// perfect without tuning (the dominant same-org pattern, Figure 15).
  bool aligned = false;
  bool hg_cdn = false;      // from the Figure 17 catalog
  bool monitoring = false;  // the Site24x7-like org
  double address_agility = 0.0;
  bool scan_silent = false;  // drops all scan probes
  bool rpki_adopter = false;
  int rpki_v4_month = 0;  // first month with v4 ROAs
  int rpki_v6_month = 0;
};

/// Visibility pattern of a domain across snapshots (Figure 7 left).
enum class Visibility : std::uint8_t { Always, Once, Intermittent };

struct DomainSpec {
  std::uint32_t id = 0;
  dns::DomainName queried;
  dns::DomainName response;  // CNAME target identity when != queried
  std::uint32_t v4_org = 0;
  std::uint32_t v6_org = 0;  // != v4_org for multi-CDN domains
  int v4_prefix = 0;         // index into v4 org's prefix list
  int v6_prefix = 0;         // index into v6 org's prefix list
  int alt_v4_prefix = 0;     // prefix used before v4_change_month
  int alt_v6_prefix = 0;
  int birth_month = 0;
  int death_month = 0;  // exclusive; == months means alive at the end
  int ds_month = 0;     // first month with AAAA records; >= months → v4-only
  Visibility visibility = Visibility::Always;
  int once_month = 0;
  int v4_change_month = -1;     // hosting moved prefixes at this month
  int v6_change_month = -1;
  int early_v4_change_month = -1;  // long-horizon move (pair turnover)
  int early_v4_prefix = 0;         // prefix used before the early move
  int address_change_month = -1;  // address salt changed at this month
  bool agile = false;             // CDN address agility
  bool second_v4_address = false;
};

class SyntheticInternet {
 public:
  explicit SyntheticInternet(const SynthConfig& config = {});

  [[nodiscard]] const SynthConfig& config() const noexcept { return config_; }
  [[nodiscard]] int month_count() const noexcept { return config_.months; }
  [[nodiscard]] Date date_of_month(int month) const {
    return config_.end_date.plus_months(month - (config_.months - 1));
  }
  /// Month index of a calendar date (clamped to the window).
  [[nodiscard]] int month_index(const Date& date) const;

  [[nodiscard]] const std::vector<OrgSpec>& orgs() const noexcept { return orgs_; }
  [[nodiscard]] const std::vector<DomainSpec>& domains() const noexcept { return domains_; }
  [[nodiscard]] const OrgSpec* org_by_asn(std::uint32_t asn) const noexcept;

  [[nodiscard]] const asinfo::AsOrgDatabase& as_orgs() const noexcept { return as_orgs_; }
  [[nodiscard]] const asinfo::AsdbDatabase& asdb() const noexcept { return asdb_; }
  [[nodiscard]] const asinfo::CdnHgCatalog& catalog() const noexcept { return catalog_; }

  /// The full TABLE_DUMP_V2 dump at the end date (PEER_INDEX_TABLE first).
  [[nodiscard]] std::vector<mrt::MrtRecord> mrt_dump() const {
    return mrt_dump_at(config_.months - 1);
  }

  /// The TABLE_DUMP_V2 dump as of `month`: monitoring-site prefixes not
  /// yet deployed are absent (routing grows with the probe mesh).
  [[nodiscard]] std::vector<mrt::MrtRecord> mrt_dump_at(int month) const;

  /// BGP4MP UPDATE records taking effect at `month`: announcements of the
  /// monitoring-site prefixes deployed that month. Applying the updates of
  /// months 1..m onto the month-0 RIB reproduces the month-m RIB.
  [[nodiscard]] std::vector<mrt::MrtRecord> bgp4mp_updates_at(int month) const;

  /// The RIB, built by serializing the topology to MRT bytes and parsing
  /// them back — the exact Routeviews consumption path.
  [[nodiscard]] const bgp::Rib& rib() const noexcept { return rib_; }

  /// DNS resolutions of month `month` (0-based; months-1 == end_date).
  [[nodiscard]] dns::ResolutionSnapshot snapshot_at(int month) const;

  /// ROAs valid during month `month`.
  [[nodiscard]] std::vector<rpki::Roa> roas_at(int month) const;

  /// Dual-stack vantage points (the RIPE Atlas / VPS role).
  [[nodiscard]] std::vector<core::DualStackProbe> probes() const;

  /// Port-scan results against the end-date deployment.
  [[nodiscard]] scan::PortScanDataset port_scan() const;

 private:
  struct DomainPlacement {
    Prefix v4_prefix;
    Prefix v6_prefix;
    std::vector<IPv4Address> v4;
    std::vector<IPv6Address> v6;  // empty before ds_month
  };

  void build_orgs();
  void build_domains();
  void build_monitoring_sites();
  [[nodiscard]] bool visible_at(const DomainSpec& domain, int month) const;
  [[nodiscard]] DomainPlacement place(const DomainSpec& domain, int month) const;

  SynthConfig config_;
  std::vector<OrgSpec> orgs_;
  std::vector<DomainSpec> domains_;
  /// Dedicated monitoring prefixes, deployed gradually over the window.
  struct MonitoringSite {
    std::uint32_t org_id = 0;
    int prefix_index = 0;
    int birth_month = 0;
  };
  std::vector<MonitoringSite> monitoring_v4_sites_;
  std::vector<MonitoringSite> monitoring_v6_sites_;
  std::optional<std::uint32_t> monitoring_org_;
  asinfo::AsOrgDatabase as_orgs_;
  asinfo::AsdbDatabase asdb_;
  asinfo::CdnHgCatalog catalog_;
  bgp::Rib rib_;
  std::unordered_map<std::uint32_t, std::uint32_t> org_by_asn_;
};

/// Deterministic host-address builders (exposed for tests).
[[nodiscard]] IPv4Address v4_host_address(const Prefix& prefix, unsigned group,
                                          std::uint64_t salt);
[[nodiscard]] IPv6Address v6_host_address(const Prefix& prefix, unsigned group,
                                          std::uint64_t salt);

}  // namespace sp::synth
