#include "synth/universe.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "mrt/codec.h"
#include "synth/determinism.h"

namespace sp::synth {

namespace {

// Hash purpose tags, so unrelated decisions never correlate.
enum Tag : std::uint64_t {
  kTagEyeball = 0x01,
  kTagSinglePrefix = 0x02,
  kTagPrefixLen4 = 0x03,
  kTagPrefixLen6 = 0x04,
  kTagSeparateAsn = 0x05,
  kTagScanSilent = 0x06,
  kTagRpkiAdopter = 0x07,
  kTagRpkiMonth4 = 0x08,
  kTagRpkiLag6 = 0x09,
  kTagBusiness = 0x0A,
  kTagDomainCount = 0x0B,
  kTagBirth = 0x0C,
  kTagFrCohort = 0x0D,
  kTagAlexaCohort = 0x0E,
  kTagDsEver = 0x0F,
  kTagDsFromBirth = 0x10,
  kTagDsMonth = 0x11,
  kTagMultiOrg = 0x12,
  kTagIndex4 = 0x13,
  kTagIndex6 = 0x14,
  kTagVisibility = 0x15,
  kTagOnceMonth = 0x16,
  kTagChange4 = 0x17,
  kTagChange6 = 0x18,
  kTagAddrChange = 0x19,
  kTagAgile = 0x1A,
  kTagSecondAddr = 0x1B,
  kTagCname = 0x1C,
  kTagTld = 0x1D,
  kTagIntermittent = 0x1E,
  kTagAgilePrefix = 0x1F,
  kTagSalt4 = 0x20,
  kTagSalt6 = 0x21,
  kTagTransit = 0x22,
  kTagSecondPeer = 0x23,
  kTagPortBase = 0x24,
  kTagPortFlip = 0x25,
  kTagRoaWrong = 0x26,
  kTagRoaMaxLen = 0x27,
  kTagProbeKind = 0x28,
  kTagProbeDomain = 0x29,
  kTagProbeSame = 0x2A,
  kTagProbeEyeball = 0x2B,
  kTagMonitorSite = 0x2C,
  kTagHgDomains = 0x2D,
  kTagOnceWindow = 0x2E,
  kTagStructured = 0x2F,
  kTagGroupFree4 = 0x30,
  kTagGroupFree6 = 0x31,
  kTagSharedSlot4 = 0x32,
  kTagSharedSlot6 = 0x33,
  kTagSiteBirth = 0x34,
  kTagAligned = 0x37,
  kTagEarlyChange = 0x35,
  kTagV6Single = 0x36,
  kTagReplica = 0x38,
};

/// Sequential IPv4 block allocator over globally-routable space. Each
/// allocation consumes at least a /16 so distinct prefixes never nest.
class V4Allocator {
 public:
  explicit V4Allocator(std::uint32_t start = 0x05000000u) : next_(start) {}

  Prefix allocate(unsigned length) {
    length = std::clamp(length, 12u, 29u);
    const std::uint32_t span = length < 16 ? (1u << (32 - length)) : 0x10000u;
    for (;;) {
      // Align to the allocation span.
      next_ = (next_ + span - 1) / span * span;
      const std::uint32_t base = next_;
      if (base >= 0xDF000000u) throw std::logic_error("v4 address space exhausted");
      next_ += span;
      bool reserved = false;
      for (std::uint32_t chunk = 0; chunk < span; chunk += 0x10000u) {
        if (is_reserved(IPv4Address(base + chunk))) {
          reserved = true;
          break;
        }
      }
      if (reserved) continue;
      return Prefix::of(IPAddress(IPv4Address(base)), length);
    }
  }

 private:
  std::uint32_t next_;
};

/// Sequential IPv6 allocator: block k maps to the /32 whose leading 32
/// bits are 0x26000000 | k, i.e. everything lives under 2600::/8-adjacent
/// global-unicast space. Allocations shorter than /32 consume an aligned
/// run of blocks, so prefixes never nest.
class V6Allocator {
 public:
  explicit V6Allocator(std::uint32_t start_block = 1) : next_(start_block) {}

  Prefix allocate(unsigned length) {
    length = std::clamp(length, 28u, 64u);
    const std::uint32_t span = length < 32 ? (1u << (32 - length)) : 1u;
    next_ = (next_ + span - 1) / span * span;
    const std::uint32_t block = next_;
    next_ += span;
    const std::uint32_t word = 0x26000000u | (block & 0x00FFFFFFu);
    IPv6Address::Bytes bytes{};
    bytes[0] = static_cast<std::uint8_t>(word >> 24);
    bytes[1] = static_cast<std::uint8_t>(word >> 16);
    bytes[2] = static_cast<std::uint8_t>(word >> 8);
    bytes[3] = static_cast<std::uint8_t>(word);
    return Prefix::of(IPAddress(IPv6Address(bytes)), length);
  }

 private:
  std::uint32_t next_;
};

unsigned sample_v4_length(std::uint64_t h) {
  const double u = unit(h, kTagPrefixLen4);
  if (u < 0.06) return 16;
  if (u < 0.20) return 17 + static_cast<unsigned>(pick(3, h, kTagPrefixLen4, 1));
  if (u < 0.44) return 20 + static_cast<unsigned>(pick(3, h, kTagPrefixLen4, 2));
  if (u < 0.50) return 23;
  if (u < 0.95) return 24;
  return 25 + static_cast<unsigned>(pick(3, h, kTagPrefixLen4, 3));
}

unsigned sample_v6_length(std::uint64_t h) {
  const double u = unit(h, kTagPrefixLen6);
  if (u < 0.14) return 32;
  if (u < 0.24) return 36;
  if (u < 0.34) return 40;
  if (u < 0.44) return 44;
  if (u < 0.91) return 48;
  if (u < 0.94) return 52;
  if (u < 0.97) return 56;
  return 64;
}

const char* kTlds[] = {"com", "net", "org", "de", "nl", "io", "co", "info"};

}  // namespace

IPv4Address v4_host_address(const Prefix& prefix, unsigned group, std::uint64_t salt) {
  const unsigned host_bits = 32 - prefix.length();
  const std::uint32_t base = prefix.address().v4().value();
  if (host_bits == 0) return prefix.address().v4();
  const unsigned gbits = host_bits > 6 ? 4u : 0u;
  const unsigned offset_bits = host_bits - gbits;
  const std::uint32_t offset_mask =
      offset_bits >= 32 ? ~0u : ((1u << offset_bits) - 1u);
  std::uint32_t offset = static_cast<std::uint32_t>(mix(salt, 0xADD4)) & offset_mask;
  if (offset == 0) offset = 1;
  const std::uint32_t group_value = gbits == 0 ? 0 : (group & ((1u << gbits) - 1u));
  return IPv4Address(base | (group_value << offset_bits) | offset);
}

IPv6Address v6_host_address(const Prefix& prefix, unsigned group, std::uint64_t salt) {
  auto bytes = prefix.address().v6().bytes();
  const unsigned length = prefix.length();
  const unsigned gbits = length + 4 <= 96 ? 4u : 0u;
  for (unsigned i = 0; i < gbits; ++i) {
    if ((group >> (gbits - 1 - i)) & 1u) {
      bytes[(length + i) / 8] |= static_cast<std::uint8_t>(0x80u >> ((length + i) % 8));
    }
  }
  std::uint32_t suffix = static_cast<std::uint32_t>(mix(salt, 0xADD6));
  if (suffix == 0) suffix = 1;
  if (length <= 96) {
    bytes[12] = static_cast<std::uint8_t>(suffix >> 24);
    bytes[13] = static_cast<std::uint8_t>(suffix >> 16);
    bytes[14] = static_cast<std::uint8_t>(suffix >> 8);
    bytes[15] = static_cast<std::uint8_t>(suffix);
  } else {
    bytes[15] |= static_cast<std::uint8_t>(suffix & 0x7f) | 1u;
  }
  return IPv6Address(bytes);
}

SyntheticInternet::SyntheticInternet(const SynthConfig& config) : config_(config) {
  catalog_ = asinfo::CdnHgCatalog::paper_catalog();
  build_orgs();
  build_domains();
  build_monitoring_sites();

  // Register organizations and business types for all ASNs.
  for (const OrgSpec& org : orgs_) {
    as_orgs_.set_org(org.v4_asn, org.name);
    as_orgs_.set_org(org.v6_asn, org.name);
    org_by_asn_.emplace(org.v4_asn, org.id);
    org_by_asn_.emplace(org.v6_asn, org.id);

    const std::uint64_t h = mix(config_.seed, org.id, kTagBusiness);
    asinfo::BusinessType primary;
    if (org.hg_cdn || org.monitoring) {
      primary = asinfo::BusinessType::ComputerIT;
    } else {
      const double u = unit(h, 1);
      if (u < 0.45) primary = asinfo::BusinessType::ComputerIT;
      else if (u < 0.57) primary = asinfo::BusinessType::Education;
      else if (u < 0.65) primary = asinfo::BusinessType::ServiceBusiness;
      else if (u < 0.71) primary = asinfo::BusinessType::Finance;
      else if (u < 0.76) primary = asinfo::BusinessType::Media;
      else if (u < 0.80) primary = asinfo::BusinessType::Government;
      else if (u < 0.84) primary = asinfo::BusinessType::Retail;
      else if (u < 0.87) primary = asinfo::BusinessType::HealthCare;
      else if (u < 0.90) primary = asinfo::BusinessType::Manufacturing;
      else {
        primary = static_cast<asinfo::BusinessType>(
            pick(asinfo::kBusinessTypeCount, h, 2));
      }
    }
    asdb_.add_category(org.v4_asn, primary);
    asdb_.add_category(org.v6_asn, primary);
    // ~20% of orgs carry a second category (they are then excluded from
    // the paper's single-type business analysis).
    if (!org.hg_cdn && unit(h, 3) < 0.20) {
      const auto secondary = static_cast<asinfo::BusinessType>(
          pick(asinfo::kBusinessTypeCount, h, 4));
      asdb_.add_category(org.v4_asn, secondary);
      asdb_.add_category(org.v6_asn, secondary);
    }
  }

  // Build the RIB through the real MRT path: encode, parse back, load.
  const auto dump = mrt_dump();
  const auto bytes = mrt::encode_dump(dump);
  std::string error;
  const auto parsed = mrt::decode_dump(bytes, &error);
  if (!parsed) throw std::logic_error("synthetic MRT dump failed to parse: " + error);
  rib_ = bgp::Rib::from_mrt(*parsed);
}

int SyntheticInternet::month_index(const Date& date) const {
  const int back = config_.end_date.months_since(date);
  return std::clamp(config_.months - 1 - back, 0, config_.months - 1);
}

const OrgSpec* SyntheticInternet::org_by_asn(std::uint32_t asn) const noexcept {
  const auto it = org_by_asn_.find(asn);
  return it == org_by_asn_.end() ? nullptr : &orgs_[it->second];
}

void SyntheticInternet::build_orgs() {
  V4Allocator v4_alloc;
  V6Allocator v6_alloc;
  const std::uint64_t seed = config_.seed;
  std::uint32_t next_asn = 4200;

  const auto add_prefixes = [&](OrgSpec& org, int n4, int n6) {
    for (int i = 0; i < n4; ++i) {
      org.v4_prefixes.push_back(
          v4_alloc.allocate(sample_v4_length(mix(seed, org.id, 0x44, i))));
    }
    for (int i = 0; i < n6; ++i) {
      org.v6_prefixes.push_back(
          v6_alloc.allocate(sample_v6_length(mix(seed, org.id, 0x66, i))));
    }
  };

  // Hypergiants and CDNs (Figure 17 catalog), largest first.
  for (const std::string& name : catalog_.org_names()) {
    const asinfo::OrgProfile* profile = catalog_.profile(name);
    OrgSpec org;
    org.id = static_cast<std::uint32_t>(orgs_.size());
    org.name = name;
    org.hg_cdn = true;
    org.address_agility = profile->address_agility;
    org.structured = profile->address_agility <= 0.20;
    // Non-agile hypergiants deploy paired v4/v6 blocks per region.
    org.aligned = org.structured;
    org.v4_asn = next_asn;
    org.v6_asn = next_asn + (unit(seed, org.id, kTagSeparateAsn) <
                                     config_.separate_v6_asn_share
                                 ? 1u
                                 : 0u);
    next_asn += 2;
    int n4 = std::max(
        2, static_cast<int>(std::lround(profile->pair_weight * config_.hg_prefix_scale)));
    if (org.aligned) {
      // Structured CDNs grow by adding edge prefixes (regional PoPs), not
      // by packing more domains per prefix — the scale knob multiplies
      // their footprint here, and place() replicates each domain across a
      // cluster of those edges.
      n4 *= std::max(1, config_.scale);
    }
    const int n6 = org.aligned ? n4 : std::max(1, static_cast<int>(std::lround(n4 * 0.85)));
    add_prefixes(org, n4, n6);
    org.scan_silent = unit(seed, org.id, kTagScanSilent) < config_.scan_silent_org_share;
    org.rpki_adopter = unit(seed, org.id, kTagRpkiAdopter) < config_.rpki_adopter_share;
    orgs_.push_back(std::move(org));
  }

  // Regular organizations.
  for (int i = 0; i < config_.organization_count; ++i) {
    OrgSpec org;
    org.id = static_cast<std::uint32_t>(orgs_.size());
    char name[32];
    std::snprintf(name, sizeof name, "org-%04d", i);
    org.name = name;
    org.eyeball = unit(seed, org.id, kTagEyeball) < config_.eyeball_share;
    org.v4_asn = next_asn;
    org.v6_asn = next_asn + (unit(seed, org.id, kTagSeparateAsn) <
                                     config_.separate_v6_asn_share
                                 ? 1u
                                 : 0u);
    next_asn += 2;
    int n4 = 1;
    int n6 = 1;
    if (unit(seed, org.id, kTagSinglePrefix) >= config_.single_prefix_org_share) {
      n4 = 2 + static_cast<int>(pick(5, seed, org.id, kTagSinglePrefix, 1));
      org.aligned = unit(seed, org.id, kTagAligned) < 0.53;
      if (org.aligned) {
        // One v6 prefix per v4 prefix, services hosted pairwise.
        n6 = n4;
      } else {
        // IPv6 prefixes are larger, so many orgs consolidate on one (the
        // paper's 46.3k v4 vs 39.5k v6 unique-prefix gap; also the reason
        // the overlap coefficient saturates for most pairs).
        n6 = unit(seed, org.id, kTagV6Single) < 0.45
                 ? 1
                 : 1 + static_cast<int>(pick(static_cast<std::uint64_t>(n4), seed, org.id,
                                             kTagSinglePrefix, 2));
      }
    }
    add_prefixes(org, n4, n6);
    org.structured = unit(seed, org.id, kTagStructured) < config_.structured_org_share;
    org.scan_silent = unit(seed, org.id, kTagScanSilent) < config_.scan_silent_org_share;
    org.rpki_adopter = unit(seed, org.id, kTagRpkiAdopter) < config_.rpki_adopter_share;
    orgs_.push_back(std::move(org));
  }

  // RPKI adoption months: a share adopted before the window, the rest ramp
  // in uniformly; v6 ROAs may lag v4 (→ valid/not-found pairs).
  for (OrgSpec& org : orgs_) {
    if (!org.rpki_adopter) continue;
    const std::uint64_t h = mix(seed, org.id, kTagRpkiMonth4);
    org.rpki_v4_month = unit(h, 1) < 0.75
                            ? 0
                            : static_cast<int>(pick(
                                  static_cast<std::uint64_t>(config_.months), h, 2));
    const std::uint64_t lag_h = mix(seed, org.id, kTagRpkiLag6);
    org.rpki_v6_month =
        unit(lag_h, 1) < 0.60
            ? org.rpki_v4_month
            : std::min(config_.months - 1,
                       org.rpki_v4_month + 1 + static_cast<int>(pick(18, lag_h, 2)));
  }

  // The monitoring organization (Site24x7 role): its prefixes are added by
  // build_monitoring_sites into *other* orgs; it owns the domain identity.
  if (config_.monitoring_org) {
    OrgSpec org;
    org.id = static_cast<std::uint32_t>(orgs_.size());
    org.name = "MonitorCorp";
    org.monitoring = true;
    org.v4_asn = next_asn;
    org.v6_asn = next_asn;
    next_asn += 2;
    monitoring_org_ = org.id;
    orgs_.push_back(std::move(org));
  }
}

void SyntheticInternet::build_domains() {
  const std::uint64_t seed = config_.seed;
  const int months = config_.months;
  const int fr_month = month_index(Date{2022, 8, 10});
  const int alexa_removal_month = month_index(Date{2023, 5, 10});

  for (const OrgSpec& org : orgs_) {
    if (org.eyeball || org.monitoring) continue;
    int domain_count;
    if (org.hg_cdn) {
      // Address-agile CDNs pack far more domains per prefix (shared
      // front-end fleets), which is what pushes their pair Jaccard into
      // the lowest bin of Figure 17.
      const int per_prefix =
          org.address_agility > 0.20
              ? 20 + static_cast<int>(pick(60, seed, org.id, kTagHgDomains))
              : 4 + static_cast<int>(pick(26, seed, org.id, kTagHgDomains));
      domain_count = static_cast<int>(org.v4_prefixes.size()) * per_prefix;
    } else {
      const double u = unit(seed, org.id, kTagDomainCount);
      if (u < 0.30) {
        domain_count = 1 + static_cast<int>(pick(2, seed, org.id, kTagDomainCount, 1));
      } else if (u < 0.55) {
        domain_count = 3 + static_cast<int>(pick(3, seed, org.id, kTagDomainCount, 2));
      } else if (u < 0.85) {
        domain_count = 6 + static_cast<int>(pick(15, seed, org.id, kTagDomainCount, 3));
      } else if (u < 0.97) {
        domain_count = 21 + static_cast<int>(pick(80, seed, org.id, kTagDomainCount, 4));
      } else {
        domain_count = 101 + static_cast<int>(pick(500, seed, org.id, kTagDomainCount, 5));
      }
    }
    // The scale knob multiplies the domain universe; the per-domain draws
    // below consume fresh ids, so scale = 1 reproduces the unscaled model.
    // Structured hypergiants already scaled through their prefix count
    // (domain_count = prefixes * per_prefix above), so multiplying again
    // would grow them quadratically.
    if (!(org.hg_cdn && org.aligned)) {
      domain_count *= std::max(1, config_.scale);
    }

    for (int k = 0; k < domain_count; ++k) {
      DomainSpec domain;
      domain.id = static_cast<std::uint32_t>(domains_.size());
      const std::uint64_t h = mix(seed, domain.id, 0xD0);
      domain.v4_org = org.id;
      domain.v6_org = org.id;

      // Dataset cohorts drive the Figure 1 growth events.
      const bool fr_cohort = unit(h, kTagFrCohort) < 0.12;
      const char* tld =
          fr_cohort ? "fr" : kTlds[pick(std::size(kTlds), h, kTagTld)];
      char name[96];
      std::snprintf(name, sizeof name, "svc%d.%s.%s", k, org.name.c_str(), tld);
      domain.queried = dns::DomainName::must_parse(name);
      if (unit(h, kTagCname) < 0.25) {
        char target[96];
        std::snprintf(target, sizeof target, "d%u.edge.%s.net", domain.id,
                      org.name.c_str());
        domain.response = dns::DomainName::must_parse(target);
      } else {
        domain.response = domain.queried;
      }

      if (fr_cohort) {
        domain.birth_month = fr_month;
      } else if (unit(h, kTagBirth) < 0.38) {
        domain.birth_month = 0;
      } else {
        domain.birth_month =
            1 + static_cast<int>(pick(static_cast<std::uint64_t>(months - 1), h, kTagBirth, 1));
      }
      domain.death_month = months;
      if (domain.birth_month == 0 && unit(h, kTagAlexaCohort) < 0.06) {
        domain.death_month = alexa_removal_month;
      }

      // Dual-stack adoption: share grows over the window.
      if (unit(h, kTagDsEver) < 0.315) {
        if (unit(h, kTagDsFromBirth) < 0.72) {
          domain.ds_month = domain.birth_month;
        } else {
          domain.ds_month =
              domain.birth_month +
              static_cast<int>(pick(
                  static_cast<std::uint64_t>(std::max(1, months - domain.birth_month)), h,
                  kTagDsMonth));
        }
      } else {
        domain.ds_month = months;  // v4-only forever
      }

      // Multi-CDN / split hosting: the v6 side lives elsewhere.
      if (!org.hg_cdn && unit(h, kTagMultiOrg) < config_.multi_org_domain_share) {
        // Pick any hosting org deterministically (skip eyeballs/monitoring).
        for (int attempt = 0; attempt < 16; ++attempt) {
          const auto candidate = static_cast<std::uint32_t>(
              pick(orgs_.size(), h, kTagMultiOrg, 1 + attempt));
          const OrgSpec& other = orgs_[candidate];
          if (!other.eyeball && !other.monitoring && candidate != org.id) {
            domain.v6_org = candidate;
            break;
          }
        }
      }

      const OrgSpec& v6_org = orgs_[domain.v6_org];
      domain.v4_prefix = static_cast<int>(pick(org.v4_prefixes.size(), h, kTagIndex4));
      const bool pairwise = org.aligned && domain.v6_org == org.id;
      domain.v6_prefix = pairwise ? domain.v4_prefix
                                  : static_cast<int>(
                                        pick(v6_org.v6_prefixes.size(), h, kTagIndex6));
      domain.alt_v4_prefix =
          static_cast<int>(pick(org.v4_prefixes.size(), h, kTagIndex4, 1));
      domain.alt_v6_prefix = pairwise ? domain.alt_v4_prefix
                                      : static_cast<int>(
                                            pick(v6_org.v6_prefixes.size(), h, kTagIndex6, 1));

      const double visibility_u = unit(h, kTagVisibility);
      if (visibility_u < config_.always_visible_share) {
        domain.visibility = Visibility::Always;
      } else if (visibility_u <
                 config_.always_visible_share + config_.once_visible_share) {
        domain.visibility = Visibility::Once;
        const int window = std::max(1, domain.death_month - domain.birth_month);
        domain.once_month =
            domain.birth_month +
            static_cast<int>(pick(static_cast<std::uint64_t>(window), h, kTagOnceMonth));
      } else {
        domain.visibility = Visibility::Intermittent;
      }

      // Hosting churn over the trailing year (Figure 7 center/right).
      if (org.v4_prefixes.size() > 1 &&
          unit(h, kTagChange4) < config_.v4_prefix_change_share) {
        domain.v4_change_month = months - 1 - static_cast<int>(pick(11, h, kTagChange4, 1));
      }
      if (v6_org.v6_prefixes.size() > 1 &&
          unit(h, kTagChange6) < config_.v6_prefix_change_share) {
        domain.v6_change_month = months - 1 - static_cast<int>(pick(11, h, kTagChange6, 1));
      }
      // Long-horizon re-hosting (outside the Figure 7 trailing year):
      // drives pair turnover between the 4-year-apart snapshots.
      if (org.v4_prefixes.size() > 1 && months > 16 &&
          unit(h, kTagEarlyChange) < 0.40) {
        domain.early_v4_change_month =
            12 + static_cast<int>(pick(static_cast<std::uint64_t>(months - 14), h,
                                       kTagEarlyChange, 1));
        domain.early_v4_prefix =
            static_cast<int>(pick(org.v4_prefixes.size(), h, kTagEarlyChange, 2));
      }
      if (unit(h, kTagAddrChange) < config_.address_change_share) {
        domain.address_change_month = months - 1 - static_cast<int>(pick(11, h, kTagAddrChange, 1));
      }

      domain.agile = org.address_agility > 0.0 &&
                     unit(h, kTagAgile) < org.address_agility;
      domain.second_v4_address = unit(h, kTagSecondAddr) < 0.15;
      domains_.push_back(std::move(domain));
    }
  }

  // The monitoring domain: one identity across hundreds of prefixes.
  if (monitoring_org_) {
    DomainSpec domain;
    domain.id = static_cast<std::uint32_t>(domains_.size());
    domain.queried = dns::DomainName::must_parse("probe.monitorcorp.example");
    domain.response = domain.queried;
    domain.v4_org = *monitoring_org_;
    domain.v6_org = *monitoring_org_;
    domain.birth_month = 0;
    domain.death_month = config_.months;
    domain.ds_month = 0;
    domain.visibility = Visibility::Always;
    domains_.push_back(std::move(domain));
  }
}

void SyntheticInternet::build_monitoring_sites() {
  if (!monitoring_org_) return;
  // Dedicated ranges far above anything build_orgs can reach at any scale.
  V4Allocator v4_alloc(0x80000000u);     // 128.0.0.0 upward
  V6Allocator v6_alloc(0x00800000u);     // 2680::/16 region upward

  const std::uint64_t seed = config_.seed;
  const auto pick_host_org = [&](std::uint64_t salt) -> std::uint32_t {
    for (int attempt = 0;; ++attempt) {
      const auto candidate = static_cast<std::uint32_t>(
          pick(orgs_.size(), seed, kTagMonitorSite, salt, attempt));
      const OrgSpec& org = orgs_[candidate];
      if (!org.eyeball && !org.monitoring && !org.hg_cdn) return candidate;
    }
  };

  // Sites are deployed over time: ~40% existed at the window start, the
  // rest appear gradually (this drives most of the pair-count growth and
  // the large "new pairs" share in Figures 9/10).
  const auto site_birth = [&](std::uint64_t salt) {
    if (unit(seed, kTagSiteBirth, salt) < 0.40) return 0;
    return 1 + static_cast<int>(pick(static_cast<std::uint64_t>(config_.months - 1), seed,
                                     kTagSiteBirth, salt, 1));
  };
  // The monitoring pair grid is the full v4-site x v6-site bipartite
  // clique (one domain identity answers from every site), so to keep it a
  // fixed *share* of all pairs — the universe grows linearly in scale —
  // only the probe-side v4 fleet scales; the v6 anchor deployment stays
  // the org's fixed footprint. Scaling both sides would grow the grid
  // quadratically and drown every other pair population. The site-salt
  // ranges below stay disjoint for any scale <= 15.
  const int scale = std::max(1, config_.scale);
  for (int i = 0; i < config_.monitoring_v4_prefixes * scale; ++i) {
    const std::uint32_t org_id = pick_host_org(1000 + i);
    OrgSpec& org = orgs_[org_id];
    const unsigned v4_lengths[] = {22, 23, 24, 24};
    org.v4_prefixes.push_back(
        v4_alloc.allocate(v4_lengths[pick(4, seed, kTagMonitorSite, 3000 + i)]));
    monitoring_v4_sites_.push_back(
        {org_id, static_cast<int>(org.v4_prefixes.size() - 1), site_birth(1000 + i)});
  }
  for (int i = 0; i < config_.monitoring_v6_prefixes; ++i) {
    const std::uint32_t org_id = pick_host_org(2000 + i);
    OrgSpec& org = orgs_[org_id];
    const unsigned v6_lengths[] = {32, 40, 44, 48};
    org.v6_prefixes.push_back(
        v6_alloc.allocate(v6_lengths[pick(4, seed, kTagMonitorSite, 4000 + i)]));
    monitoring_v6_sites_.push_back(
        {org_id, static_cast<int>(org.v6_prefixes.size() - 1), site_birth(2000 + i)});
  }
}

bool SyntheticInternet::visible_at(const DomainSpec& domain, int month) const {
  if (month < domain.birth_month || month >= domain.death_month) return false;
  if (orgs_[domain.v4_org].monitoring) {
    // The monitoring domain disappears on a few dates (the paper's
    // site24x7 dips in Figures 14/15).
    const int missing[] = {month_index(Date{2023, 5, 10}), month_index(Date{2022, 3, 10}),
                           month_index(Date{2021, 6, 10}), month_index(Date{2021, 11, 10})};
    for (const int m : missing) {
      if (month == m) return false;
    }
    return true;
  }
  switch (domain.visibility) {
    case Visibility::Always:
      return true;
    case Visibility::Once:
      return month == domain.once_month;
    case Visibility::Intermittent:
      return unit(config_.seed, domain.id, static_cast<std::uint64_t>(month),
                  kTagIntermittent) < config_.intermittent_visibility;
  }
  return false;
}

SyntheticInternet::DomainPlacement SyntheticInternet::place(const DomainSpec& domain,
                                                            int month) const {
  const std::uint64_t seed = config_.seed;
  const OrgSpec& org4 = orgs_[domain.v4_org];
  const OrgSpec& org6 = orgs_[domain.v6_org];

  int i4 = domain.v4_prefix;
  if (domain.v4_change_month >= 0 && month < domain.v4_change_month) {
    i4 = domain.alt_v4_prefix;
  }
  if (domain.early_v4_change_month >= 0 && month < domain.early_v4_change_month) {
    i4 = domain.early_v4_prefix;
  }
  int i6 = domain.v6_prefix;
  if (domain.v6_change_month >= 0 && month < domain.v6_change_month) {
    i6 = domain.alt_v6_prefix;
  }
  // Structured orgs place each counterpart's services in a dedicated
  // sub-block (SP-Tuner can split those apart). Unstructured orgs use
  // shared hosting: all domains of a prefix land on a handful of shared
  // addresses, which no sub-prefix split can separate.
  const std::uint64_t slot4 = pick(3, seed, domain.id, kTagSharedSlot4);
  const std::uint64_t slot6 = pick(3, seed, domain.id, kTagSharedSlot6);
  unsigned group4 = org4.structured
                        ? static_cast<unsigned>(i6)
                        : static_cast<unsigned>(
                              pick(16, seed, org4.id, kTagGroupFree4, slot4));
  unsigned group6 = org6.structured
                        ? static_cast<unsigned>(i4)
                        : static_cast<unsigned>(
                              pick(16, seed, org6.id, kTagGroupFree6, slot6));
  std::uint64_t agile_epoch = 0;
  if (domain.agile) {
    // Address agility: the CDN re-homes the domain every month.
    i6 = static_cast<int>(
        pick(org6.v6_prefixes.size(), seed, domain.id, month, kTagAgilePrefix));
    group4 = static_cast<unsigned>(
        pick(16, seed, domain.id, static_cast<std::uint64_t>(month), kTagAgilePrefix + 100));
    agile_epoch = static_cast<std::uint64_t>(month) * 131u + 7u;
  }

  const std::uint64_t address_epoch =
      (domain.address_change_month >= 0 && month < domain.address_change_month) ? 0u : 1u;

  DomainPlacement placement;
  placement.v4_prefix = org4.v4_prefixes[static_cast<std::size_t>(i4)];
  placement.v6_prefix = org6.v6_prefixes[static_cast<std::size_t>(i6)];

  // Shared-hosting addresses are keyed by (org, prefix, slot) so many
  // domains resolve to the same host; dedicated addresses by domain id.
  // Shared addresses never churn (the whole slot would have to move).
  const std::uint64_t salt4 =
      org4.structured
          ? mix(seed, domain.id, kTagSalt4, address_epoch + agile_epoch)
          : mix(seed, org4.id, kTagSalt4 + 100,
                (static_cast<std::uint64_t>(i4) << 8) | slot4);
  placement.v4.push_back(v4_host_address(placement.v4_prefix, group4, salt4));
  if (domain.second_v4_address && org4.structured) {
    placement.v4.push_back(v4_host_address(placement.v4_prefix, group4, salt4 + 77));
  }

  // CDN edge replication, active only above scale 1 and only for the
  // structured (aligned) hypergiants: the org's prefix array is cut into
  // clusters of ~64*scale consecutive edge prefixes, a domain picks one
  // cluster and is served from a random half-subset of it. Both families
  // draw the same index sequence (the picks are keyed by domain id only
  // and an aligned org has m4 == m6), so prefix a's domain set is nearly
  // identical to its paired a6 — the unique high-Jaccard counterpart
  // detection must find — while two *different* prefixes of the same
  // cluster share only ~0.25 Jaccard (independent half-subsets) and
  // different clusters share nothing. That J-gap is what lets the sketch
  // engine discard all but the true counterpart, where the exact engine
  // must walk every element's full posting list.
  const int scale = std::max(1, config_.scale);
  const std::uint64_t stride_h = mix(seed, domain.id, kTagReplica);
  const bool replicated = scale > 1 && org4.hg_cdn && org4.aligned;
  std::size_t cluster_base = 0;
  std::size_t cluster_size = 0;
  std::size_t member_count = 0;
  if (replicated) {
    const std::size_t m4 = org4.v4_prefixes.size();
    const std::size_t cluster_span = std::min<std::size_t>(
        static_cast<std::size_t>(64) * static_cast<std::size_t>(scale), m4);
    const std::size_t clusters = std::max<std::size_t>(1, m4 / cluster_span);
    const std::size_t c = static_cast<std::size_t>(pick(clusters, stride_h, 1));
    cluster_base = c * cluster_span;
    cluster_size = (c + 1 == clusters) ? m4 - cluster_base : cluster_span;
    member_count = std::max<std::size_t>(1, cluster_size / 2);
    for (std::size_t j = 0; j < member_count; ++j) {
      const std::size_t index =
          cluster_base + static_cast<std::size_t>(pick(cluster_size, stride_h, 2, j));
      placement.v4.push_back(v4_host_address(org4.v4_prefixes[index], group4,
                                             mix(salt4, kTagReplica, j)));
    }
  }

  // Replicated CDN edges are dual-stack from birth: at scale the v6 side
  // must mirror the v4 cluster or the aligned counterpart would sit below
  // the detection floor.
  if (month >= domain.ds_month || replicated) {
    const std::uint64_t salt6 =
        org6.structured
            ? mix(seed, domain.id, kTagSalt6, address_epoch + agile_epoch)
            : mix(seed, org6.id, kTagSalt6 + 100,
                  (static_cast<std::uint64_t>(i6) << 8) | slot6);
    placement.v6.push_back(v6_host_address(placement.v6_prefix, group6, salt6));
    if (replicated) {
      // Same cluster and the same member picks as the v4 block above:
      // aligned orgs have m6 == m4, so the indices land on the paired
      // prefixes and the two families carry matching edge sets.
      for (std::size_t j = 0; j < member_count; ++j) {
        const std::size_t index =
            cluster_base + static_cast<std::size_t>(pick(cluster_size, stride_h, 2, j));
        placement.v6.push_back(v6_host_address(org6.v6_prefixes[index], group6,
                                               mix(salt6, kTagReplica, j)));
      }
    }
  }
  std::sort(placement.v4.begin(), placement.v4.end());
  placement.v4.erase(std::unique(placement.v4.begin(), placement.v4.end()),
                     placement.v4.end());
  return placement;
}

dns::ResolutionSnapshot SyntheticInternet::snapshot_at(int month) const {
  dns::ResolutionSnapshot snapshot(date_of_month(month));
  for (const DomainSpec& domain : domains_) {
    if (!visible_at(domain, month)) continue;

    dns::DomainResolution entry;
    entry.queried = domain.queried;
    entry.response_name = domain.response;

    if (monitoring_org_ && orgs_[domain.v4_org].monitoring) {
      // The monitoring domain answers with one address per site.
      for (const auto& site : monitoring_v4_sites_) {
        if (month < site.birth_month) continue;
        const Prefix& prefix =
            orgs_[site.org_id].v4_prefixes[static_cast<std::size_t>(site.prefix_index)];
        entry.v4.push_back(v4_host_address(prefix, 0, mix(config_.seed, site.org_id, 0x515)));
      }
      for (const auto& site : monitoring_v6_sites_) {
        if (month < site.birth_month) continue;
        const Prefix& prefix =
            orgs_[site.org_id].v6_prefixes[static_cast<std::size_t>(site.prefix_index)];
        entry.v6.push_back(v6_host_address(prefix, 0, mix(config_.seed, site.org_id, 0x616)));
      }
    } else {
      auto placement = place(domain, month);
      entry.v4 = std::move(placement.v4);
      entry.v6 = std::move(placement.v6);
    }
    std::sort(entry.v4.begin(), entry.v4.end());
    std::sort(entry.v6.begin(), entry.v6.end());
    snapshot.add(std::move(entry));
  }
  return snapshot;
}

std::vector<mrt::MrtRecord> SyntheticInternet::mrt_dump_at(int month) const {
  const std::uint64_t seed = config_.seed;
  const std::uint32_t timestamp = 1726000000;  // fixed collector time

  // Monitoring-site prefixes born after `month` are not announced yet.
  std::set<std::pair<std::uint32_t, int>> unborn;
  for (const auto& site : monitoring_v4_sites_) {
    if (site.birth_month > month) unborn.insert({site.org_id, site.prefix_index});
  }
  std::set<std::pair<std::uint32_t, int>> unborn_v6;
  for (const auto& site : monitoring_v6_sites_) {
    if (site.birth_month > month) unborn_v6.insert({site.org_id, site.prefix_index});
  }

  std::vector<mrt::MrtRecord> records;
  mrt::PeerIndexTable peers;
  peers.collector_bgp_id = {192, 0, 2, 250};
  peers.view_name = "sibling-prefixes-synth";
  peers.peers.push_back({{192, 0, 2, 1}, IPAddress::must_parse("5.0.0.1"), 64500});
  peers.peers.push_back({{192, 0, 2, 2}, IPAddress::must_parse("2600:1::1"), 64501});
  records.push_back({timestamp, peers});

  const std::uint32_t transits[] = {3356, 1299, 174, 6939, 2914};
  std::uint32_t sequence = 0;
  for (const OrgSpec& org : orgs_) {
    const auto emit = [&](const Prefix& prefix, std::uint32_t origin) {
      mrt::RibRecord rib;
      rib.sequence = sequence++;
      rib.prefix = prefix;
      const std::uint32_t transit =
          transits[pick(std::size(transits), seed, origin, kTagTransit, sequence)];
      mrt::RibEntry entry;
      entry.peer_index = 0;
      entry.originated_time = timestamp - 86400;
      entry.attributes = mrt::PathAttributes::sequence({64500, transit, origin});
      if (prefix.family() == Family::v4) {
        entry.attributes.next_hop_v4 = *IPv4Address::from_string("5.0.0.1");
      } else {
        entry.attributes.next_hop_v6 = *IPv6Address::from_string("2600:1::1");
      }
      rib.entries.push_back(entry);
      // A second peer's view for roughly half the prefixes.
      if (unit(seed, sequence, kTagSecondPeer) < 0.5) {
        mrt::RibEntry second = entry;
        second.peer_index = 1;
        second.attributes =
            mrt::PathAttributes::sequence({64501, transits[0], origin});
        rib.entries.push_back(second);
      }
      records.push_back({timestamp, std::move(rib)});
    };
    for (std::size_t i = 0; i < org.v4_prefixes.size(); ++i) {
      if (unborn.contains({org.id, static_cast<int>(i)})) continue;
      emit(org.v4_prefixes[i], org.v4_asn);
    }
    for (std::size_t i = 0; i < org.v6_prefixes.size(); ++i) {
      if (unborn_v6.contains({org.id, static_cast<int>(i)})) continue;
      emit(org.v6_prefixes[i], org.v6_asn);
    }
  }
  return records;
}

std::vector<mrt::MrtRecord> SyntheticInternet::bgp4mp_updates_at(int month) const {
  const std::uint32_t timestamp = 1726000000;
  std::vector<mrt::MrtRecord> records;
  const auto emit_announce = [&](const Prefix& prefix, std::uint32_t origin) {
    mrt::Bgp4mpUpdate update;
    update.peer_asn = 64500;
    update.local_asn = 65550;
    update.peer_address = IPAddress::must_parse("5.0.0.1");
    update.local_address = IPAddress::must_parse("5.0.0.2");
    update.attributes = mrt::PathAttributes::sequence({64500, 3356, origin});
    if (prefix.family() == Family::v4) {
      update.attributes.next_hop_v4 = *IPv4Address::from_string("5.0.0.1");
    } else {
      update.attributes.next_hop_v6 = *IPv6Address::from_string("2600:1::1");
    }
    update.announced.push_back(prefix);
    records.push_back(
        {timestamp + static_cast<std::uint32_t>(month) * 2592000u, std::move(update)});
  };
  for (const auto& site : monitoring_v4_sites_) {
    if (site.birth_month != month) continue;
    const OrgSpec& org = orgs_[site.org_id];
    emit_announce(org.v4_prefixes[static_cast<std::size_t>(site.prefix_index)], org.v4_asn);
  }
  for (const auto& site : monitoring_v6_sites_) {
    if (site.birth_month != month) continue;
    const OrgSpec& org = orgs_[site.org_id];
    emit_announce(org.v6_prefixes[static_cast<std::size_t>(site.prefix_index)], org.v6_asn);
  }
  return records;
}

std::vector<rpki::Roa> SyntheticInternet::roas_at(int month) const {
  const std::uint64_t seed = config_.seed;
  std::vector<rpki::Roa> roas;
  for (const OrgSpec& org : orgs_) {
    if (!org.rpki_adopter) continue;
    const auto emit = [&](const Prefix& prefix, std::uint32_t origin, std::uint64_t salt) {
      rpki::Roa roa;
      roa.prefix = prefix;
      roa.asn = origin;
      if (unit(seed, org.id, kTagRoaWrong, salt) < config_.rpki_wrong_origin_share) {
        roa.asn = origin + 7;  // mis-issued → invalid announcements
      }
      const bool short_maxlen =
          unit(seed, org.id, kTagRoaMaxLen, salt) < config_.rpki_short_maxlen_share;
      roa.max_length = static_cast<std::uint8_t>(
          short_maxlen ? prefix.length()
                       : std::min(prefix.max_length(), prefix.length() + 8));
      roas.push_back(roa);
    };
    if (month >= org.rpki_v4_month) {
      for (std::size_t i = 0; i < org.v4_prefixes.size(); ++i) {
        emit(org.v4_prefixes[i], org.v4_asn, i);
      }
    }
    if (month >= org.rpki_v6_month) {
      for (std::size_t i = 0; i < org.v6_prefixes.size(); ++i) {
        emit(org.v6_prefixes[i], org.v6_asn, 1000 + i);
      }
    }
  }
  return roas;
}

std::vector<core::DualStackProbe> SyntheticInternet::probes() const {
  const std::uint64_t seed = config_.seed;
  const int last = config_.months - 1;

  // Pools: end-visible dual-stack domains and eyeball prefixes.
  std::vector<const DomainSpec*> ds_pool;
  for (const DomainSpec& domain : domains_) {
    if (orgs_[domain.v4_org].monitoring) continue;
    if (visible_at(domain, last) && last >= domain.ds_month && !domain.agile &&
        domain.v4_org == domain.v6_org) {
      ds_pool.push_back(&domain);
    }
  }
  std::vector<const OrgSpec*> eyeballs;
  for (const OrgSpec& org : orgs_) {
    if (org.eyeball && !org.v4_prefixes.empty() && !org.v6_prefixes.empty()) {
      eyeballs.push_back(&org);
    }
  }
  if (ds_pool.empty() || eyeballs.empty()) return {};

  std::vector<core::DualStackProbe> probes;
  probes.reserve(static_cast<std::size_t>(config_.probe_count));
  for (int i = 0; i < config_.probe_count; ++i) {
    const std::uint64_t h = mix(seed, 0x9807, i);
    const double kind = unit(h, kTagProbeKind);
    const DomainSpec& domain = *ds_pool[pick(ds_pool.size(), h, kTagProbeDomain)];
    const auto placement = place(domain, last);
    const OrgSpec& eyeball = *eyeballs[pick(eyeballs.size(), h, kTagProbeEyeball)];
    const Prefix eyeball_v4 =
        eyeball.v4_prefixes[pick(eyeball.v4_prefixes.size(), h, kTagProbeEyeball, 1)];
    const Prefix eyeball_v6 =
        eyeball.v6_prefixes[pick(eyeball.v6_prefixes.size(), h, kTagProbeEyeball, 2)];

    core::DualStackProbe probe;
    if (kind < config_.probe_full_coverage_share) {
      // Fully covered: both addresses in hosting prefixes.
      probe.v4 = IPAddress(
          v4_host_address(placement.v4_prefix, static_cast<unsigned>(domain.v6_prefix),
                          mix(h, 1)));
      if (unit(h, kTagProbeSame) < config_.probe_same_group_share) {
        probe.v6 = IPAddress(v6_host_address(
            placement.v6_prefix, static_cast<unsigned>(domain.v4_prefix), mix(h, 2)));
      } else {
        // Cross-placed: v6 inside a different domain's hosting prefix.
        const DomainSpec& other = *ds_pool[pick(ds_pool.size(), h, kTagProbeDomain, 1)];
        const auto other_placement = place(other, last);
        probe.v6 = IPAddress(v6_host_address(
            other_placement.v6_prefix, static_cast<unsigned>(other.v4_prefix), mix(h, 3)));
      }
    } else if (kind <
               config_.probe_full_coverage_share + config_.probe_partial_coverage_share) {
      probe.v4 = IPAddress(
          v4_host_address(placement.v4_prefix, static_cast<unsigned>(domain.v6_prefix),
                          mix(h, 4)));
      probe.v6 = IPAddress(v6_host_address(eyeball_v6, 0, mix(h, 5)));
    } else {
      probe.v4 = IPAddress(v4_host_address(eyeball_v4, 0, mix(h, 6)));
      probe.v6 = IPAddress(v6_host_address(eyeball_v6, 0, mix(h, 7)));
    }
    probes.push_back(probe);
  }
  return probes;
}

scan::PortScanDataset SyntheticInternet::port_scan() const {
  const std::uint64_t seed = config_.seed;
  const int last = config_.months - 1;
  scan::PortScanDataset dataset;

  const auto base_ports = [&](const DomainSpec& domain) {
    scan::PortMask mask = 0;
    const std::uint64_t h = mix(seed, domain.id, kTagPortBase);
    if (unit(h, 1) < 0.95) mask |= scan::port_bit(80) | scan::port_bit(443);
    if (unit(h, 2) < 0.22) mask |= scan::port_bit(22);
    if (unit(h, 3) < 0.08) mask |= scan::port_bit(25);
    if (unit(h, 4) < 0.07) mask |= scan::port_bit(53);
    if (unit(h, 5) < 0.05) mask |= scan::port_bit(21);
    if (mask == 0) mask = scan::port_bit(80);
    return mask;
  };

  for (const DomainSpec& domain : domains_) {
    if (!visible_at(domain, last)) continue;
    if (orgs_[domain.v4_org].monitoring) {
      // Monitoring probes answer on 443 everywhere.
      for (const auto& site : monitoring_v4_sites_) {
        if (orgs_[site.org_id].scan_silent || last < site.birth_month) continue;
        const Prefix& prefix =
            orgs_[site.org_id].v4_prefixes[static_cast<std::size_t>(site.prefix_index)];
        dataset.add_open(
            IPAddress(v4_host_address(prefix, 0, mix(seed, site.org_id, 0x515))), 443);
      }
      for (const auto& site : monitoring_v6_sites_) {
        if (orgs_[site.org_id].scan_silent || last < site.birth_month) continue;
        const Prefix& prefix =
            orgs_[site.org_id].v6_prefixes[static_cast<std::size_t>(site.prefix_index)];
        dataset.add_open(
            IPAddress(v6_host_address(prefix, 0, mix(seed, site.org_id, 0x616))), 443);
      }
      continue;
    }

    const auto placement = place(domain, last);
    const scan::PortMask v4_mask = base_ports(domain);
    scan::PortMask v6_mask = v4_mask;
    // Per-family drift: a port may be closed on one family or extra ports
    // open on IPv6 (the Czyz et al. observation).
    const std::uint64_t fh = mix(seed, domain.id, kTagPortFlip);
    if (unit(fh, 1) < config_.scan_port_flip_probability) {
      v6_mask &= static_cast<scan::PortMask>(~scan::port_bit(22));
    }
    if (unit(fh, 2) < config_.scan_port_flip_probability) {
      v6_mask |= scan::port_bit(123);
    }

    if (!orgs_[domain.v4_org].scan_silent) {
      for (const IPv4Address& address : placement.v4) {
        for (const std::uint16_t port : scan::kWellKnownPorts) {
          if ((v4_mask & scan::port_bit(port)) != 0) {
            dataset.add_open(IPAddress(address), port);
          }
        }
      }
    }
    if (!orgs_[domain.v6_org].scan_silent && last >= domain.ds_month) {
      for (const IPv6Address& address : placement.v6) {
        for (const std::uint16_t port : scan::kWellKnownPorts) {
          if ((v6_mask & scan::port_bit(port)) != 0) {
            dataset.add_open(IPAddress(address), port);
          }
        }
      }
    }
  }
  return dataset;
}

}  // namespace sp::synth
