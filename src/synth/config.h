// Configuration of the synthetic Internet model.
//
// The generator reproduces, at a configurable scale, the statistical
// structure the paper measures: organizations with v4/v6 prefix sets and
// sibling ASes, hypergiant/CDN deployments (with address-agile CDNs),
// a Site24x7-style monitoring organization whose single domain spans
// hundreds of third-party prefixes, dataset growth events (.fr ccTLD
// addition, Alexa removal), dual-stack adoption growth, domain visibility
// churn, prefix/address dynamics, RPKI deployment growth, vantage-point
// probes and port-scan behaviour.
//
// Every quantity is derived deterministically from `seed`, so all benches
// and tests are reproducible.
#pragma once

#include <cstdint>

#include "netbase/date.h"

namespace sp::synth {

struct SynthConfig {
  std::uint64_t seed = 42;

  /// Universe scale multiplier toward paper-scale corpora. Multiplies
  /// per-org domain counts and monitoring-site counts, and (above 1)
  /// switches hypergiant CDNs to replicated edge deployments, where each
  /// domain is served from several prefixes per family. scale = 1 is
  /// bit-identical to the pre-knob generator on every seed.
  int scale = 1;

  /// Snapshot range: `months` monthly snapshots ending at `end_date`
  /// (the paper: 49 snapshots, Sep 2020 - Sep 2024).
  int months = 49;
  Date end_date{2024, 9, 11};

  /// Regular (non-HG/CDN) organizations hosting content.
  int organization_count = 3000;
  /// Fraction of organizations that are eyeball/access networks hosting no
  /// domains (they matter for probe coverage and RPKI shares).
  double eyeball_share = 0.20;

  /// Scale factor for hypergiant/CDN prefix counts relative to the paper's
  /// Figure 17 pair counts (Amazon 4564 pairs × scale ≈ prefixes).
  double hg_prefix_scale = 0.05;

  /// Mean content domains per regular org (heavy-tailed around this).
  double domains_per_org = 18.0;

  /// Dual-stack share of domains at the start and end of the window
  /// (paper: 25.2% → 31.8%).
  double ds_share_start = 0.252;
  double ds_share_end = 0.318;

  /// Share of regular orgs with a single prefix per family. Together with
  /// the monitoring org's all-perfect pair grid this drives the fraction
  /// of perfect-match pairs in the default case (~52% overall in the
  /// paper; ~34% among non-monitoring pairs).
  double single_prefix_org_share = 0.26;

  /// Share of orgs that allocate services to per-counterpart sub-blocks
  /// ("subnet discipline"). SP-Tuner-MS can split structured orgs' pairs
  /// into perfect matches; unstructured orgs keep mixed sub-prefixes at
  /// any depth, bounding the tuned perfect-match share (~82% overall).
  double structured_org_share = 0.75;

  /// Probability that an org registers a distinct ASN for its IPv6
  /// deployment (sibling ASes under one organization name).
  double separate_v6_asn_share = 0.35;

  /// Share of content domains whose IPv6 is served by a *different*
  /// organization (multi-CDN / split hosting → different-org pairs).
  double multi_org_domain_share = 0.06;

  /// The Site24x7-like monitoring org: one domain, many third-party
  /// prefixes, each hosting only that domain.
  bool monitoring_org = true;
  int monitoring_v4_prefixes = 66;
  int monitoring_v6_prefixes = 24;

  /// Domain visibility over the trailing year (paper Figure 7): share
  /// always visible, share visible exactly once; the rest intermittent.
  double always_visible_share = 0.40;
  double once_visible_share = 0.20;
  double intermittent_visibility = 0.72;

  /// Fraction of consistent DS domains changing v4/v6 prefix within the
  /// trailing year (paper: ~9% v4, ~6% v6) and changing addresses (~17%).
  double v4_prefix_change_share = 0.09;
  double v6_prefix_change_share = 0.06;
  double address_change_share = 0.08;

  /// RPKI adoption: share of orgs that ever create ROAs, ramping in over
  /// the window; mis-issued ROAs produce invalid ROV statuses.
  double rpki_adopter_share = 0.72;
  double rpki_wrong_origin_share = 0.08;
  double rpki_short_maxlen_share = 0.65;

  /// Port scanning: orgs silently dropping probes, and the per-service
  /// port-profile noise between the v4 and v6 side of one host.
  double scan_silent_org_share = 0.33;
  double scan_port_flip_probability = 0.12;

  /// Vantage-point probes (the RIPE Atlas role).
  int probe_count = 2000;
  double probe_full_coverage_share = 0.43;
  double probe_partial_coverage_share = 0.32;
  /// Among fully covered probes, share placed inside one detected pair.
  double probe_same_group_share = 0.96;
};

}  // namespace sp::synth
