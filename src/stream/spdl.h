// SPDL — the versioned, checksummed .spdl delta-log format between two
// .sibdb snapshots.
//
// A rolling campaign publishes month N+1 as a small patch against month
// N instead of shipping the full snapshot again: `diff_sibdb` compares
// two loaded SiblingDBs into a SibdbDelta (removed keys + upserted
// records), `write_spdl` serializes it, and `apply_spdl` patches a base
// snapshot into the next one — verifying an FNV-1a64 hash of the base
// file image before patching and of the produced image after, so a
// delta can never be applied to the wrong base or produce a snapshot
// that differs from the one the producer diffed against.
//
// File layout (little-endian, sections packed sequentially — the
// canonical layout admits exactly one encoding per delta, which is what
// makes the fuzz property "decode then encode reproduces the input
// byte-for-byte" meaningful):
//
//   header   (112 bytes)
//   removed  removed_count × 24B   {v4_addr u32, v4_len u8, v6_len u8,
//                                   pad u8[2], v6_addr u8[16]}
//   upserted upserted_count × 48B  {the same 24-byte key, similarity f64,
//                                   shared u32, v4_count u32, v6_count
//                                   u32, pad u8[4]}
//   label    NUL-terminated source label of the target snapshot
//
// Decoding validates magic/version/endianness, the exact sequential
// layout, the whole-file checksum (checksum field zeroed), zero pad
// bytes, prefix canonicality, strictly ascending keys per section, and
// that no key appears in both sections. Anything else is rejected with
// a reason — never a crash, never a silently-mangled delta.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/detect.h"
#include "netbase/prefix.h"
#include "serve/sibdb.h"

namespace sp::stream {

/// Current .spdl format version; bumped on any layout change.
inline constexpr std::uint32_t kSpdlVersion = 1;

/// A (v4, v6) record key; .sibdb and .spdl lists are ordered by it.
using SiblingKey = std::pair<Prefix, Prefix>;

[[nodiscard]] inline SiblingKey sibling_key(const core::SiblingPair& pair) {
  return {pair.v4, pair.v6};
}

/// The difference between two .sibdb snapshots: keys present only in the
/// base, and full records that are new or changed in the target
/// ("upsert wins" — apply replaces or inserts them).
struct SibdbDelta {
  std::vector<SiblingKey> removed;           // ascending; in base, not target
  std::vector<core::SiblingPair> upserted;   // ascending by key
  std::string label;                         // target snapshot's source label
  std::uint64_t base_hash = 0;               // FNV-1a64 of the base file image
  std::uint64_t base_pair_count = 0;
  std::uint64_t result_hash = 0;             // FNV-1a64 of the target file image

  [[nodiscard]] bool empty() const noexcept { return removed.empty() && upserted.empty(); }
};

/// FNV-1a64 over a whole file image (no field zeroing). This is the hash
/// the delta binds its base and result snapshots with.
[[nodiscard]] std::uint64_t sibdb_file_hash(std::span<const std::uint8_t> bytes) noexcept;

/// Diffs two loaded snapshots. Both must be sorted strictly ascending by
/// (v4, v6) key — every snapshot the detection pipeline writes is — and
/// `result_hash` assumes the target was produced by write_sibdb (the
/// delta reproduces it via write_sibdb at apply time). Returns nullopt
/// with a reason on unsorted input.
[[nodiscard]] std::optional<SibdbDelta> diff_sibdb(const serve::SiblingDB& base,
                                                   const serve::SiblingDB& target,
                                                   std::string* error = nullptr);

/// Serializes `delta` into the canonical .spdl image. The delta's lists
/// must satisfy the invariants decode enforces (diff_sibdb's output
/// always does); otherwise the image will be rejected by decode_spdl.
[[nodiscard]] std::vector<std::uint8_t> encode_spdl(const SibdbDelta& delta);

/// Parses and fully validates an .spdl image. Accepted images round-trip:
/// encode_spdl(*decode_spdl(bytes)) == bytes.
[[nodiscard]] std::optional<SibdbDelta> decode_spdl(std::span<const std::uint8_t> bytes,
                                                    std::string* error = nullptr);

[[nodiscard]] bool write_spdl(const std::string& path, const SibdbDelta& delta);

[[nodiscard]] std::optional<SibdbDelta> read_spdl(const std::string& path,
                                                  std::string* error = nullptr);

/// Patches `base` with `delta` and writes the resulting snapshot to
/// `out_path` (tmp file + rename, like the pipeline's atomic outputs).
/// Fails without touching `out_path` when the base hash or pair count
/// does not match the delta, a removed key is absent from the base, or
/// the produced image's hash differs from the delta's result_hash.
[[nodiscard]] bool apply_spdl(const serve::SiblingDB& base, const SibdbDelta& delta,
                              const std::string& out_path, std::string* error = nullptr);

}  // namespace sp::stream
