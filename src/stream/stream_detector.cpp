#include "stream/stream_detector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "core/detect_scan.h"
#include "obs/metrics.h"
#include "sketch/scan_sketch.h"

namespace sp::stream {

namespace {

constexpr std::size_t kChunk = 32;  // mirrors ParallelDetector's sharding

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Dense id of `prefix` on `side` (prefixes are sorted ascending), or
/// nullopt when the prefix is not in the index (dead or never born).
std::optional<std::uint32_t> find_dense(const core::DetectIndex::Side& side,
                                        const Prefix& prefix) {
  const auto it = std::lower_bound(side.prefixes.begin(), side.prefixes.end(), prefix);
  if (it == side.prefixes.end() || *it != prefix) return std::nullopt;
  return static_cast<std::uint32_t>(it - side.prefixes.begin());
}

/// The sorted dense ids on side `from` whose scan inputs the delta can
/// have touched (see the dirty-set invariant in the header).
std::vector<std::uint32_t> dirty_sources(const core::DetectIndex& index,
                                         const core::CorpusDelta& delta, Family from) {
  const Family to = from == Family::v4 ? Family::v6 : Family::v4;
  const core::DetectIndex::Side& from_side = index.side(from);
  const core::DetectIndex::Side& to_side = index.side(to);

  std::vector<std::uint8_t> dirty(from_side.prefix_count(), 0);
  // Changed prefixes on this side that survived the delta re-scan
  // themselves (their own element set changed, or they were just born).
  for (const core::PrefixDelta& entry : delta.side(from)) {
    if (const auto dense = find_dense(from_side, entry.prefix)) dirty[*dense] = 1;
  }
  // Sources sharing an element with a changed counterpart's old or new
  // set: old(c) ∪ new(c) = new(c) ∪ removed(c).
  const auto mark_postings = [&](core::DomainId element) {
    for (const std::uint32_t posting : from_side.postings_of(element)) dirty[posting] = 1;
  };
  for (const core::PrefixDelta& entry : delta.side(to)) {
    if (const auto dense = find_dense(to_side, entry.prefix)) {
      for (const core::DomainId element : to_side.elements_of(*dense)) mark_postings(element);
    }
    for (const core::DomainId element : entry.removed) mark_postings(element);
  }

  std::vector<std::uint32_t> sources;
  for (std::uint32_t dense = 0; dense < dirty.size(); ++dense) {
    if (dirty[dense] != 0) sources.push_back(dense);
  }
  return sources;
}

std::vector<std::uint32_t> all_sources(const core::DetectIndex::Side& side) {
  std::vector<std::uint32_t> sources(side.prefix_count());
  std::iota(sources.begin(), sources.end(), 0u);
  return sources;
}

}  // namespace

StreamDetector::StreamDetector(StreamOptions options)
    : options_(options), pool_(options.threads) {}

void StreamDetector::scan_sources(Family from, const std::vector<std::uint32_t>& sources,
                                  const sketch::SketchIndex* sketch_index) {
  const Family to = from == Family::v4 ? Family::v6 : Family::v4;
  const core::DetectIndex& index = overlay_.index();
  const core::DetectIndex::Side& from_side = index.side(from);
  const core::DetectIndex::Side& to_side = index.side(to);

  /// One re-scanned source's emission range inside a worker's buffer.
  struct Slice {
    std::uint32_t dense = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  struct Local {
    sketch::SketchStats stats;  // .scan carries the exact-path counters
    std::vector<core::SiblingPair> pairs;
    std::vector<Slice> slices;
    sketch::SketchScanScratch scan;

    explicit Local(std::size_t target_prefixes) : scan(target_prefixes) {}
  };

  const unsigned thread_count = pool_.thread_count();
  std::vector<Local> locals;
  locals.reserve(thread_count);
  for (unsigned worker = 0; worker < thread_count; ++worker) {
    locals.emplace_back(to_side.prefix_count());
  }

  std::atomic<std::size_t> next{0};
  const std::size_t source_count = sources.size();
  const std::function<void(unsigned)> job = [&](unsigned worker) {
    Local& local = locals[worker];
    for (;;) {
      // sp-lint: atomics-ok(work-stealing chunk cursor; claims need no
      // ordering, only uniqueness — the pool join publishes results)
      const std::size_t begin = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= source_count) return;
      const std::size_t end = std::min(source_count, begin + kChunk);
      for (std::size_t s = begin; s < end; ++s) {
        const std::uint32_t dense = sources[s];
        const auto emitted_begin = static_cast<std::uint32_t>(local.pairs.size());
        if (sketch_index != nullptr) {
          scan_source_sketch(from_side, to_side, sketch_index->signatures(from),
                             sketch_index->signatures(to), sketch_index->lsh(to),
                             sketch_index->params(), from, options_.metric, dense, local.scan,
                             local.pairs, local.stats);
        } else {
          core::detail::scan_source(from_side, to_side, from, options_.metric, dense,
                                    local.scan.scratch, local.pairs, local.stats.scan);
        }
        local.slices.push_back(
            {dense, emitted_begin, static_cast<std::uint32_t>(local.pairs.size())});
      }
    }
  };
  pool_.run(job);

  EmissionMap& map = emissions(from);
  for (Local& local : locals) {
    for (const Slice& slice : local.slices) {
      map[from_side.prefixes[slice.dense]] =
          std::vector<core::SiblingPair>(local.pairs.begin() + slice.begin,
                                         local.pairs.begin() + slice.end);
    }
    stats_.scan.prefixes_scanned += local.stats.scan.prefixes_scanned;
    stats_.scan.candidates_evaluated += local.stats.scan.candidates_evaluated;
    stats_.scan.pairs_emitted += local.stats.scan.pairs_emitted;
    if (sketch_index != nullptr) {
      stats_.sketch.scan.prefixes_scanned += local.stats.scan.prefixes_scanned;
      stats_.sketch.scan.candidates_evaluated += local.stats.scan.candidates_evaluated;
      stats_.sketch.scan.pairs_emitted += local.stats.scan.pairs_emitted;
      stats_.sketch.sources_total += local.stats.sources_total;
      stats_.sketch.sources_fallback += local.stats.sources_fallback;
      stats_.sketch.fallback_no_candidates += local.stats.fallback_no_candidates;
      stats_.sketch.fallback_low_estimate += local.stats.fallback_low_estimate;
      stats_.sketch.fallback_low_exact += local.stats.fallback_low_exact;
      stats_.sketch.lsh_candidates += local.stats.lsh_candidates;
      stats_.sketch.estimates_skipped += local.stats.estimates_skipped;
      stats_.sketch.survivors_verified += local.stats.survivors_verified;
      stats_.sketch.max_estimate_error =
          std::max(stats_.sketch.max_estimate_error, local.stats.max_estimate_error);
    }
  }
}

void StreamDetector::scan_all() {
  const core::DetectIndex& index = overlay_.index();
  emissions_v4_.clear();
  emissions_v6_.clear();
  const std::vector<std::uint32_t> v4_sources = all_sources(index.v4);
  const std::vector<std::uint32_t> v6_sources = all_sources(index.v6);
  stats_.dirty_v4 = v4_sources.size();
  stats_.dirty_v6 = v6_sources.size();

  const bool use_sketch = options_.strategy == core::DetectStrategy::Sketch &&
                          options_.metric == core::Metric::Jaccard &&
                          v4_sources.size() + v6_sources.size() >= options_.sketch_min_dirty;
  sketch::SketchIndex sketch_index;
  if (use_sketch) {
    const auto signature_start = std::chrono::steady_clock::now();
    sketch_index = sketch::SketchIndex::build(index, options_.sketch, &pool_);
    stats_.sketch.signature_build_ms = elapsed_ms(signature_start);
    stats_.used_sketch = true;
  }
  scan_sources(Family::v4, v4_sources, use_sketch ? &sketch_index : nullptr);
  scan_sources(Family::v6, v6_sources, use_sketch ? &sketch_index : nullptr);
}

void StreamDetector::rebuild_pairs() {
  // The same global merge as the batch engines: concatenate every
  // per-source emission, sort by (v4, v6), drop cross-direction
  // duplicates (both directions emit identical bytes for a shared pair —
  // Jaccard and friends are symmetric in the two set sizes).
  std::size_t total = 0;
  for (const auto& [prefix, emitted] : emissions_v4_) total += emitted.size();
  for (const auto& [prefix, emitted] : emissions_v6_) total += emitted.size();
  pairs_.clear();
  pairs_.reserve(total);
  for (const auto& [prefix, emitted] : emissions_v4_) {
    pairs_.insert(pairs_.end(), emitted.begin(), emitted.end());
  }
  for (const auto& [prefix, emitted] : emissions_v6_) {
    pairs_.insert(pairs_.end(), emitted.begin(), emitted.end());
  }
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
}

void StreamDetector::merge_changed(std::vector<core::SiblingPair> changed) {
  // Sort and key-dedup the touched keys, then walk them against the
  // previous sorted pair list: every key outside `changed` kept its
  // emitting sources bit-identical, so its record is reused verbatim; a
  // changed key's current record (if any source still emits it) carries
  // the re-scanned bytes. This is the "merge into the previous month's
  // sibling table" path — O(pairs + changed), no global re-sort.
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());

  /// A pair (a, b) can only ever be emitted by source a (v4→v6) or
  /// source b (v6→v4); both directions produce identical bytes for a
  /// shared pair, so the first hit is authoritative.
  const auto find_emitted = [this](const core::SiblingPair& key) -> const core::SiblingPair* {
    if (const auto it = emissions_v4_.find(key.v4); it != emissions_v4_.end()) {
      for (const core::SiblingPair& pair : it->second) {
        if (pair == key) return &pair;
      }
    }
    if (const auto it = emissions_v6_.find(key.v6); it != emissions_v6_.end()) {
      for (const core::SiblingPair& pair : it->second) {
        if (pair == key) return &pair;
      }
    }
    return nullptr;
  };

  std::vector<core::SiblingPair> merged;
  merged.reserve(pairs_.size() + changed.size());
  auto retained = pairs_.begin();
  for (const core::SiblingPair& key : changed) {
    while (retained != pairs_.end() && *retained < key) merged.push_back(*retained++);
    if (retained != pairs_.end() && *retained == key) ++retained;  // superseded record
    if (const core::SiblingPair* current = find_emitted(key)) merged.push_back(*current);
  }
  merged.insert(merged.end(), retained, pairs_.end());
  pairs_ = std::move(merged);
}

void StreamDetector::init(core::DetectIndex index) {
  stats_ = StreamApplyStats{};
  stats_.scan.threads_used = pool_.thread_count();
  overlay_.reset(std::move(index));
  initialized_ = true;

  const auto rescan_start = std::chrono::steady_clock::now();
  scan_all();
  stats_.rescan_ms = elapsed_ms(rescan_start);
  const auto merge_start = std::chrono::steady_clock::now();
  rebuild_pairs();
  stats_.merge_ms = elapsed_ms(merge_start);
  stats_.sources_total =
      overlay_.index().v4.prefix_count() + overlay_.index().v6.prefix_count();

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("stream.inits").add();
  registry.counter("stream.pairs_current").add(static_cast<std::int64_t>(pairs_.size()));
}

void StreamDetector::apply(const core::CorpusDelta& delta) {
  if (!initialized_) throw std::logic_error("StreamDetector::apply before init");
  const auto apply_start = std::chrono::steady_clock::now();
  stats_ = StreamApplyStats{};
  stats_.scan.threads_used = pool_.thread_count();
  stats_.delta_prefixes = delta.prefix_count();
  stats_.delta_edges = delta.edge_count();

  overlay_.apply(delta);
  const core::DetectIndex& index = overlay_.index();
  std::vector<std::uint32_t> dirty_v4 = dirty_sources(index, delta, Family::v4);
  std::vector<std::uint32_t> dirty_v6 = dirty_sources(index, delta, Family::v6);
  stats_.apply_index_ms = elapsed_ms(apply_start);
  stats_.sources_total = index.v4.prefix_count() + index.v6.prefix_count();

  const auto rescan_start = std::chrono::steady_clock::now();
  const std::size_t dirty_total = dirty_v4.size() + dirty_v6.size();
  if (static_cast<double>(dirty_total) >
      options_.full_rescan_fraction * static_cast<double>(stats_.sources_total)) {
    stats_.full_rescan = true;
    scan_all();
    stats_.rescan_ms = elapsed_ms(rescan_start);
    const auto merge_start = std::chrono::steady_clock::now();
    rebuild_pairs();
    stats_.merge_ms = elapsed_ms(merge_start);
  } else {
    stats_.dirty_v4 = dirty_v4.size();
    stats_.dirty_v6 = dirty_v6.size();

    // The keys the incremental merge must re-derive: every pair a
    // touched source emitted before the delta or emits after it. A
    // touched source is a re-scanned dirty one or a changed prefix
    // (dead prefixes appear only in the delta).
    std::vector<core::SiblingPair> changed;
    const auto capture = [this, &index](Family from, const std::vector<std::uint32_t>& dirty,
                                        const std::vector<core::PrefixDelta>& entries,
                                        std::vector<core::SiblingPair>& out) {
      const EmissionMap& map = emissions(from);
      const core::DetectIndex::Side& side = index.side(from);
      for (const std::uint32_t dense : dirty) {
        if (const auto it = map.find(side.prefixes[dense]); it != map.end()) {
          out.insert(out.end(), it->second.begin(), it->second.end());
        }
      }
      for (const core::PrefixDelta& entry : entries) {
        if (const auto it = map.find(entry.prefix); it != map.end()) {
          out.insert(out.end(), it->second.begin(), it->second.end());
        }
      }
    };
    capture(Family::v4, dirty_v4, delta.v4, changed);
    capture(Family::v6, dirty_v6, delta.v6, changed);

    // Changed prefixes lose their retained emissions first: dead ones
    // stay gone, surviving ones are replaced by the re-scan below.
    for (const core::PrefixDelta& entry : delta.v4) emissions_v4_.erase(entry.prefix);
    for (const core::PrefixDelta& entry : delta.v6) emissions_v6_.erase(entry.prefix);

    const bool use_sketch = options_.strategy == core::DetectStrategy::Sketch &&
                            options_.metric == core::Metric::Jaccard &&
                            dirty_total >= options_.sketch_min_dirty;
    sketch::SketchIndex sketch_index;
    if (use_sketch) {
      const auto signature_start = std::chrono::steady_clock::now();
      sketch_index = sketch::SketchIndex::build(index, options_.sketch, &pool_);
      stats_.sketch.signature_build_ms = elapsed_ms(signature_start);
      stats_.used_sketch = true;
    }
    scan_sources(Family::v4, dirty_v4, use_sketch ? &sketch_index : nullptr);
    scan_sources(Family::v6, dirty_v6, use_sketch ? &sketch_index : nullptr);

    // Post-scan emissions of the same touched sources (dead prefixes
    // have none): together with the pre-scan capture this is the full
    // key set whose membership can have changed.
    capture(Family::v4, dirty_v4, delta.v4, changed);
    capture(Family::v6, dirty_v6, delta.v6, changed);
    stats_.rescan_ms = elapsed_ms(rescan_start);

    const auto merge_start = std::chrono::steady_clock::now();
    merge_changed(std::move(changed));
    stats_.merge_ms = elapsed_ms(merge_start);
  }

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("stream.applies").add();
  registry.counter("stream.delta_edges").add(static_cast<std::int64_t>(stats_.delta_edges));
  registry.counter("stream.dirty_sources")
      .add(static_cast<std::int64_t>(stats_.dirty_v4 + stats_.dirty_v6));
  registry.histogram("stream.apply_us")
      .record(static_cast<std::uint64_t>(elapsed_ms(apply_start) * 1000.0));
}

}  // namespace sp::stream
