// Delta hot-reload: applying an .spdl patch to a live SiblingService.
//
// The RELOAD control verbs of sp_serve and the net front-end accept a
// path; when it ends in ".spdl" they route here instead of loading a
// full snapshot. The currently served snapshot is the patch base — its
// mapped bytes are hashed against the delta's base_hash, so a delta can
// never be applied to a generation it was not diffed from, even when
// the file behind the snapshot was replaced on disk after loading. The
// patched snapshot is written next to the delta (extension swapped to
// ".sibdb", tmp + rename) and swapped in through the ordinary
// SiblingService::load RCU path: in-flight queries drain on the old
// generation, new ones see the patched one.
#pragma once

#include <string>

#include "serve/service.h"

namespace sp::stream {

/// True when `path` names a delta log by extension (".spdl") — the
/// RELOAD verbs use this to pick the patch path over a full load.
[[nodiscard]] bool is_spdl_path(const std::string& path);

/// The snapshot path an applied delta is written to: `spdl_path` with
/// its extension replaced by ".sibdb" (appended when there is none).
[[nodiscard]] std::string spdl_result_path(const std::string& spdl_path);

/// Reads the delta at `spdl_path`, patches the service's current
/// snapshot, writes the result to spdl_result_path(spdl_path), and hot-
/// swaps it in. On any failure — no snapshot loaded yet, invalid delta,
/// base-hash mismatch, result-hash mismatch, I/O — returns false with a
/// reason in `error` and the service keeps serving its current snapshot.
[[nodiscard]] bool apply_delta_and_reload(serve::SiblingService& service,
                                          const std::string& spdl_path,
                                          std::string* error = nullptr);

}  // namespace sp::stream
