#include "stream/spdl.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "io/durable.h"

namespace sp::stream {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'S', 'I', 'B', 'D', 'L', '\x01'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint64_t kHeaderBytes = 112;
constexpr std::uint64_t kRemovedRecordBytes = 24;
constexpr std::uint64_t kUpsertRecordBytes = 48;

// The on-disk header. Field order is the file layout; little-endian on
// the platforms this targets (the endian_tag rejects a mismatched
// reader), same convention as the .sibdb header.
struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint64_t header_bytes;
  std::uint64_t file_bytes;
  std::uint64_t base_hash;
  std::uint64_t base_pair_count;
  std::uint64_t result_hash;
  std::uint64_t checksum;  // FNV-1a64 over the file with this field zeroed
  std::uint64_t removed_count;
  std::uint64_t upserted_count;
  std::uint64_t off_removed;
  std::uint64_t off_upserted;
  std::uint64_t off_label;
  std::uint64_t label_bytes;
};
static_assert(sizeof(Header) == kHeaderBytes, "spdl header must stay 112 bytes");

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size, std::uint64_t hash) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001B3ull;
  }
  return hash;
}

/// Checksum of a whole file image with the header's checksum field zeroed.
std::uint64_t file_checksum(const std::uint8_t* data, std::size_t size) {
  constexpr std::uint64_t kBasis = 0xCBF29CE484222325ull;
  const std::size_t checksum_offset = offsetof(Header, checksum);
  std::uint64_t hash = fnv1a64(data, checksum_offset, kBasis);
  const std::uint8_t zeros[sizeof(std::uint64_t)] = {};
  hash = fnv1a64(zeros, sizeof zeros, hash);
  return fnv1a64(data + checksum_offset + sizeof(std::uint64_t),
                 size - checksum_offset - sizeof(std::uint64_t), hash);
}

void fail(std::string* error, std::string_view reason) {
  if (error != nullptr) *error = reason;
}

/// True when the v6 network address has all bits past `length` zero.
bool v6_host_bits_zero(const std::uint8_t* bytes, unsigned length) {
  for (unsigned bit = length; bit < 128; ++bit) {
    if ((bytes[bit / 8] >> (7u - bit % 8u)) & 1u) return false;
  }
  return true;
}

void put_key(std::uint8_t* out, const SiblingKey& key) {
  const std::uint32_t v4 = key.first.address().v4().value();
  const std::uint8_t v4_len = static_cast<std::uint8_t>(key.first.length());
  const std::uint8_t v6_len = static_cast<std::uint8_t>(key.second.length());
  std::memcpy(out, &v4, 4);
  out[4] = v4_len;
  out[5] = v6_len;
  out[6] = 0;
  out[7] = 0;
  std::memcpy(out + 8, key.second.address().v6().bytes().data(), 16);
}

/// Decodes and validates one 24-byte key. Returns false with a reason on
/// non-canonical prefixes or nonzero pad bytes.
bool get_key(const std::uint8_t* in, SiblingKey& key, std::string* error) {
  if (in[6] != 0 || in[7] != 0) {
    fail(error, "nonzero key pad bytes");
    return false;
  }
  std::uint32_t v4 = 0;
  std::memcpy(&v4, in, 4);
  const std::uint8_t v4_len = in[4];
  const std::uint8_t v6_len = in[5];
  if (v4_len > 32 || v6_len > 128) {
    fail(error, "prefix length out of range");
    return false;
  }
  if (v4_len < 32 && (v4 & (0xFFFFFFFFu >> v4_len)) != 0) {
    fail(error, "v4 prefix not canonical");
    return false;
  }
  if (!v6_host_bits_zero(in + 8, v6_len)) {
    fail(error, "v6 prefix not canonical");
    return false;
  }
  IPv6Address::Bytes v6_bytes;
  std::memcpy(v6_bytes.data(), in + 8, 16);
  key.first = Prefix::of(IPAddress(IPv4Address(v4)), v4_len);
  key.second = Prefix::of(IPAddress(IPv6Address(v6_bytes)), v6_len);
  return true;
}

/// Bitwise payload equality — the identity the byte-identical pipeline
/// cares about, not a tolerance comparison.
bool same_payload(const core::SiblingPair& a, const core::SiblingPair& b) {
  return std::memcmp(&a.similarity, &b.similarity, sizeof(double)) == 0 &&
         a.shared_domains == b.shared_domains && a.v4_domain_count == b.v4_domain_count &&
         a.v6_domain_count == b.v6_domain_count;
}

bool read_file_bytes(const std::string& path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamoff size = in.tellg();
  if (size < 0) return false;
  out.resize(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out.data()), size);
  return static_cast<bool>(in);
}

}  // namespace

std::uint64_t sibdb_file_hash(std::span<const std::uint8_t> bytes) noexcept {
  return fnv1a64(bytes.data(), bytes.size(), 0xCBF29CE484222325ull);
}

std::optional<SibdbDelta> diff_sibdb(const serve::SiblingDB& base, const serve::SiblingDB& target,
                                     std::string* error) {
  SibdbDelta delta;
  delta.label = std::string(target.source_label());
  delta.base_hash = sibdb_file_hash(base.raw_bytes());
  delta.base_pair_count = base.size();
  delta.result_hash = sibdb_file_hash(target.raw_bytes());

  const auto key_at = [](const serve::SiblingDB& db, std::size_t i) {
    return SiblingKey{db.v4_prefix(i), db.v6_prefix(i)};
  };
  std::size_t bi = 0;
  std::size_t ti = 0;
  SiblingKey prev_base;
  SiblingKey prev_target;
  while (bi < base.size() || ti < target.size()) {
    SiblingKey base_key;
    SiblingKey target_key;
    // Sortedness is checked when an index advances: prev_* always holds
    // the key at index - 1 of the respective list.
    if (bi < base.size()) {
      base_key = key_at(base, bi);
      if (bi > 0 && !(prev_base < base_key)) {
        fail(error, "base snapshot is not strictly ascending by key");
        return std::nullopt;
      }
    }
    if (ti < target.size()) {
      target_key = key_at(target, ti);
      if (ti > 0 && !(prev_target < target_key)) {
        fail(error, "target snapshot is not strictly ascending by key");
        return std::nullopt;
      }
    }
    if (ti == target.size() || (bi < base.size() && base_key < target_key)) {
      delta.removed.push_back(base_key);
      prev_base = base_key;
      ++bi;
    } else if (bi == base.size() || target_key < base_key) {
      delta.upserted.push_back(target.pair(ti));
      prev_target = target_key;
      ++ti;
    } else {
      if (!same_payload(base.pair(bi), target.pair(ti))) {
        delta.upserted.push_back(target.pair(ti));
      }
      prev_base = base_key;
      prev_target = target_key;
      ++bi;
      ++ti;
    }
  }
  return delta;
}

std::vector<std::uint8_t> encode_spdl(const SibdbDelta& delta) {
  Header header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kSpdlVersion;
  header.endian_tag = kEndianTag;
  header.header_bytes = kHeaderBytes;
  header.base_hash = delta.base_hash;
  header.base_pair_count = delta.base_pair_count;
  header.result_hash = delta.result_hash;
  header.removed_count = delta.removed.size();
  header.upserted_count = delta.upserted.size();
  header.off_removed = kHeaderBytes;
  header.off_upserted = header.off_removed + header.removed_count * kRemovedRecordBytes;
  header.off_label = header.off_upserted + header.upserted_count * kUpsertRecordBytes;
  header.label_bytes = delta.label.size() + 1;  // NUL-terminated
  header.file_bytes = header.off_label + header.label_bytes;

  std::vector<std::uint8_t> image(header.file_bytes, 0);
  for (std::size_t i = 0; i < delta.removed.size(); ++i) {
    put_key(image.data() + header.off_removed + i * kRemovedRecordBytes, delta.removed[i]);
  }
  for (std::size_t i = 0; i < delta.upserted.size(); ++i) {
    std::uint8_t* record = image.data() + header.off_upserted + i * kUpsertRecordBytes;
    const core::SiblingPair& pair = delta.upserted[i];
    put_key(record, sibling_key(pair));
    std::memcpy(record + 24, &pair.similarity, 8);
    std::memcpy(record + 32, &pair.shared_domains, 4);
    std::memcpy(record + 36, &pair.v4_domain_count, 4);
    std::memcpy(record + 40, &pair.v6_domain_count, 4);
    // record + 44 .. 47 stay zero (pad)
  }
  std::memcpy(image.data() + header.off_label, delta.label.data(), delta.label.size());
  std::memcpy(image.data(), &header, sizeof header);
  const std::uint64_t checksum = file_checksum(image.data(), image.size());
  std::memcpy(image.data() + offsetof(Header, checksum), &checksum, sizeof checksum);
  return image;
}

std::optional<SibdbDelta> decode_spdl(std::span<const std::uint8_t> bytes, std::string* error) {
  const auto reject = [&](std::string_view reason) {
    fail(error, reason);
    return std::optional<SibdbDelta>{};
  };
  if (bytes.size() < kHeaderBytes) return reject("file shorter than the spdl header");
  Header header{};
  std::memcpy(&header, bytes.data(), sizeof header);

  if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0) return reject("bad magic");
  if (header.version != kSpdlVersion) return reject("unsupported spdl version");
  if (header.endian_tag != kEndianTag) return reject("endianness mismatch");
  if (header.header_bytes != kHeaderBytes) return reject("bad header size");
  if (header.file_bytes != bytes.size()) return reject("declared size does not match the file");

  // The layout is canonical: sections are packed sequentially with no
  // gaps, so each offset is fully determined by the counts.
  const std::uint64_t payload = bytes.size() - kHeaderBytes;
  if (header.removed_count > payload / kRemovedRecordBytes ||
      header.upserted_count > payload / kUpsertRecordBytes) {
    return reject("record count out of bounds");
  }
  if (header.off_removed != kHeaderBytes ||
      header.off_upserted != header.off_removed + header.removed_count * kRemovedRecordBytes ||
      header.off_label != header.off_upserted + header.upserted_count * kUpsertRecordBytes) {
    return reject("sections are not packed sequentially");
  }
  if (header.label_bytes == 0 || header.off_label > bytes.size() ||
      header.label_bytes != bytes.size() - header.off_label) {
    return reject("label section does not end the file");
  }
  if (bytes[bytes.size() - 1] != 0) return reject("label is not NUL-terminated");
  for (std::uint64_t i = header.off_label; i + 1 < bytes.size(); ++i) {
    if (bytes[i] == 0) return reject("label has an interior NUL");
  }
  if (file_checksum(bytes.data(), bytes.size()) != header.checksum) {
    return reject("checksum mismatch");
  }

  SibdbDelta delta;
  delta.base_hash = header.base_hash;
  delta.base_pair_count = header.base_pair_count;
  delta.result_hash = header.result_hash;
  delta.label.assign(reinterpret_cast<const char*>(bytes.data() + header.off_label),
                     header.label_bytes - 1);

  delta.removed.resize(header.removed_count);
  for (std::uint64_t i = 0; i < header.removed_count; ++i) {
    std::string key_error;
    if (!get_key(bytes.data() + header.off_removed + i * kRemovedRecordBytes, delta.removed[i],
                 &key_error)) {
      return reject("removed[" + std::to_string(i) + "]: " + key_error);
    }
    if (i > 0 && !(delta.removed[i - 1] < delta.removed[i])) {
      return reject("removed keys are not strictly ascending");
    }
  }
  delta.upserted.resize(header.upserted_count);
  for (std::uint64_t i = 0; i < header.upserted_count; ++i) {
    const std::uint8_t* record = bytes.data() + header.off_upserted + i * kUpsertRecordBytes;
    SiblingKey key;
    std::string key_error;
    if (!get_key(record, key, &key_error)) {
      return reject("upserted[" + std::to_string(i) + "]: " + key_error);
    }
    core::SiblingPair& pair = delta.upserted[i];
    pair.v4 = key.first;
    pair.v6 = key.second;
    std::memcpy(&pair.similarity, record + 24, 8);
    std::memcpy(&pair.shared_domains, record + 32, 4);
    std::memcpy(&pair.v4_domain_count, record + 36, 4);
    std::memcpy(&pair.v6_domain_count, record + 40, 4);
    if (record[44] != 0 || record[45] != 0 || record[46] != 0 || record[47] != 0) {
      return reject("upserted[" + std::to_string(i) + "]: nonzero record pad bytes");
    }
    if (i > 0 && !(sibling_key(delta.upserted[i - 1]) < key)) {
      return reject("upserted keys are not strictly ascending");
    }
  }

  // Both lists are sorted, so one linear merge proves disjointness.
  std::size_t ri = 0;
  for (const core::SiblingPair& pair : delta.upserted) {
    const SiblingKey key = sibling_key(pair);
    while (ri < delta.removed.size() && delta.removed[ri] < key) ++ri;
    if (ri < delta.removed.size() && delta.removed[ri] == key) {
      return reject("a key appears in both removed and upserted");
    }
  }
  return delta;
}

bool write_spdl(const std::string& path, const SibdbDelta& delta) {
  const std::vector<std::uint8_t> image = encode_spdl(delta);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  return static_cast<bool>(out);
}

std::optional<SibdbDelta> read_spdl(const std::string& path, std::string* error) {
  std::vector<std::uint8_t> bytes;
  if (!read_file_bytes(path, bytes)) {
    fail(error, "cannot read " + path);
    return std::nullopt;
  }
  return decode_spdl(bytes, error);
}

bool apply_spdl(const serve::SiblingDB& base, const SibdbDelta& delta,
                const std::string& out_path, std::string* error) {
  if (base.size() != delta.base_pair_count) {
    fail(error, "base snapshot has " + std::to_string(base.size()) + " pairs, delta expects " +
                    std::to_string(delta.base_pair_count));
    return false;
  }
  if (sibdb_file_hash(base.raw_bytes()) != delta.base_hash) {
    fail(error, "base snapshot hash does not match the delta's base_hash");
    return false;
  }

  std::vector<core::SiblingPair> merged;
  merged.reserve(base.size() + delta.upserted.size());
  std::size_t ri = 0;
  std::size_t ui = 0;
  SiblingKey prev;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const SiblingKey key{base.v4_prefix(i), base.v6_prefix(i)};
    if (i > 0 && !(prev < key)) {
      fail(error, "base snapshot is not strictly ascending by key");
      return false;
    }
    prev = key;
    while (ui < delta.upserted.size() && sibling_key(delta.upserted[ui]) < key) {
      merged.push_back(delta.upserted[ui++]);
    }
    if (ri < delta.removed.size() && delta.removed[ri] < key) {
      fail(error, "a removed key is absent from the base snapshot");
      return false;
    }
    if (ri < delta.removed.size() && delta.removed[ri] == key) {
      ++ri;
      continue;
    }
    if (ui < delta.upserted.size() && sibling_key(delta.upserted[ui]) == key) {
      merged.push_back(delta.upserted[ui++]);
      continue;
    }
    merged.push_back(base.pair(i));
  }
  if (ri != delta.removed.size()) {
    fail(error, "a removed key is absent from the base snapshot");
    return false;
  }
  while (ui < delta.upserted.size()) merged.push_back(delta.upserted[ui++]);

  const std::string tmp_path = out_path + ".tmp";
  if (!serve::write_sibdb(tmp_path, merged, delta.label)) {
    fail(error, "writing " + tmp_path + " failed");
    return false;
  }
  std::vector<std::uint8_t> produced;
  if (!read_file_bytes(tmp_path, produced)) {
    std::remove(tmp_path.c_str());
    fail(error, "cannot re-read " + tmp_path);
    return false;
  }
  if (sibdb_file_hash(produced) != delta.result_hash) {
    std::remove(tmp_path.c_str());
    fail(error, "patched snapshot hash does not match the delta's result_hash");
    return false;
  }
  // Durable publication (fsync file, rename, fsync dir): sp_serve RELOADs
  // this path immediately after, so a crash must never leave the directory
  // entry pointing at a half-published (or vanished) snapshot.
  std::string rename_error;
  if (!io::durable_rename(tmp_path, out_path, &rename_error)) {
    std::remove(tmp_path.c_str());
    if (error != nullptr) *error = "publishing " + out_path + " failed: " + rename_error;
    return false;
  }
  return true;
}

}  // namespace sp::stream
