// StreamDetector — incremental delta-driven sibling detection.
//
// The longitudinal campaign re-ran detection from scratch every month
// even though consecutive corpora differ by a few percent of their
// domain→prefix edges. The stream engine keeps the previous month's
// state — the flat CSR index (behind a DetectIndexOverlay) plus every
// source prefix's emitted best-match pairs — applies a CorpusDelta, and
// re-scores only the *dirty* sources: the prefixes whose scan inputs the
// delta can have touched.
//
// Dirty-set invariant (the byte-identity argument, DESIGN.md §3.8): the
// per-source scan (core/detect_scan.h) of a source prefix s on side F
// depends on exactly (a) s's own element set, (b) the counterpart
// posting list of each of s's elements, and (c) the element-set size of
// every candidate those postings name. A changed counterpart prefix c
// alters (b)/(c) only for sources sharing an element with c's old or
// new set, and old(c) ∪ new(c) = new(c) ∪ removed(c). So
//
//   dirty(F) = { changed prefixes on F, alive after the delta }
//            ∪ { p ∈ postings_F(e) : c changed on the counterpart side,
//                e ∈ new_set(c) ∪ removed(c) }
//
// and every source outside dirty(F) sees bit-identical scan inputs —
// its retained emission is the emission a from-scratch run would
// produce. Dirty sources are re-scanned with the *same* scan_source
// (same arithmetic, same kTieEpsilon tie rules); dead prefixes'
// emissions are dropped; and the sorted pair list is patched in one
// linear merge pass over exactly the keys whose emitting sources were
// touched (a key's presence is re-derived from the two per-source
// emission lists that can emit it, so cross-direction dedup is
// preserved without a global re-sort). The result is byte-identical to
// a from-scratch exact run over the post-delta index — property-tested
// across seeds, event mixes, and thread counts.
//
// Large dirty sets can optionally route through the sketch LSH filter
// (sketch/scan_sketch.h, StreamOptions::strategy = Sketch): signatures
// are rebuilt over the post-delta index and each dirty source takes the
// shared sketch scan, which preserves byte-identity by the same
// argument as the batch sketch engine. When the dirty set approaches
// the whole universe, dirty bookkeeping stops paying; past
// full_rescan_fraction the engine just re-scans every source (still
// skipping the corpus rebuild the batch path would pay).
//
// Threading: like ParallelDetector, the detector owns a WorkerPool and
// shards (re-)scans in fixed chunks over a work-stealing cursor;
// workers only append to worker-local buffers, and per-source results
// are keyed by prefix, so output is independent of the thread count.
// Not reentrant; no internal locking — single-owner like the batch
// engines.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/corpus_delta.h"
#include "core/detect.h"
#include "core/detect_overlay.h"
#include "core/worker_pool.h"
#include "sketch/detect_sketch.h"

namespace sp::stream {

struct StreamOptions {
  core::Metric metric = core::Metric::Jaccard;
  /// Worker threads for (re-)scans; 0 picks hardware concurrency.
  unsigned threads = 1;
  /// Sketch routes dirty re-scans through the LSH filter once the dirty
  /// set reaches sketch_min_dirty sources (building signatures over the
  /// new index costs O(corpus), so tiny dirty sets stay exact).
  core::DetectStrategy strategy = core::DetectStrategy::Exact;
  std::size_t sketch_min_dirty = 4096;
  sketch::SketchParams sketch;
  /// When dirty sources exceed this fraction of all sources, re-scan
  /// everything instead of tracking per-source dirtiness.
  double full_rescan_fraction = 0.5;
};

/// Counters describing one apply() (or init()) call.
struct StreamApplyStats {
  std::size_t delta_prefixes = 0;   // changed prefixes in the delta
  std::size_t delta_edges = 0;      // added + removed domain→prefix edges
  std::size_t dirty_v4 = 0;         // v4 sources re-scanned
  std::size_t dirty_v6 = 0;         // v6 sources re-scanned
  std::size_t sources_total = 0;    // post-delta universe size, both sides
  bool full_rescan = false;         // dirty set crossed full_rescan_fraction
  bool used_sketch = false;         // dirty re-scan took the LSH filter
  core::DetectStats scan;           // re-scan counters (shared scan fills)
  sketch::SketchStats sketch;       // filled when used_sketch
  double apply_index_ms = 0.0;      // overlay apply + dirty-set derivation
  double rescan_ms = 0.0;
  double merge_ms = 0.0;
};

class StreamDetector {
 public:
  explicit StreamDetector(StreamOptions options = {});

  StreamDetector(const StreamDetector&) = delete;
  StreamDetector& operator=(const StreamDetector&) = delete;

  /// (Re-)initializes from a full index: the from-scratch boundary.
  /// Scans every source and records per-source emissions.
  void init(core::DetectIndex index);

  [[nodiscard]] bool initialized() const noexcept { return initialized_; }

  /// The current (post-delta) index.
  [[nodiscard]] const core::DetectIndex& index() const noexcept { return overlay_.index(); }

  /// Applies a corpus delta and re-scores exactly the dirty sources.
  /// Throws std::logic_error before init(), std::invalid_argument when
  /// the delta is inconsistent with the current index (the index is
  /// unchanged in that case).
  void apply(const core::CorpusDelta& delta);

  /// The current sibling list: byte-identical to a from-scratch exact
  /// run over index(). Sorted and deduplicated like the batch engines.
  [[nodiscard]] const std::vector<core::SiblingPair>& pairs() const noexcept { return pairs_; }

  /// Counters of the most recent init()/apply() call.
  [[nodiscard]] const StreamApplyStats& last_stats() const noexcept { return stats_; }

 private:
  using EmissionMap = std::unordered_map<Prefix, std::vector<core::SiblingPair>>;

  /// Re-scans `sources` (sorted dense ids on side `from`) against the
  /// current index, replacing their entries in the direction's emission
  /// map. `use_sketch` routes each source through the shared sketch scan.
  void scan_sources(Family from, const std::vector<std::uint32_t>& sources,
                    const sketch::SketchIndex* sketch_index);
  void scan_all();
  void rebuild_pairs();
  /// Splices the re-scanned sources' emission changes into the sorted
  /// pair list in one linear pass (no global re-sort). `changed` holds
  /// the keys whose emitting sources were touched — the union of those
  /// sources' pre- and post-scan emissions.
  void merge_changed(std::vector<core::SiblingPair> changed);
  [[nodiscard]] EmissionMap& emissions(Family from) noexcept {
    return from == Family::v4 ? emissions_v4_ : emissions_v6_;
  }

  StreamOptions options_;
  core::WorkerPool pool_;
  core::DetectIndexOverlay overlay_;
  bool initialized_ = false;
  EmissionMap emissions_v4_;  // v4→v6 direction, keyed by source prefix
  EmissionMap emissions_v6_;  // v6→v4 direction
  std::vector<core::SiblingPair> pairs_;
  StreamApplyStats stats_;
};

}  // namespace sp::stream
