#include "stream/reload.h"

#include <string_view>

#include "stream/spdl.h"

namespace sp::stream {

bool is_spdl_path(const std::string& path) {
  constexpr std::string_view kSuffix = ".spdl";
  return path.size() >= kSuffix.size() &&
         path.compare(path.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0;
}

std::string spdl_result_path(const std::string& spdl_path) {
  const std::size_t slash = spdl_path.find_last_of('/');
  const std::size_t dot = spdl_path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return spdl_path + ".sibdb";
  }
  return spdl_path.substr(0, dot) + ".sibdb";
}

bool apply_delta_and_reload(serve::SiblingService& service, const std::string& spdl_path,
                            std::string* error) {
  const std::shared_ptr<const serve::Snapshot> snapshot = service.snapshot();
  if (snapshot == nullptr) {
    if (error != nullptr) *error = "no snapshot loaded; a delta needs a base to patch";
    return false;
  }
  const std::optional<SibdbDelta> delta = read_spdl(spdl_path, error);
  if (!delta) return false;
  const std::string result_path = spdl_result_path(spdl_path);
  if (!apply_spdl(snapshot->db, *delta, result_path, error)) return false;
  return service.load(result_path, error);
}

}  // namespace sp::stream
