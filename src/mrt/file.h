// Whole-file MRT dump I/O.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mrt/codec.h"

namespace sp::mrt {

/// Writes `records` as one MRT dump file. Returns false on I/O failure.
[[nodiscard]] bool write_file(const std::string& path, std::span<const MrtRecord> records);

/// Reads and parses an MRT dump file. Returns nullopt on I/O or parse
/// failure (reason in `error` when non-null).
[[nodiscard]] std::optional<std::vector<MrtRecord>> read_file(const std::string& path,
                                                              std::string* error = nullptr);

}  // namespace sp::mrt
