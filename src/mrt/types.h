// MRT (RFC 6396) record model for TABLE_DUMP_V2 RIB dumps — the format the
// Routeviews collectors publish and the pipeline's source of IP→prefix→AS
// mappings.
//
// Only the TABLE_DUMP_V2 type is modeled (PEER_INDEX_TABLE,
// RIB_IPV4_UNICAST, RIB_IPV6_UNICAST): that is what a RIB snapshot consumer
// needs. AS numbers are always 4 bytes, as TABLE_DUMP_V2 mandates.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "netbase/prefix.h"

namespace sp::mrt {

/// MRT top-level types (subset).
enum class MrtType : std::uint16_t {
  TableDumpV2 = 13,
  Bgp4mp = 16,
};

/// TABLE_DUMP_V2 subtypes (subset).
enum class TableDumpV2Subtype : std::uint16_t {
  PeerIndexTable = 1,
  RibIpv4Unicast = 2,
  RibIpv6Unicast = 4,
};

/// BGP4MP subtypes (subset; only the 4-byte-AS variants are produced).
enum class Bgp4mpSubtype : std::uint16_t {
  StateChange = 0,
  Message = 1,
  MessageAs4 = 4,
  StateChangeAs4 = 5,
};

/// One peer in the PEER_INDEX_TABLE.
struct PeerEntry {
  std::array<std::uint8_t, 4> bgp_id{};
  IPAddress address;  // family drives the address-size bit in peer type
  std::uint32_t asn = 0;

  friend bool operator==(const PeerEntry&, const PeerEntry&) = default;
};

struct PeerIndexTable {
  std::array<std::uint8_t, 4> collector_bgp_id{};
  std::string view_name;
  std::vector<PeerEntry> peers;

  friend bool operator==(const PeerIndexTable&, const PeerIndexTable&) = default;
};

/// BGP ORIGIN attribute values (RFC 4271).
enum class Origin : std::uint8_t { Igp = 0, Egp = 1, Incomplete = 2 };

struct AsPathSegment {
  enum class Type : std::uint8_t { Set = 1, Sequence = 2 };
  Type type = Type::Sequence;
  std::vector<std::uint32_t> asns;

  friend bool operator==(const AsPathSegment&, const AsPathSegment&) = default;
};

/// An attribute the codec does not interpret; kept raw so records round-trip.
struct RawAttribute {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const RawAttribute&, const RawAttribute&) = default;
};

/// Decoded BGP path attributes of one RIB entry.
struct PathAttributes {
  Origin origin = Origin::Igp;
  std::vector<AsPathSegment> as_path;
  std::optional<IPv4Address> next_hop_v4;  // NEXT_HOP (type 3)
  /// IPv6 next hop, carried in the RFC 6396 truncated MP_REACH_NLRI.
  std::optional<IPv6Address> next_hop_v6;
  std::optional<std::uint32_t> med;         // MULTI_EXIT_DISC (type 4)
  std::optional<std::uint32_t> local_pref;  // LOCAL_PREF (type 5)
  std::vector<std::uint32_t> communities;   // COMMUNITY (type 8)
  std::vector<RawAttribute> unknown;        // anything else, preserved verbatim

  /// The origin AS: the last ASN of the AS_PATH (rightmost element of the
  /// final segment), nullopt for an empty path.
  [[nodiscard]] std::optional<std::uint32_t> origin_as() const noexcept {
    if (as_path.empty() || as_path.back().asns.empty()) return std::nullopt;
    return as_path.back().asns.back();
  }

  /// Convenience builder for the common "straight AS_SEQUENCE" case.
  [[nodiscard]] static PathAttributes sequence(std::vector<std::uint32_t> path) {
    PathAttributes attributes;
    attributes.as_path.push_back({AsPathSegment::Type::Sequence, std::move(path)});
    return attributes;
  }

  friend bool operator==(const PathAttributes&, const PathAttributes&) = default;
};

/// One peer's view of one prefix inside a RIB record.
struct RibEntry {
  std::uint16_t peer_index = 0;
  std::uint32_t originated_time = 0;
  PathAttributes attributes;

  friend bool operator==(const RibEntry&, const RibEntry&) = default;
};

/// One RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record (subtype follows the
/// prefix family).
struct RibRecord {
  std::uint32_t sequence = 0;
  Prefix prefix;
  std::vector<RibEntry> entries;

  friend bool operator==(const RibRecord&, const RibRecord&) = default;
};

/// A BGP UPDATE carried in a BGP4MP_MESSAGE_AS4 record (RFC 6396 section
/// 4.4.3). IPv4 routes travel in the classic withdrawn/NLRI fields; IPv6
/// routes in full-form MP_REACH_NLRI / MP_UNREACH_NLRI attributes
/// (RFC 4760) — both are folded into the prefix vectors here.
struct Bgp4mpUpdate {
  std::uint32_t peer_asn = 0;
  std::uint32_t local_asn = 0;
  IPAddress peer_address;   // family must match local_address
  IPAddress local_address;
  std::vector<Prefix> announced;   // with `attributes` as the path
  std::vector<Prefix> withdrawn;
  PathAttributes attributes;

  friend bool operator==(const Bgp4mpUpdate&, const Bgp4mpUpdate&) = default;
};

/// A BGP4MP_STATE_CHANGE_AS4 record (FSM transition of one peering).
struct Bgp4mpStateChange {
  std::uint32_t peer_asn = 0;
  std::uint32_t local_asn = 0;
  IPAddress peer_address;
  IPAddress local_address;
  std::uint16_t old_state = 0;  // RFC 4271 FSM states, 1=Idle .. 6=Established
  std::uint16_t new_state = 0;

  friend bool operator==(const Bgp4mpStateChange&, const Bgp4mpStateChange&) = default;
};

using MrtBody = std::variant<PeerIndexTable, RibRecord, Bgp4mpUpdate, Bgp4mpStateChange>;

struct MrtRecord {
  std::uint32_t timestamp = 0;
  MrtBody body;

  friend bool operator==(const MrtRecord&, const MrtRecord&) = default;
};

}  // namespace sp::mrt
