#include "mrt/file.h"

#include <fstream>
#include <iterator>

namespace sp::mrt {

bool write_file(const std::string& path, std::span<const MrtRecord> records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const auto bytes = encode_dump(records);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<std::vector<MrtRecord>> read_file(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  const std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                        std::istreambuf_iterator<char>());
  return decode_dump(bytes, error);
}

}  // namespace sp::mrt
