#include "mrt/codec.h"

#include <algorithm>

namespace sp::mrt {

namespace {

// BGP path attribute type codes (RFC 4271 / RFC 4760).
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrMed = 4;
constexpr std::uint8_t kAttrLocalPref = 5;
constexpr std::uint8_t kAttrCommunity = 8;
constexpr std::uint8_t kAttrMpReachNlri = 14;
constexpr std::uint8_t kAttrMpUnreachNlri = 15;

// Attribute flag bits.
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

// Peer-type bits in the PEER_INDEX_TABLE (RFC 6396 section 4.3.1).
constexpr std::uint8_t kPeerTypeV6Address = 0x01;
constexpr std::uint8_t kPeerTypeAs4 = 0x02;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void patch_u32(std::size_t offset, std::uint32_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 24);
    out_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
    out_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 3] = static_cast<std::uint8_t>(v);
  }
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }
  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

// Number of octets needed for a prefix of the given bit length.
std::size_t prefix_octets(unsigned bits) { return (bits + 7) / 8; }

// BGP message framing (RFC 4271 section 4.1).
constexpr std::uint8_t kBgpUpdate = 2;
constexpr std::size_t kBgpMarkerSize = 16;
constexpr std::uint16_t kAfiIpv4 = 1;
constexpr std::uint16_t kAfiIpv6 = 2;
constexpr std::uint8_t kSafiUnicast = 1;

void encode_attribute_header(ByteWriter& w, std::uint8_t flags, std::uint8_t type,
                             std::size_t length) {
  const bool extended = length > 0xff;
  w.u8(static_cast<std::uint8_t>(flags | (extended ? kFlagExtendedLength : 0)));
  w.u8(type);
  if (extended) {
    w.u16(static_cast<std::uint16_t>(length));
  } else {
    w.u8(static_cast<std::uint8_t>(length));
  }
}

// Writes one NLRI prefix (length octet + minimal prefix octets).
void encode_wire_prefix(ByteWriter& w, const Prefix& prefix) {
  w.u8(static_cast<std::uint8_t>(prefix.length()));
  const auto& storage = prefix.address().storage();
  w.bytes(std::span(storage.data(), prefix_octets(prefix.length())));
}

/// When `update` is non-null the attributes are encoded for a BGP4MP
/// UPDATE: IPv6 routes are carried in full-form MP_REACH_NLRI /
/// MP_UNREACH_NLRI instead of the RFC 6396 truncated MP_REACH.
void encode_attributes(ByteWriter& w, const PathAttributes& attributes,
                       const Bgp4mpUpdate* update = nullptr) {
  // ORIGIN — well-known mandatory.
  encode_attribute_header(w, kFlagTransitive, kAttrOrigin, 1);
  w.u8(static_cast<std::uint8_t>(attributes.origin));

  // AS_PATH — well-known mandatory; 4-byte ASNs per RFC 6396.
  {
    std::size_t length = 0;
    for (const auto& segment : attributes.as_path) length += 2 + 4 * segment.asns.size();
    encode_attribute_header(w, kFlagTransitive, kAttrAsPath, length);
    for (const auto& segment : attributes.as_path) {
      w.u8(static_cast<std::uint8_t>(segment.type));
      w.u8(static_cast<std::uint8_t>(segment.asns.size()));
      for (const std::uint32_t asn : segment.asns) w.u32(asn);
    }
  }

  if (attributes.next_hop_v4) {
    encode_attribute_header(w, kFlagTransitive, kAttrNextHop, 4);
    const auto octets = attributes.next_hop_v4->octets();
    w.bytes(octets);
  }
  if (attributes.med) {
    encode_attribute_header(w, kFlagOptional, kAttrMed, 4);
    w.u32(*attributes.med);
  }
  if (attributes.local_pref) {
    encode_attribute_header(w, kFlagTransitive, kAttrLocalPref, 4);
    w.u32(*attributes.local_pref);
  }
  if (!attributes.communities.empty()) {
    encode_attribute_header(w, static_cast<std::uint8_t>(kFlagOptional | kFlagTransitive),
                            kAttrCommunity, 4 * attributes.communities.size());
    for (const std::uint32_t community : attributes.communities) w.u32(community);
  }
  if (update == nullptr) {
    if (attributes.next_hop_v6) {
      // RFC 6396 section 4.3.4: MP_REACH_NLRI in TABLE_DUMP_V2 is truncated
      // to next-hop length + next hop.
      encode_attribute_header(w, kFlagOptional, kAttrMpReachNlri, 1 + 16);
      w.u8(16);
      w.bytes(attributes.next_hop_v6->bytes());
    }
  } else {
    // Full-form MP attributes (RFC 4760) for the v6 routes of the update.
    std::vector<const Prefix*> announced_v6;
    for (const Prefix& prefix : update->announced) {
      if (prefix.family() == Family::v6) announced_v6.push_back(&prefix);
    }
    if (!announced_v6.empty()) {
      std::size_t length = 2 + 1 + 1 + 16 + 1;  // afi safi nhlen nexthop reserved
      for (const Prefix* prefix : announced_v6) {
        length += 1 + prefix_octets(prefix->length());
      }
      encode_attribute_header(w, kFlagOptional, kAttrMpReachNlri, length);
      w.u16(kAfiIpv6);
      w.u8(kSafiUnicast);
      w.u8(16);
      const IPv6Address next_hop =
          attributes.next_hop_v6 ? *attributes.next_hop_v6 : IPv6Address{};
      w.bytes(next_hop.bytes());
      w.u8(0);  // reserved
      for (const Prefix* prefix : announced_v6) encode_wire_prefix(w, *prefix);
    }
    std::vector<const Prefix*> withdrawn_v6;
    for (const Prefix& prefix : update->withdrawn) {
      if (prefix.family() == Family::v6) withdrawn_v6.push_back(&prefix);
    }
    if (!withdrawn_v6.empty()) {
      std::size_t length = 2 + 1;
      for (const Prefix* prefix : withdrawn_v6) {
        length += 1 + prefix_octets(prefix->length());
      }
      encode_attribute_header(w, kFlagOptional, kAttrMpUnreachNlri, length);
      w.u16(kAfiIpv6);
      w.u8(kSafiUnicast);
      for (const Prefix* prefix : withdrawn_v6) encode_wire_prefix(w, *prefix);
    }
  }
  for (const auto& raw : attributes.unknown) {
    encode_attribute_header(w, raw.flags, raw.type, raw.payload.size());
    w.bytes(raw.payload);
  }
}

void encode_body(ByteWriter& w, const PeerIndexTable& table) {
  w.bytes(table.collector_bgp_id);
  w.u16(static_cast<std::uint16_t>(table.view_name.size()));
  for (const char c : table.view_name) w.u8(static_cast<std::uint8_t>(c));
  w.u16(static_cast<std::uint16_t>(table.peers.size()));
  for (const auto& peer : table.peers) {
    const bool v6 = peer.address.is_v6();
    w.u8(static_cast<std::uint8_t>(kPeerTypeAs4 | (v6 ? kPeerTypeV6Address : 0)));
    w.bytes(peer.bgp_id);
    if (v6) {
      w.bytes(peer.address.v6().bytes());
    } else {
      const auto octets = peer.address.v4().octets();
      w.bytes(octets);
    }
    w.u32(peer.asn);
  }
}

void encode_body(ByteWriter& w, const RibRecord& rib) {
  w.u32(rib.sequence);
  w.u8(static_cast<std::uint8_t>(rib.prefix.length()));
  const auto& storage = rib.prefix.address().storage();
  w.bytes(std::span(storage.data(), prefix_octets(rib.prefix.length())));
  w.u16(static_cast<std::uint16_t>(rib.entries.size()));
  for (const auto& entry : rib.entries) {
    w.u16(entry.peer_index);
    w.u32(entry.originated_time);
    const std::size_t attr_len_offset = w.size();
    w.u16(0);  // patched below
    const std::size_t attr_start = w.size();
    encode_attributes(w, entry.attributes);
    w.patch_u16(attr_len_offset, static_cast<std::uint16_t>(w.size() - attr_start));
  }
}

void encode_peer_header(ByteWriter& w, std::uint32_t peer_asn, std::uint32_t local_asn,
                        const IPAddress& peer, const IPAddress& local) {
  w.u32(peer_asn);
  w.u32(local_asn);
  w.u16(0);  // interface index
  w.u16(peer.is_v4() ? kAfiIpv4 : kAfiIpv6);
  const auto put_address = [&w](const IPAddress& address) {
    if (address.is_v4()) {
      const auto octets = address.v4().octets();
      w.bytes(octets);
    } else {
      w.bytes(address.v6().bytes());
    }
  };
  put_address(peer);
  put_address(local);
}

void encode_body(ByteWriter& w, const Bgp4mpUpdate& update) {
  encode_peer_header(w, update.peer_asn, update.local_asn, update.peer_address,
                     update.local_address);
  // BGP message: marker, length (patched), type, UPDATE payload.
  for (std::size_t i = 0; i < kBgpMarkerSize; ++i) w.u8(0xFF);
  const std::size_t length_offset = w.size();
  w.u16(0);
  w.u8(kBgpUpdate);

  // Withdrawn v4 routes.
  const std::size_t withdrawn_len_offset = w.size();
  w.u16(0);
  const std::size_t withdrawn_start = w.size();
  for (const Prefix& prefix : update.withdrawn) {
    if (prefix.family() == Family::v4) encode_wire_prefix(w, prefix);
  }
  w.patch_u16(withdrawn_len_offset, static_cast<std::uint16_t>(w.size() - withdrawn_start));

  // Path attributes (v6 routes ride inside MP attributes).
  const std::size_t attr_len_offset = w.size();
  w.u16(0);
  const std::size_t attr_start = w.size();
  encode_attributes(w, update.attributes, &update);
  w.patch_u16(attr_len_offset, static_cast<std::uint16_t>(w.size() - attr_start));

  // Announced v4 NLRI to the end of the message.
  for (const Prefix& prefix : update.announced) {
    if (prefix.family() == Family::v4) encode_wire_prefix(w, prefix);
  }
  w.patch_u16(length_offset,
              static_cast<std::uint16_t>(w.size() - length_offset + kBgpMarkerSize - 0));
}

void encode_body(ByteWriter& w, const Bgp4mpStateChange& change) {
  encode_peer_header(w, change.peer_asn, change.local_asn, change.peer_address,
                     change.local_address);
  w.u16(change.old_state);
  w.u16(change.new_state);
}

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool fail(std::string reason) {
    if (error_.empty()) error_ = std::move(reason);
    return false;
  }

  bool u8(std::uint8_t& out) {
    if (pos_ + 1 > data_.size()) return fail("truncated u8");
    out = data_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& out) {
    if (pos_ + 2 > data_.size()) return fail("truncated u16");
    out = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    std::uint16_t hi = 0;
    std::uint16_t lo = 0;
    if (!u16(hi) || !u16(lo)) return false;
    out = (std::uint32_t{hi} << 16) | lo;
    return true;
  }
  bool bytes(std::size_t count, std::span<const std::uint8_t>& out) {
    if (pos_ + count > data_.size()) return fail("truncated bytes");
    out = data_.subspan(pos_, count);
    pos_ += count;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::string error_;
};

void update_raw(std::uint8_t flags, std::uint8_t type, std::span<const std::uint8_t> payload,
                PathAttributes& out) {
  RawAttribute raw;
  raw.flags = flags;
  raw.type = type;
  raw.payload.assign(payload.begin(), payload.end());
  out.unknown.push_back(std::move(raw));
}

// Reads one NLRI prefix (length octet + minimal octets).
bool read_wire_prefix(ByteReader& r, Family family, Prefix& out) {
  std::uint8_t length = 0;
  if (!r.u8(length)) return false;
  if (length > address_bits(family)) return r.fail("NLRI prefix length out of range");
  std::span<const std::uint8_t> bytes;
  if (!r.bytes(prefix_octets(length), bytes)) return false;
  std::array<std::uint8_t, 16> storage{};
  std::copy(bytes.begin(), bytes.end(), storage.begin());
  const IPAddress address =
      family == Family::v4
          ? IPAddress(IPv4Address::from_octets(storage[0], storage[1], storage[2], storage[3]))
          : IPAddress(IPv6Address(storage));
  out = Prefix::of(address, length);
  return true;
}

/// When `update` is non-null, MP_REACH_NLRI / MP_UNREACH_NLRI are parsed in
/// their full RFC 4760 form and the carried v6 routes are appended to the
/// update; otherwise the RFC 6396 truncated MP_REACH form is expected.
bool decode_attributes(ByteReader& r, std::size_t attr_len, PathAttributes& out,
                       Bgp4mpUpdate* update = nullptr) {
  const std::size_t end = r.position() + attr_len;
  while (r.position() < end) {
    std::uint8_t flags = 0;
    std::uint8_t type = 0;
    if (!r.u8(flags) || !r.u8(type)) return false;
    std::size_t length = 0;
    if ((flags & kFlagExtendedLength) != 0) {
      std::uint16_t len16 = 0;
      if (!r.u16(len16)) return false;
      length = len16;
    } else {
      std::uint8_t len8 = 0;
      if (!r.u8(len8)) return false;
      length = len8;
    }
    if (r.position() + length > end) return r.fail("attribute overruns attribute block");

    std::span<const std::uint8_t> payload;
    if (!r.bytes(length, payload)) return false;
    ByteReader body(payload);

    switch (type) {
      case kAttrOrigin: {
        std::uint8_t value = 0;
        if (length != 1 || !body.u8(value) || value > 2) return r.fail("bad ORIGIN");
        out.origin = static_cast<Origin>(value);
        break;
      }
      case kAttrAsPath: {
        while (body.remaining() > 0) {
          std::uint8_t seg_type = 0;
          std::uint8_t count = 0;
          if (!body.u8(seg_type) || !body.u8(count)) return r.fail("bad AS_PATH segment");
          if (seg_type != 1 && seg_type != 2) return r.fail("bad AS_PATH segment type");
          AsPathSegment segment;
          segment.type = static_cast<AsPathSegment::Type>(seg_type);
          segment.asns.reserve(count);
          for (int i = 0; i < count; ++i) {
            std::uint32_t asn = 0;
            if (!body.u32(asn)) return r.fail("truncated AS_PATH");
            segment.asns.push_back(asn);
          }
          out.as_path.push_back(std::move(segment));
        }
        break;
      }
      case kAttrNextHop: {
        if (length != 4) return r.fail("bad NEXT_HOP length");
        out.next_hop_v4 = IPv4Address::from_octets(payload[0], payload[1], payload[2], payload[3]);
        break;
      }
      case kAttrMed: {
        std::uint32_t value = 0;
        if (length != 4 || !body.u32(value)) return r.fail("bad MED");
        out.med = value;
        break;
      }
      case kAttrLocalPref: {
        std::uint32_t value = 0;
        if (length != 4 || !body.u32(value)) return r.fail("bad LOCAL_PREF");
        out.local_pref = value;
        break;
      }
      case kAttrCommunity: {
        if (length % 4 != 0) return r.fail("bad COMMUNITY length");
        while (body.remaining() > 0) {
          std::uint32_t community = 0;
          if (!body.u32(community)) return false;
          out.communities.push_back(community);
        }
        break;
      }
      case kAttrMpUnreachNlri: {
        if (update == nullptr) {
          // Not expected in TABLE_DUMP_V2 RIB entries; preserve raw.
          update_raw(flags, type, payload, out);
          break;
        }
        std::uint16_t afi = 0;
        std::uint8_t safi = 0;
        if (!body.u16(afi) || !body.u8(safi)) return r.fail("bad MP_UNREACH header");
        if (afi != kAfiIpv6 || safi != kSafiUnicast) return r.fail("unsupported MP_UNREACH AFI");
        while (body.remaining() > 0) {
          Prefix prefix;
          if (!read_wire_prefix(body, Family::v6, prefix)) {
            return r.fail("bad MP_UNREACH NLRI");
          }
          update->withdrawn.push_back(prefix);
        }
        break;
      }
      case kAttrMpReachNlri: {
        if (update != nullptr) {
          // Full RFC 4760 form.
          std::uint16_t afi = 0;
          std::uint8_t safi = 0;
          std::uint8_t nh_len = 0;
          if (!body.u16(afi) || !body.u8(safi) || !body.u8(nh_len)) {
            return r.fail("bad MP_REACH header");
          }
          if (afi != kAfiIpv6 || safi != kSafiUnicast) return r.fail("unsupported MP_REACH AFI");
          if (nh_len != 16 && nh_len != 32) return r.fail("bad MP_REACH next-hop length");
          std::span<const std::uint8_t> nh;
          if (!body.bytes(nh_len, nh)) return false;
          IPv6Address::Bytes bytes{};
          std::copy(nh.begin(), nh.begin() + 16, bytes.begin());
          out.next_hop_v6 = IPv6Address(bytes);
          std::uint8_t reserved = 0;
          if (!body.u8(reserved)) return false;
          while (body.remaining() > 0) {
            Prefix prefix;
            if (!read_wire_prefix(body, Family::v6, prefix)) {
              return r.fail("bad MP_REACH NLRI");
            }
            update->announced.push_back(prefix);
          }
          break;
        }
        // Truncated RFC 6396 form: next-hop length + next hop.
        std::uint8_t nh_len = 0;
        if (!body.u8(nh_len)) return r.fail("bad MP_REACH");
        if (nh_len == 16 && body.remaining() == 16) {
          std::span<const std::uint8_t> nh;
          if (!body.bytes(16, nh)) return false;
          IPv6Address::Bytes bytes{};
          std::copy(nh.begin(), nh.end(), bytes.begin());
          out.next_hop_v6 = IPv6Address(bytes);
        } else if (nh_len == 32 && body.remaining() == 32) {
          // Global + link-local next hop; keep the global one.
          std::span<const std::uint8_t> nh;
          if (!body.bytes(32, nh)) return false;
          IPv6Address::Bytes bytes{};
          std::copy(nh.begin(), nh.begin() + 16, bytes.begin());
          out.next_hop_v6 = IPv6Address(bytes);
        } else {
          return r.fail("bad MP_REACH next-hop length");
        }
        break;
      }
      default:
        update_raw(flags, type, payload, out);
        break;
    }
  }
  return r.position() == end || r.fail("attribute block length mismatch");
}

bool decode_peer_index_table(ByteReader& r, PeerIndexTable& out) {
  std::span<const std::uint8_t> collector;
  if (!r.bytes(4, collector)) return false;
  std::copy(collector.begin(), collector.end(), out.collector_bgp_id.begin());

  std::uint16_t name_len = 0;
  if (!r.u16(name_len)) return false;
  std::span<const std::uint8_t> name;
  if (!r.bytes(name_len, name)) return false;
  out.view_name.assign(name.begin(), name.end());

  std::uint16_t peer_count = 0;
  if (!r.u16(peer_count)) return false;
  out.peers.reserve(peer_count);
  for (int i = 0; i < peer_count; ++i) {
    std::uint8_t peer_type = 0;
    if (!r.u8(peer_type)) return false;
    PeerEntry peer;
    std::span<const std::uint8_t> bgp_id;
    if (!r.bytes(4, bgp_id)) return false;
    std::copy(bgp_id.begin(), bgp_id.end(), peer.bgp_id.begin());

    if ((peer_type & kPeerTypeV6Address) != 0) {
      std::span<const std::uint8_t> address;
      if (!r.bytes(16, address)) return false;
      IPv6Address::Bytes bytes{};
      std::copy(address.begin(), address.end(), bytes.begin());
      peer.address = IPAddress(IPv6Address(bytes));
    } else {
      std::span<const std::uint8_t> address;
      if (!r.bytes(4, address)) return false;
      peer.address =
          IPAddress(IPv4Address::from_octets(address[0], address[1], address[2], address[3]));
    }
    if ((peer_type & kPeerTypeAs4) != 0) {
      if (!r.u32(peer.asn)) return false;
    } else {
      std::uint16_t as16 = 0;
      if (!r.u16(as16)) return false;
      peer.asn = as16;
    }
    out.peers.push_back(std::move(peer));
  }
  return true;
}

bool decode_rib_record(ByteReader& r, Family family, RibRecord& out) {
  if (!r.u32(out.sequence)) return false;
  std::uint8_t prefix_len = 0;
  if (!r.u8(prefix_len)) return false;
  if (prefix_len > address_bits(family)) return r.fail("prefix length out of range");
  std::span<const std::uint8_t> prefix_bytes;
  if (!r.bytes(prefix_octets(prefix_len), prefix_bytes)) return false;

  std::array<std::uint8_t, 16> storage{};
  std::copy(prefix_bytes.begin(), prefix_bytes.end(), storage.begin());
  const IPAddress address =
      family == Family::v4
          ? IPAddress(IPv4Address::from_octets(storage[0], storage[1], storage[2], storage[3]))
          : IPAddress(IPv6Address(storage));
  out.prefix = Prefix::of(address, prefix_len);

  std::uint16_t entry_count = 0;
  if (!r.u16(entry_count)) return false;
  out.entries.reserve(entry_count);
  for (int i = 0; i < entry_count; ++i) {
    RibEntry entry;
    std::uint16_t attr_len = 0;
    if (!r.u16(entry.peer_index) || !r.u32(entry.originated_time) || !r.u16(attr_len)) {
      return false;
    }
    if (!decode_attributes(r, attr_len, entry.attributes)) return false;
    out.entries.push_back(std::move(entry));
  }
  return true;
}

// Reads the BGP4MP peer header; `as4` selects 4-byte vs 2-byte AS fields.
bool decode_peer_header(ByteReader& r, bool as4, std::uint32_t& peer_asn,
                        std::uint32_t& local_asn, IPAddress& peer, IPAddress& local) {
  if (as4) {
    if (!r.u32(peer_asn) || !r.u32(local_asn)) return false;
  } else {
    std::uint16_t peer16 = 0;
    std::uint16_t local16 = 0;
    if (!r.u16(peer16) || !r.u16(local16)) return false;
    peer_asn = peer16;
    local_asn = local16;
  }
  std::uint16_t ifindex = 0;
  std::uint16_t afi = 0;
  if (!r.u16(ifindex) || !r.u16(afi)) return false;
  const auto read_address = [&](IPAddress& out) {
    if (afi == kAfiIpv4) {
      std::span<const std::uint8_t> bytes;
      if (!r.bytes(4, bytes)) return false;
      out = IPAddress(IPv4Address::from_octets(bytes[0], bytes[1], bytes[2], bytes[3]));
      return true;
    }
    if (afi == kAfiIpv6) {
      std::span<const std::uint8_t> bytes;
      if (!r.bytes(16, bytes)) return false;
      IPv6Address::Bytes address{};
      std::copy(bytes.begin(), bytes.end(), address.begin());
      out = IPAddress(IPv6Address(address));
      return true;
    }
    return r.fail("unsupported BGP4MP address family");
  };
  return read_address(peer) && read_address(local);
}

bool decode_bgp4mp_update(ByteReader& r, bool as4, Bgp4mpUpdate& out) {
  if (!decode_peer_header(r, as4, out.peer_asn, out.local_asn, out.peer_address,
                          out.local_address)) {
    return false;
  }
  // BGP message header.
  std::span<const std::uint8_t> marker;
  if (!r.bytes(kBgpMarkerSize, marker)) return false;
  for (const std::uint8_t byte : marker) {
    if (byte != 0xFF) return r.fail("bad BGP marker");
  }
  std::uint16_t message_length = 0;
  std::uint8_t message_type = 0;
  if (!r.u16(message_length) || !r.u8(message_type)) return false;
  if (message_type != kBgpUpdate) return r.fail("not a BGP UPDATE");
  if (message_length < kBgpMarkerSize + 3) return r.fail("bad BGP message length");
  const std::size_t body_bytes = message_length - kBgpMarkerSize - 3;
  if (body_bytes > r.remaining()) return r.fail("truncated BGP message");
  const std::size_t message_end = r.position() + body_bytes;

  // Withdrawn v4 routes.
  std::uint16_t withdrawn_length = 0;
  if (!r.u16(withdrawn_length)) return false;
  const std::size_t withdrawn_end = r.position() + withdrawn_length;
  if (withdrawn_end > message_end) return r.fail("withdrawn block overruns message");
  while (r.position() < withdrawn_end) {
    Prefix prefix;
    if (!read_wire_prefix(r, Family::v4, prefix)) return false;
    out.withdrawn.push_back(prefix);
  }
  if (r.position() != withdrawn_end) return r.fail("withdrawn length mismatch");

  // Path attributes (v6 routes are appended by the MP attribute parsers).
  std::uint16_t attr_length = 0;
  if (!r.u16(attr_length)) return false;
  if (r.position() + attr_length > message_end) {
    return r.fail("attribute block overruns message");
  }
  if (!decode_attributes(r, attr_length, out.attributes, &out)) return false;

  // v4 NLRI runs to the end of the BGP message.
  while (r.position() < message_end) {
    Prefix prefix;
    if (!read_wire_prefix(r, Family::v4, prefix)) return false;
    out.announced.push_back(prefix);
  }
  if (r.position() != message_end) return r.fail("BGP message length mismatch");
  // Wire order interleaves families (v6 in MP attributes, v4 in NLRI);
  // normalize so decoded updates have a canonical route order.
  std::sort(out.announced.begin(), out.announced.end());
  std::sort(out.withdrawn.begin(), out.withdrawn.end());
  return true;
}

bool decode_bgp4mp_state_change(ByteReader& r, bool as4, Bgp4mpStateChange& out) {
  if (!decode_peer_header(r, as4, out.peer_asn, out.local_asn, out.peer_address,
                          out.local_address)) {
    return false;
  }
  return r.u16(out.old_state) && r.u16(out.new_state);
}

}  // namespace

std::vector<std::uint8_t> encode_record(const MrtRecord& record) {
  ByteWriter w;
  w.u32(record.timestamp);
  MrtType type = MrtType::TableDumpV2;
  std::uint16_t subtype = static_cast<std::uint16_t>(TableDumpV2Subtype::PeerIndexTable);
  if (const auto* rib = std::get_if<RibRecord>(&record.body)) {
    subtype = static_cast<std::uint16_t>(rib->prefix.family() == Family::v4
                                             ? TableDumpV2Subtype::RibIpv4Unicast
                                             : TableDumpV2Subtype::RibIpv6Unicast);
  } else if (std::holds_alternative<Bgp4mpUpdate>(record.body)) {
    type = MrtType::Bgp4mp;
    subtype = static_cast<std::uint16_t>(Bgp4mpSubtype::MessageAs4);
  } else if (std::holds_alternative<Bgp4mpStateChange>(record.body)) {
    type = MrtType::Bgp4mp;
    subtype = static_cast<std::uint16_t>(Bgp4mpSubtype::StateChangeAs4);
  }
  w.u16(static_cast<std::uint16_t>(type));
  w.u16(subtype);
  const std::size_t length_offset = w.size();
  w.u32(0);  // patched below
  const std::size_t body_start = w.size();
  std::visit([&w](const auto& body) { encode_body(w, body); }, record.body);
  w.patch_u32(length_offset, static_cast<std::uint32_t>(w.size() - body_start));
  return std::move(w).take();
}

std::vector<std::uint8_t> encode_dump(std::span<const MrtRecord> records) {
  std::vector<std::uint8_t> out;
  for (const auto& record : records) {
    const auto encoded = encode_record(record);
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  return out;
}

std::optional<MrtRecord> Cursor::next() {
  if (!error_.empty() || at_end()) return std::nullopt;

  ByteReader header(data_.subspan(pos_));
  MrtRecord record;
  std::uint16_t type_raw = 0;
  std::uint16_t subtype_raw = 0;
  std::uint32_t length = 0;
  if (!header.u32(record.timestamp) || !header.u16(type_raw) || !header.u16(subtype_raw) ||
      !header.u32(length)) {
    error_ = "truncated MRT header";
    return std::nullopt;
  }
  if (pos_ + 12 + length > data_.size()) {
    error_ = "MRT record length overruns input";
    return std::nullopt;
  }
  ByteReader body(data_.subspan(pos_ + 12, length));

  if (type_raw == static_cast<std::uint16_t>(MrtType::Bgp4mp)) {
    bool bgp4mp_ok = false;
    switch (static_cast<Bgp4mpSubtype>(subtype_raw)) {
      case Bgp4mpSubtype::Message:
      case Bgp4mpSubtype::MessageAs4: {
        Bgp4mpUpdate update;
        bgp4mp_ok = decode_bgp4mp_update(
            body, subtype_raw == static_cast<std::uint16_t>(Bgp4mpSubtype::MessageAs4),
            update);
        record.body = std::move(update);
        break;
      }
      case Bgp4mpSubtype::StateChange:
      case Bgp4mpSubtype::StateChangeAs4: {
        Bgp4mpStateChange change;
        bgp4mp_ok = decode_bgp4mp_state_change(
            body,
            subtype_raw == static_cast<std::uint16_t>(Bgp4mpSubtype::StateChangeAs4), change);
        record.body = std::move(change);
        break;
      }
      default:
        error_ = "unsupported BGP4MP subtype " + std::to_string(subtype_raw);
        return std::nullopt;
    }
    if (!bgp4mp_ok) {
      error_ = body.error().empty() ? "malformed BGP4MP body" : body.error();
      return std::nullopt;
    }
    if (body.remaining() != 0) {
      error_ = "trailing bytes in BGP4MP record";
      return std::nullopt;
    }
    pos_ += 12 + length;
    return record;
  }
  if (type_raw != static_cast<std::uint16_t>(MrtType::TableDumpV2)) {
    error_ = "unsupported MRT type " + std::to_string(type_raw);
    return std::nullopt;
  }
  bool ok = false;
  switch (static_cast<TableDumpV2Subtype>(subtype_raw)) {
    case TableDumpV2Subtype::PeerIndexTable: {
      PeerIndexTable table;
      ok = decode_peer_index_table(body, table);
      record.body = std::move(table);
      break;
    }
    case TableDumpV2Subtype::RibIpv4Unicast:
    case TableDumpV2Subtype::RibIpv6Unicast: {
      RibRecord rib;
      const Family family =
          subtype_raw == static_cast<std::uint16_t>(TableDumpV2Subtype::RibIpv4Unicast)
              ? Family::v4
              : Family::v6;
      ok = decode_rib_record(body, family, rib);
      record.body = std::move(rib);
      break;
    }
    default:
      error_ = "unsupported TABLE_DUMP_V2 subtype " + std::to_string(subtype_raw);
      return std::nullopt;
  }
  if (!ok) {
    error_ = body.error().empty() ? "malformed MRT body" : body.error();
    return std::nullopt;
  }
  if (body.remaining() != 0) {
    error_ = "trailing bytes in MRT record body";
    return std::nullopt;
  }
  pos_ += 12 + length;
  return record;
}

std::optional<std::vector<MrtRecord>> decode_dump(std::span<const std::uint8_t> data,
                                                  std::string* error) {
  Cursor cursor(data);
  std::vector<MrtRecord> records;
  while (auto record = cursor.next()) records.push_back(std::move(*record));
  if (!cursor.error().empty()) {
    if (error != nullptr) *error = cursor.error();
    return std::nullopt;
  }
  return records;
}

}  // namespace sp::mrt
