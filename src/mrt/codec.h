// MRT wire codec: serializes and parses RFC 6396 TABLE_DUMP_V2 records,
// including the embedded RFC 4271 BGP path attributes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mrt/types.h"

namespace sp::mrt {

/// Serializes one record, including its MRT common header.
[[nodiscard]] std::vector<std::uint8_t> encode_record(const MrtRecord& record);

/// Serializes a whole dump (records back to back), PEER_INDEX_TABLE first
/// by convention of the caller.
[[nodiscard]] std::vector<std::uint8_t> encode_dump(std::span<const MrtRecord> records);

/// Incremental parser over an in-memory dump. Bounds-checked throughout;
/// any structural error stops the cursor and surfaces a reason.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  /// Parses the next record. Returns nullopt at clean end-of-input or on
  /// error; check `error()` to distinguish.
  [[nodiscard]] std::optional<MrtRecord> next();

  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Parses a whole dump; returns nullopt (with `error`) on the first
/// malformed record.
[[nodiscard]] std::optional<std::vector<MrtRecord>> decode_dump(
    std::span<const std::uint8_t> data, std::string* error = nullptr);

}  // namespace sp::mrt
