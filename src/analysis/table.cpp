#include "analysis/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace sp::analysis {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += "  ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule;
  out.push_back('\n');
  for (const auto& row : rows_) emit_row(row);
  return out;
}

Heatmap::Heatmap(std::vector<std::string> row_labels, std::vector<std::string> col_labels)
    : row_labels_(std::move(row_labels)),
      col_labels_(std::move(col_labels)),
      cells_(row_labels_.size() * col_labels_.size(), 0.0) {}

double& Heatmap::at(std::size_t row, std::size_t col) {
  if (row >= rows() || col >= cols()) throw std::out_of_range("Heatmap::at");
  return cells_[row * cols() + col];
}

double Heatmap::at(std::size_t row, std::size_t col) const {
  if (row >= rows() || col >= cols()) throw std::out_of_range("Heatmap::at");
  return cells_[row * cols() + col];
}

double Heatmap::total() const noexcept {
  double sum = 0.0;
  for (const double v : cells_) sum += v;
  return sum;
}

void Heatmap::normalize_to_percent() {
  const double sum = total();
  if (sum == 0.0) return;
  for (double& v : cells_) v = v / sum * 100.0;
}

void Heatmap::normalize_rows_to_percent() {
  for (std::size_t r = 0; r < rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols(); ++c) sum += at(r, c);
    if (sum == 0.0) continue;
    for (std::size_t c = 0; c < cols(); ++c) at(r, c) = at(r, c) / sum * 100.0;
  }
}

std::string Heatmap::render(int digits) const {
  TextTable table([this] {
    std::vector<std::string> headers{""};
    headers.insert(headers.end(), col_labels_.begin(), col_labels_.end());
    return headers;
  }());
  for (std::size_t r = 0; r < rows(); ++r) {
    std::vector<std::string> row{row_labels_[r]};
    for (std::size_t c = 0; c < cols(); ++c) row.push_back(format_fixed(at(r, c), digits));
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string format_percent(double fraction, int digits) {
  return format_fixed(fraction * 100.0, digits) + "%";
}

}  // namespace sp::analysis
