// Summary statistics and empirical CDFs used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sp::analysis {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
};

/// Mean / population-stddev / extrema of a sample set.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Median (averaged middle pair for even sizes); 0 for an empty input.
[[nodiscard]] double median(std::vector<double> samples);

/// Pearson correlation coefficient of paired samples. Returns 0 when the
/// inputs are empty, differently sized, or either side has zero variance.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson over fractional ranks, ties
/// averaged). Same degenerate-input behaviour as pearson().
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

/// An empirical CDF over a fixed sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  /// P(X <= x).
  [[nodiscard]] double fraction_at_most(double x) const noexcept;

  /// P(X >= x).
  [[nodiscard]] double fraction_at_least(double x) const noexcept;

  /// Smallest sample s with P(X <= s) >= q, clamped to the sample range.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace sp::analysis
