// Plain-text tables and labeled heatmap grids for experiment output.
//
// The benches regenerate the paper's figures as text: CDF series become
// tables, heatmap figures become labeled grids with one value per cell.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sp::analysis {

/// Fixed-width text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with aligned columns, a separator under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// A labeled 2-D grid of doubles (row-major).
class Heatmap {
 public:
  Heatmap(std::vector<std::string> row_labels, std::vector<std::string> col_labels);

  [[nodiscard]] double& at(std::size_t row, std::size_t col);
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  [[nodiscard]] std::size_t rows() const noexcept { return row_labels_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return col_labels_.size(); }

  [[nodiscard]] double total() const noexcept;

  /// Scales all cells so they sum to 100.
  void normalize_to_percent();

  /// Scales each row so it sums to 100 (rows with zero sum stay zero).
  void normalize_rows_to_percent();

  /// Renders as a grid; `digits` controls cell precision.
  [[nodiscard]] std::string render(int digits = 1) const;

 private:
  std::vector<std::string> row_labels_;
  std::vector<std::string> col_labels_;
  std::vector<double> cells_;
};

/// Formats a double with fixed precision ("0.52" for format_fixed(0.52, 2)).
[[nodiscard]] std::string format_fixed(double value, int digits);

/// Formats a fraction as a percentage string ("51.8%").
[[nodiscard]] std::string format_percent(double fraction, int digits = 1);

}  // namespace sp::analysis
