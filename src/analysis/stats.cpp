#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

namespace sp::analysis {

Summary summarize(std::span<const double> samples) {
  Summary summary;
  summary.count = samples.size();
  if (samples.empty()) return summary;

  double sum = 0.0;
  summary.min = samples.front();
  summary.max = samples.front();
  for (const double x : samples) {
    sum += x;
    summary.min = std::min(summary.min, x);
    summary.max = std::max(summary.max, x);
  }
  summary.mean = sum / static_cast<double>(samples.size());

  double sq = 0.0;
  for (const double x : samples) {
    const double d = x - summary.mean;
    sq += d * d;
  }
  summary.stddev = std::sqrt(sq / static_cast<double>(samples.size()));
  return summary;
}

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid),
                   samples.end());
  const double upper = samples[mid];
  if (samples.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lower + upper) / 2.0;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double n = static_cast<double>(x.size());
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= n;
  mean_y /= n;
  double covariance = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    covariance += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x == 0.0 || var_y == 0.0) return 0.0;
  return covariance / std::sqrt(var_x * var_y);
}

namespace {

// Fractional ranks with ties averaged.
std::vector<double> ranks_of(std::span<const double> values) {
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&values](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && values[order[j + 1]] == values[order[i]]) ++j;
    const double average_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = average_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto rx = ranks_of(x);
  const auto ry = ranks_of(y);
  return pearson(rx, ry);
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_at_most(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::fraction_at_least(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(sorted_.end() - it) / static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto index = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted_.size())));
  return sorted_[index == 0 ? 0 : std::min(index - 1, sorted_.size() - 1)];
}

}  // namespace sp::analysis
