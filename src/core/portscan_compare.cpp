#include "core/portscan_compare.h"

#include <algorithm>

namespace sp::core {

int jaccard_bin(double value) noexcept {
  const int bin = static_cast<int>(value * kJaccardBins);
  return std::clamp(bin, 0, kJaccardBins - 1);
}

PortScanComparison compare_with_portscan(std::span<const SiblingPair> pairs,
                                         const scan::PortScanDataset& scan) {
  PortScanComparison comparison;
  comparison.pair_count = pairs.size();
  comparison.joint.assign(kJaccardBins, std::vector<std::size_t>(kJaccardBins, 0));

  for (const SiblingPair& pair : pairs) {
    const scan::PortMask ports4 = scan.ports_in(pair.v4);
    const scan::PortMask ports6 = scan.ports_in(pair.v6);
    if ((ports4 | ports6) == 0) continue;
    ++comparison.responsive_pairs;
    const double scan_jaccard = scan::port_jaccard(ports4, ports6);
    ++comparison.joint[static_cast<std::size_t>(jaccard_bin(pair.similarity))]
                      [static_cast<std::size_t>(jaccard_bin(scan_jaccard))];
  }
  return comparison;
}

}  // namespace sp::core
