// Interned domain identifiers and sorted-set operations.
//
// Sibling detection compares domain sets millions of times; interning
// domain names to dense 32-bit ids and keeping sets as sorted unique
// vectors makes intersections a linear merge.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/name.h"

namespace sp::core {

using DomainId = std::uint32_t;

/// A sorted, duplicate-free vector of domain ids.
using DomainSet = std::vector<DomainId>;

/// Sorts and deduplicates in place.
void normalize(DomainSet& set);

/// Inserts `id` keeping the set sorted and unique.
void insert_id(DomainSet& set, DomainId id);

[[nodiscard]] bool contains_id(const DomainSet& set, DomainId id) noexcept;

/// |a ∩ b| by linear merge.
[[nodiscard]] std::size_t intersection_size(const DomainSet& a, const DomainSet& b) noexcept;

[[nodiscard]] DomainSet set_union(const DomainSet& a, const DomainSet& b);
[[nodiscard]] DomainSet set_intersection(const DomainSet& a, const DomainSet& b);
[[nodiscard]] DomainSet set_difference(const DomainSet& a, const DomainSet& b);

/// Bidirectional DomainName ↔ DomainId map. Ids are dense and stable in
/// insertion order.
class DomainInterner {
 public:
  /// Returns the existing id or assigns the next one.
  DomainId intern(const dns::DomainName& name);

  [[nodiscard]] std::optional<DomainId> find(const dns::DomainName& name) const noexcept;

  /// The name of an id; `id` must have been returned by intern().
  [[nodiscard]] const dns::DomainName& name(DomainId id) const { return names_.at(id); }

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  std::unordered_map<dns::DomainName, DomainId> ids_;
  std::vector<dns::DomainName> names_;
};

}  // namespace sp::core
