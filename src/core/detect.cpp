#include "core/detect.h"

#include <stdexcept>

#include "core/detect_parallel.h"

namespace sp::core {

namespace {
const std::vector<Prefix> kNoPrefixes;
}  // namespace

void SetCorpus::add(const Prefix& prefix, DomainId element) {
  if (finalized_) {
    throw std::logic_error("SetCorpus::add called after finalize()");
  }
  auto& sets = prefix.family() == Family::v4 ? v4_sets_ : v6_sets_;
  sets[prefix].push_back(element);
  auto& by_element =
      prefix.family() == Family::v4 ? v4_prefixes_by_element_ : v6_prefixes_by_element_;
  if (by_element.size() <= element) by_element.resize(element + 1);
  by_element[element].push_back(prefix);
}

void SetCorpus::finalize() {
  if (finalized_) return;
  for (auto* sets : {&v4_sets_, &v6_sets_}) {
    for (auto& [prefix, set] : *sets) normalize(set);
  }
  for (auto* by_element : {&v4_prefixes_by_element_, &v6_prefixes_by_element_}) {
    for (auto& prefixes : *by_element) {
      std::sort(prefixes.begin(), prefixes.end());
      prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
    }
  }
  index_ = DetectIndex::build(v4_sets_, v6_sets_);
  finalized_ = true;
}

const DetectIndex& SetCorpus::detect_index() const {
  if (!finalized_) {
    throw std::logic_error("SetCorpus::detect_index requires finalize()");
  }
  return index_;
}

const std::vector<Prefix>& SetCorpus::prefixes_of(DomainId element,
                                                  Family family) const noexcept {
  const auto& by_element =
      family == Family::v4 ? v4_prefixes_by_element_ : v6_prefixes_by_element_;
  if (element >= by_element.size()) return kNoPrefixes;
  return by_element[element];
}

const DomainSet* SetCorpus::domains_of(const Prefix& prefix) const noexcept {
  const auto& sets = prefix.family() == Family::v4 ? v4_sets_ : v6_sets_;
  const auto it = sets.find(prefix);
  return it == sets.end() ? nullptr : &it->second;
}

namespace {

// The sketch engine lives a layer above (sp_sketch depends on sp_core);
// reaching it through a core entry point would invert the dependency, so
// the strategy is rejected here with a pointer at the right call.
void reject_sketch_strategy(const DetectOptions& options) {
  if (options.strategy == DetectStrategy::Sketch) {
    throw std::logic_error(
        "DetectStrategy::Sketch requires the sp::sketch engine — call "
        "sketch::detect_sibling_prefixes (src/sketch/detect_sketch.h)");
  }
}

std::vector<SiblingPair> detect_indexed(const DetectIndex& index, const DetectOptions& options) {
  reject_sketch_strategy(options);
  ParallelDetector detector(options.threads);
  auto pairs = detector.detect(index, options);
  if (options.stats != nullptr) *options.stats = detector.stats();
  return pairs;
}

}  // namespace

std::vector<SiblingPair> detect_sibling_prefixes(const DualStackCorpus& corpus,
                                                 const DetectOptions& options) {
  return detect_indexed(corpus.detect_index(), options);
}

std::vector<SiblingPair> detect_sibling_prefixes(const SetCorpus& corpus,
                                                 const DetectOptions& options) {
  return detect_indexed(corpus.detect_index(), options);
}

std::vector<SiblingPair> detect_sibling_prefixes_serial(const DualStackCorpus& corpus,
                                                        const DetectOptions& options) {
  reject_sketch_strategy(options);
  return detail::detect_over(corpus, options);
}

std::vector<SiblingPair> detect_sibling_prefixes_serial(const SetCorpus& corpus,
                                                        const DetectOptions& options) {
  reject_sketch_strategy(options);
  return detail::detect_over(corpus, options);
}

std::size_t unique_prefix_count(std::span<const SiblingPair> pairs, Family family) {
  std::unordered_set<Prefix> seen;
  for (const SiblingPair& pair : pairs) {
    seen.insert(family == Family::v4 ? pair.v4 : pair.v6);
  }
  return seen.size();
}

std::vector<double> similarity_values(std::span<const SiblingPair> pairs) {
  std::vector<double> values;
  values.reserve(pairs.size());
  for (const SiblingPair& pair : pairs) values.push_back(pair.similarity);
  return values;
}

}  // namespace sp::core
