// Flat CSR detection index: the candidate-generation data structure shared
// by every detection engine.
//
// Detection (paper steps 3-4) spends its time answering two queries per
// source prefix: "which counterpart prefixes share an element with me?"
// and "how large is each counterpart's element set?". The hash-map based
// corpus interfaces answer both, but at the cost of one hash lookup per
// element occurrence and one fresh unordered_map per source prefix. The
// DetectIndex flattens everything once, at corpus finalize time:
//
//   prefixes        dense id → Prefix, sorted ascending (deterministic)
//   set CSR         dense id → its sorted element set (offsets + elements)
//   posting CSR     element id → dense ids of the prefixes containing it
//
// Candidate counting then becomes array indexing into a reusable
// counts[dense_id] scratch vector — no hashing, no allocation per prefix —
// and the index is immutable after build, so any number of detection
// workers can share it without synchronization.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/domain_set.h"
#include "netbase/prefix.h"

namespace sp::core {

struct DetectIndex {
  /// One address family's half of the index.
  struct Side {
    std::vector<Prefix> prefixes;                 // dense id → prefix, ascending
    std::vector<std::uint32_t> set_offsets;       // size prefix_count()+1
    std::vector<DomainId> set_elements;           // concatenated sorted element sets
    std::vector<std::uint32_t> posting_offsets;   // size element_count()+1
    std::vector<std::uint32_t> postings;          // dense prefix ids, ascending per element

    [[nodiscard]] std::size_t prefix_count() const noexcept { return prefixes.size(); }

    /// One past the largest element id seen on this side (0 when empty).
    [[nodiscard]] std::size_t element_count() const noexcept {
      return posting_offsets.empty() ? 0 : posting_offsets.size() - 1;
    }

    /// The sorted element set of a dense prefix id.
    [[nodiscard]] std::span<const DomainId> elements_of(std::uint32_t dense) const noexcept {
      return {set_elements.data() + set_offsets[dense],
              set_elements.data() + set_offsets[dense + 1]};
    }

    [[nodiscard]] std::uint32_t set_size(std::uint32_t dense) const noexcept {
      return set_offsets[dense + 1] - set_offsets[dense];
    }

    /// Dense ids of the prefixes containing `element`; empty for unknown
    /// ids (elements can live in only one family).
    [[nodiscard]] std::span<const std::uint32_t> postings_of(DomainId element) const noexcept {
      if (element >= element_count()) return {};
      return {postings.data() + posting_offsets[element],
              postings.data() + posting_offsets[element + 1]};
    }
  };

  Side v4;
  Side v6;

  [[nodiscard]] const Side& side(Family family) const noexcept {
    return family == Family::v4 ? v4 : v6;
  }

  /// Flattens the per-family prefix→set maps (sets must already be sorted
  /// and duplicate-free, as DomainSet guarantees after normalize()).
  [[nodiscard]] static DetectIndex build(const std::unordered_map<Prefix, DomainSet>& v4_sets,
                                         const std::unordered_map<Prefix, DomainSet>& v6_sets);
};

}  // namespace sp::core
