// DetectIndexOverlay — a delta-updatable owner of the flat CSR index.
//
// The DetectIndex is deliberately immutable: detection workers share it
// without synchronization, and the CSR layout has no room for in-place
// set growth. The overlay keeps that property while making the index
// delta-updatable: apply() merges a CorpusDelta into a *fresh* pair of
// CSR sides, copying the untouched rows' element spans verbatim and
// rebuilding the posting lists with the same counting sort as
// DetectIndex::build. Compaction is O(elements) — linear in the corpus,
// independent of delta size — which is cheap next to detection's
// superlinear candidate work, and it means every engine keeps scanning a
// plain DetectIndex::Side: the byte-identity contract of
// core/detect_scan.h needs no overlay-aware variant.
//
// apply() validates the delta against the current index (removals must
// exist, additions must be new, entries sorted and unique) and throws
// std::invalid_argument on inconsistency: a delta that does not match
// its base is a caller bug, not an input format error (the serialized
// SPDL boundary in src/stream/ rejects instead of throwing).
#pragma once

#include <vector>

#include "core/corpus_delta.h"
#include "core/detect_index.h"

namespace sp::core {

class DetectIndexOverlay {
 public:
  DetectIndexOverlay() = default;
  explicit DetectIndexOverlay(DetectIndex index) : index_(std::move(index)) {}

  [[nodiscard]] const DetectIndex& index() const noexcept { return index_; }

  /// Replaces the owned index (the from-scratch boundary).
  void reset(DetectIndex index) { index_ = std::move(index); }

  /// Applies `delta`, compacting into fresh CSR sides. After apply(),
  /// index() equals DetectIndex::build over the post-delta sets (same
  /// prefix order, same element spans, same posting layout). Throws
  /// std::invalid_argument when the delta is inconsistent with the
  /// current index; the index is unchanged in that case.
  void apply(const CorpusDelta& delta);

 private:
  DetectIndex index_;
};

}  // namespace sp::core
