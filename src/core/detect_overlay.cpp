#include "core/detect_overlay.h"

#include <algorithm>
#include <iterator>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <utility>

namespace sp::core {

namespace {

[[noreturn]] void invalid(const char* reason) { throw std::invalid_argument(reason); }

void check_canonical(const std::vector<PrefixDelta>& deltas) {
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const PrefixDelta& delta = deltas[i];
    if (i > 0 && !(deltas[i - 1].prefix < delta.prefix)) {
      invalid("CorpusDelta: side not strictly ascending by prefix");
    }
    if (delta.added.empty() && delta.removed.empty()) {
      invalid("CorpusDelta: entry with no added or removed edges");
    }
    if (!std::is_sorted(delta.added.begin(), delta.added.end()) ||
        std::adjacent_find(delta.added.begin(), delta.added.end()) != delta.added.end() ||
        !std::is_sorted(delta.removed.begin(), delta.removed.end()) ||
        std::adjacent_find(delta.removed.begin(), delta.removed.end()) != delta.removed.end()) {
      invalid("CorpusDelta: added/removed sets must be sorted and unique");
    }
    if (intersection_size(delta.added, delta.removed) != 0) {
      invalid("CorpusDelta: added and removed sets overlap");
    }
  }
}

DetectIndex::Side apply_side(const DetectIndex::Side& base,
                             const std::vector<PrefixDelta>& deltas) {
  check_canonical(deltas);

  // Pass 1: merge-walk base rows and delta entries into the surviving
  // (prefix, element set) rows, validating the delta against the base.
  DetectIndex::Side side;
  side.set_offsets.push_back(0);
  DomainSet merged;
  DomainId max_element = 0;
  bool any_element = false;

  const auto emit_row = [&](const Prefix& prefix, std::span<const DomainId> elements) {
    if (side.set_elements.size() + elements.size() >
        std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error("DetectIndexOverlay: side exceeds 2^32 set elements");
    }
    side.prefixes.push_back(prefix);
    side.set_elements.insert(side.set_elements.end(), elements.begin(), elements.end());
    side.set_offsets.push_back(static_cast<std::uint32_t>(side.set_elements.size()));
    if (!elements.empty()) {
      any_element = true;
      max_element = std::max(max_element, elements.back());  // sets are sorted
    }
  };

  std::uint32_t b = 0;
  std::size_t d = 0;
  const auto base_count = static_cast<std::uint32_t>(base.prefix_count());
  while (b < base_count || d < deltas.size()) {
    if (d >= deltas.size() || (b < base_count && base.prefixes[b] < deltas[d].prefix)) {
      emit_row(base.prefixes[b], base.elements_of(b));  // untouched row, copied verbatim
      ++b;
      continue;
    }
    const PrefixDelta& delta = deltas[d];
    if (b >= base_count || delta.prefix < base.prefixes[b]) {
      // Birth: the delta must be purely additive against an absent row.
      if (!delta.removed.empty()) invalid("CorpusDelta: removal from an absent prefix");
      emit_row(delta.prefix, delta.added);
      ++d;
      continue;
    }
    // Edit (possibly death). removed ⊆ old and added ∩ old = ∅, checked
    // by size arithmetic on the sorted merges.
    const auto old_set = base.elements_of(b);
    merged.clear();
    std::set_difference(old_set.begin(), old_set.end(), delta.removed.begin(),
                        delta.removed.end(), std::back_inserter(merged));
    if (old_set.size() - merged.size() != delta.removed.size()) {
      invalid("CorpusDelta: removal of an edge the base does not have");
    }
    const std::size_t kept = merged.size();
    DomainSet next = set_union(merged, delta.added);
    if (next.size() != kept + delta.added.size()) {
      invalid("CorpusDelta: addition of an edge the base already has");
    }
    if (!next.empty()) emit_row(delta.prefix, next);  // empty ⇒ prefix death
    ++b;
    ++d;
  }

  // Pass 2: posting CSR by counting sort, identical to DetectIndex::build.
  const std::size_t element_count = any_element ? static_cast<std::size_t>(max_element) + 1 : 0;
  side.posting_offsets.assign(element_count + 1, 0);
  for (const DomainId element : side.set_elements) ++side.posting_offsets[element + 1];
  std::partial_sum(side.posting_offsets.begin(), side.posting_offsets.end(),
                   side.posting_offsets.begin());
  side.postings.resize(side.set_elements.size());
  std::vector<std::uint32_t> cursor(side.posting_offsets.begin(),
                                    side.posting_offsets.end() - 1);
  for (std::uint32_t dense = 0; dense < side.prefixes.size(); ++dense) {
    for (const DomainId element : side.elements_of(dense)) {
      side.postings[cursor[element]++] = dense;
    }
  }
  return side;
}

}  // namespace

void DetectIndexOverlay::apply(const CorpusDelta& delta) {
  // Both sides are validated and built before either is committed, so a
  // throw leaves the index unchanged.
  DetectIndex next;
  next.v4 = apply_side(index_.v4, delta.v4);
  next.v6 = apply_side(index_.v6, delta.v6);
  index_ = std::move(next);
}

}  // namespace sp::core
