// Set-similarity metrics (paper section 3.2).
//
// Jaccard is the paper's metric of choice; Dice and the overlap
// coefficient are implemented for the comparison in Figure 2 (the overlap
// coefficient saturates at 1 whenever one set is a subset of the other,
// which makes it unsuitable for sibling detection).
#pragma once

#include <cstdint>
#include <string_view>

#include "core/domain_set.h"

namespace sp::core {

enum class Metric : std::uint8_t { Jaccard, Dice, Overlap };

[[nodiscard]] std::string_view metric_name(Metric metric) noexcept;

/// Metric value from precomputed sizes. All metrics return 0 when both
/// sets are empty.
[[nodiscard]] double similarity_from_sizes(Metric metric, std::size_t intersection,
                                           std::size_t size_a, std::size_t size_b) noexcept;

[[nodiscard]] double similarity(Metric metric, const DomainSet& a, const DomainSet& b) noexcept;

[[nodiscard]] inline double jaccard(const DomainSet& a, const DomainSet& b) noexcept {
  return similarity(Metric::Jaccard, a, b);
}
[[nodiscard]] inline double dice(const DomainSet& a, const DomainSet& b) noexcept {
  return similarity(Metric::Dice, a, b);
}
[[nodiscard]] inline double overlap(const DomainSet& a, const DomainSet& b) noexcept {
  return similarity(Metric::Overlap, a, b);
}

}  // namespace sp::core
