// CSV interchange for dual-stack vantage points (the RIPE Atlas probe
// export used in the paper's ground-truth evaluation, section 3.5).
//
// Layout:
//   v4_address,v6_address
//   20.1.2.3,2620:100::3
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/groundtruth.h"

namespace sp::core {

[[nodiscard]] bool write_probes_csv(const std::string& path,
                                    std::span<const DualStackProbe> probes);

/// Returns nullopt on I/O failure, a bad header, a family mismatch (the
/// first column must be IPv4, the second IPv6), or any unparsable address.
[[nodiscard]] std::optional<std::vector<DualStackProbe>> read_probes_csv(
    const std::string& path);

}  // namespace sp::core
