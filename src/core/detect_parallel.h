// Sharded sibling detection engine (paper steps 3-4, production hot path).
//
// The serial reference (detail::detect_over in detect.h) walks every
// source prefix, counts candidate counterparts in a fresh unordered_map,
// and evaluates the similarity metric twice per candidate. This engine
// keeps the exact output contract — the pair list is byte-identical to
// the serial path for any corpus, metric, and thread count — but changes
// the mechanics:
//
//   * Candidate counting indexes a reusable counts[dense_id] scratch array
//     through the corpus's flat DetectIndex (detect_index.h) instead of
//     hashing prefixes, with a touched-list reset so scratch stays O(hits).
//   * The two similarity passes fold into one pass that tracks the running
//     best value plus the surviving tie list (pruned as the best grows);
//     the epsilon tie rule is evaluated against the same final best value
//     as the serial code, so emission is identical.
//   * Source prefixes of each direction are sharded in chunks over a
//     reusable WorkerPool (worker_pool.h, shared with the serving path;
//     atomic-counter dispatch mirroring SpTunerMs::tune_all_parallel);
//     per-worker output buffers are concatenated
//     and then sorted + deduplicated exactly as detail::detect_over does,
//     which makes the merge independent of scheduling.
//
// The pool threads persist across detect() calls, so a longitudinal run
// over 49 snapshots pays thread start-up once.
#pragma once

#include <vector>

#include "core/detect.h"
#include "core/detect_index.h"
#include "core/worker_pool.h"
#include "obs/metrics.h"

namespace sp::core {

class ParallelDetector {
 public:
  /// `thread_count` 0 picks the hardware concurrency (capped at 64, like
  /// SpTunerMs). One worker runs inline on the calling thread, so
  /// thread_count == 1 spawns no threads at all.
  explicit ParallelDetector(unsigned thread_count = 0);

  ParallelDetector(const ParallelDetector&) = delete;
  ParallelDetector& operator=(const ParallelDetector&) = delete;

  /// Detection over a corpus's flat index. Output is sorted by (v4, v6)
  /// and duplicate-free, byte-identical to detect_sibling_prefixes_serial.
  [[nodiscard]] std::vector<SiblingPair> detect(const DetectIndex& index,
                                                const DetectOptions& options = {});
  [[nodiscard]] std::vector<SiblingPair> detect(const DualStackCorpus& corpus,
                                                const DetectOptions& options = {});
  /// SetCorpus detection requires finalize() (throws std::logic_error
  /// otherwise).
  [[nodiscard]] std::vector<SiblingPair> detect(const SetCorpus& corpus,
                                                const DetectOptions& options = {});

  /// Counters of the most recent detect() call.
  [[nodiscard]] const DetectStats& stats() const noexcept { return stats_; }

  [[nodiscard]] unsigned thread_count() const noexcept { return pool_.thread_count(); }

 private:
  void detect_direction(const DetectIndex& index, Family from, Metric metric,
                        std::vector<SiblingPair>& out);

  WorkerPool pool_;
  DetectStats stats_;

  // Global-registry aggregates, updated once per detect() run (see
  // obs/metrics.h); per-shard trace spans come from obs::ScopedSpan.
  obs::Counter runs_;
  obs::Counter pairs_emitted_;
  obs::Counter candidates_;
  obs::Histogram detect_us_;
};

}  // namespace sp::core
