#include "core/corpus.h"

#include <algorithm>

namespace sp::core {

namespace {

const std::vector<Prefix> kNoPrefixes;

void sort_unique(std::vector<Prefix>& prefixes) {
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
}

}  // namespace

DualStackCorpus DualStackCorpus::build(const dns::ResolutionSnapshot& snapshot,
                                       const bgp::Rib& rib) {
  DualStackCorpus corpus;
  corpus.stats_.snapshot_domains = snapshot.domain_count();
  std::unordered_map<Prefix, Prefix> host_owner;  // host prefix → announced prefix

  for (const dns::DomainResolution& entry : snapshot.entries()) {
    if (!entry.dual_stack()) continue;
    // Identity is the response name: several queried names CNAME-ing to the
    // same target collapse into one service.
    const DomainId id = corpus.interner_.intern(entry.response_name);
    if (corpus.v4_prefixes_by_domain_.size() < corpus.interner_.size()) {
      corpus.v4_prefixes_by_domain_.resize(corpus.interner_.size());
      corpus.v6_prefixes_by_domain_.resize(corpus.interner_.size());
    }

    const auto map_address = [&](const IPAddress& address, Family family) {
      if (is_reserved(address)) {
        ++corpus.stats_.discarded_reserved;
        return;
      }
      const auto route = rib.lookup(address);
      if (!route) {
        ++corpus.stats_.unmapped_addresses;
        return;
      }
      // Appended unsorted and normalized once below: the sorted-insert
      // (insert_id) this replaced made every set build quadratic, which
      // dominated corpus construction at the 10× synth scale where CDN
      // edge replication produces multi-thousand-element prefix sets.
      auto& prefix_domains =
          family == Family::v4 ? corpus.v4_prefix_domains_ : corpus.v6_prefix_domains_;
      prefix_domains[route->prefix].push_back(id);
      auto& by_domain = family == Family::v4 ? corpus.v4_prefixes_by_domain_
                                             : corpus.v6_prefixes_by_domain_;
      by_domain[id].push_back(route->prefix);
      auto& hosts = family == Family::v4 ? corpus.v4_hosts_ : corpus.v6_hosts_;
      hosts[Prefix::host(address)].push_back(id);
      host_owner[Prefix::host(address)] = route->prefix;
    };

    for (const IPv4Address& address : entry.v4) map_address(IPAddress(address), Family::v4);
    for (const IPv6Address& address : entry.v6) map_address(IPAddress(address), Family::v6);
  }

  for (auto* sets : {&corpus.v4_prefix_domains_, &corpus.v6_prefix_domains_}) {
    for (auto& [prefix, set] : *sets) normalize(set);
  }
  for (auto& prefixes : corpus.v4_prefixes_by_domain_) sort_unique(prefixes);
  for (auto& prefixes : corpus.v6_prefixes_by_domain_) sort_unique(prefixes);

  for (const auto& [host, announced] : host_owner) {
    auto& hosts = host.family() == Family::v4 ? corpus.v4_hosts_ : corpus.v6_hosts_;
    DomainSet* domains = hosts.find(host);
    normalize(*domains);
    corpus.prefix_hosts_[announced].push_back(HostDomains{host, *domains});
  }
  for (auto& [announced, hosts] : corpus.prefix_hosts_) {
    std::sort(hosts.begin(), hosts.end(),
              [](const HostDomains& a, const HostDomains& b) { return a.host < b.host; });
  }

  corpus.stats_.dual_stack_domains = corpus.interner_.size();
  corpus.stats_.v4_prefixes = corpus.v4_prefix_domains_.size();
  corpus.stats_.v6_prefixes = corpus.v6_prefix_domains_.size();
  corpus.index_ = DetectIndex::build(corpus.v4_prefix_domains_, corpus.v6_prefix_domains_);
  return corpus;
}

const DomainSet* DualStackCorpus::domains_of(const Prefix& prefix) const noexcept {
  const auto& map = prefix_domains(prefix.family());
  const auto it = map.find(prefix);
  return it == map.end() ? nullptr : &it->second;
}

const std::vector<Prefix>& DualStackCorpus::prefixes_of(DomainId id,
                                                        Family family) const noexcept {
  const auto& by_domain =
      family == Family::v4 ? v4_prefixes_by_domain_ : v6_prefixes_by_domain_;
  if (id >= by_domain.size()) return kNoPrefixes;
  return by_domain[id];
}

const std::vector<DualStackCorpus::HostDomains>& DualStackCorpus::hosts_of(
    const Prefix& announced) const noexcept {
  static const std::vector<HostDomains> kNoHosts;
  const auto it = prefix_hosts_.find(announced);
  return it == prefix_hosts_.end() ? kNoHosts : it->second;
}

DomainSet DualStackCorpus::domains_within(const Prefix& prefix) const {
  DomainSet out;
  host_trie(prefix.family())
      .visit_covered(prefix, [&out](const Prefix&, const DomainSet& domains) {
        out.insert(out.end(), domains.begin(), domains.end());
      });
  normalize(out);
  return out;
}

}  // namespace sp::core
