// Comparison of DNS-based and port-scan-based sibling similarity
// (paper section 3.6, Figure 6).
//
// For every sibling pair the responsive-port sets of both prefixes are
// collected from a scan dataset; the Jaccard value over ports is compared
// with the Jaccard value over domains in a binned joint distribution.
#pragma once

#include <span>
#include <vector>

#include "core/detect.h"
#include "scan/portscan.h"

namespace sp::core {

struct PortScanComparison {
  std::size_t pair_count = 0;
  /// Pairs with at least one responsive address on either side.
  std::size_t responsive_pairs = 0;

  /// joint[dns_bin][scan_bin] = number of responsive pairs whose DNS
  /// Jaccard falls in bin dns_bin and port Jaccard in scan_bin. Ten bins:
  /// [0,0.1) ... [0.9,1.0] (1.0 maps to the last bin).
  std::vector<std::vector<std::size_t>> joint;

  [[nodiscard]] double responsive_share() const noexcept {
    return pair_count == 0
               ? 0.0
               : static_cast<double>(responsive_pairs) / static_cast<double>(pair_count);
  }
};

inline constexpr int kJaccardBins = 10;

/// Bin index for a similarity value in [0,1].
[[nodiscard]] int jaccard_bin(double value) noexcept;

[[nodiscard]] PortScanComparison compare_with_portscan(std::span<const SiblingPair> pairs,
                                                       const scan::PortScanDataset& scan);

}  // namespace sp::core
