// Reusable fork-join worker pool (extracted from ParallelDetector so the
// serving path can share it).
//
// The pool runs one job at a time across `thread_count` workers: run()
// invokes `job(worker_id)` once per worker (ids 0..thread_count-1) and
// returns when every invocation has finished. Worker 0 executes on the
// calling thread, so thread_count == 1 spawns no threads at all; pool
// threads persist across run() calls, so repeated dispatch (49 snapshot
// detections, every query_many batch) pays thread start-up once.
//
// run() is not reentrant and not thread-safe: callers that share a pool
// across threads must serialize dispatch (SiblingService does so with a
// mutex around its batch path).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sp::core {

class WorkerPool {
 public:
  /// `thread_count` 0 picks the hardware concurrency (capped at 64, like
  /// SpTunerMs).
  explicit WorkerPool(unsigned thread_count = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs `job(worker_id)` on every worker (ids 0..thread_count-1, id 0 on
  /// the calling thread) and returns when all have finished.
  void run(const std::function<void(unsigned)>& job);

  [[nodiscard]] unsigned thread_count() const noexcept { return thread_count_; }

 private:
  void worker_loop(unsigned worker_id);

  unsigned thread_count_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sp::core
