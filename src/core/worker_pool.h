// Reusable worker pool shared by the parallel engines (extracted from
// ParallelDetector so the serving path can share it) with two dispatch
// modes over one set of persistent threads:
//
//  * Fork-join — run() invokes `job(worker_id)` once per worker (ids
//    0..thread_count-1) and returns when every invocation has finished.
//    Worker 0 executes on the calling thread, so thread_count == 1 spawns
//    no threads at all. This is the parallel_for-style mode the detection
//    and SP-Tuner engines use.
//  * Task queue — submit() enqueues an independent task; pool threads
//    drain the queue in FIFO order. This is the mode the sp::pipeline
//    StageGraph scheduler dispatches DAG stages on, so campaign stages
//    and parallel_for users share one pool. With no pool threads
//    (thread_count == 1) a submitted task runs inline on the calling
//    thread — submit() is then synchronous, which keeps single-threaded
//    runs deterministic and dependency-ordered.
//
// Pool threads persist across dispatches, so repeated use (49 snapshot
// detections, every query_many batch, hundreds of campaign stages) pays
// thread start-up once.
//
// Sharing rules:
//  * run() is not reentrant and not thread-safe: callers that share a
//    pool across threads must serialize fork-join dispatch (SiblingService
//    does so with a mutex around its batch path). A run() issued while
//    queued tasks are executing waits for the busy workers to pick up the
//    job after their current task.
//  * submit() is thread-safe (tasks may submit further tasks).
//  * A task must not issue a fork-join run() or a blocking wait_idle() on
//    the pool executing it — every worker could end up waiting for the
//    others and deadlock. Tasks needing inner parallelism use a different
//    pool or run serial.
//  * Tasks must not throw; an escaping exception terminates the process.
//
// Destruction drains the queue: every task submitted before ~WorkerPool
// still runs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sp::core {

class WorkerPool {
 public:
  /// `thread_count` 0 picks the hardware concurrency (capped at 64, like
  /// SpTunerMs).
  explicit WorkerPool(unsigned thread_count = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs `job(worker_id)` on every worker (ids 0..thread_count-1, id 0 on
  /// the calling thread) and returns when all have finished.
  void run(const std::function<void(unsigned)>& job);

  /// Enqueues one independent task for execution by a pool thread. When
  /// the pool has no threads (thread_count == 1) the task runs inline
  /// before submit() returns.
  void submit(std::function<void()> task);

  /// Blocks until the task queue is empty and no submitted task is still
  /// executing. Does not wait for fork-join jobs (run() already does).
  void wait_idle();

  [[nodiscard]] unsigned thread_count() const noexcept { return thread_count_; }

 private:
  /// A queued task plus its enqueue instant, so dequeue can report the
  /// queue wait to the `worker_pool.task_wait_us` histogram.
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(unsigned worker_id);
  void run_task(std::function<void()>& task,
                std::chrono::steady_clock::time_point enqueued);

  unsigned thread_count_;

  // lock-order: 40 core.worker_pool.mutex (innermost engine lock:
  // nests inside serve.service.pool_mutex via query_many → run(); never
  // held while a job or task body executes)
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::condition_variable idle_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned running_ = 0;
  std::deque<QueuedTask> tasks_;
  unsigned active_tasks_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Process-wide observability (obs::MetricsRegistry::global()): every
  // pool shares one set of metrics — the fleet view, not per-instance.
  obs::Gauge queue_depth_;        // worker_pool.queue_depth
  obs::Histogram task_wait_us_;   // enqueue → dequeue
  obs::Histogram task_run_us_;    // dequeue → completion
};

}  // namespace sp::core
