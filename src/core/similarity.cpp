#include "core/similarity.h"

#include <algorithm>
#include <limits>

namespace sp::core {

std::string_view metric_name(Metric metric) noexcept {
  switch (metric) {
    case Metric::Jaccard: return "jaccard";
    case Metric::Dice: return "dice";
    case Metric::Overlap: return "overlap";
  }
  return "?";
}

double similarity_from_sizes(Metric metric, std::size_t intersection, std::size_t size_a,
                             std::size_t size_b) noexcept {
  // Jaccard's union and Dice's denominator both start from size_a +
  // size_b, which wraps for adversarial or paper-scale inputs (the
  // 32-bit-size_t builds wrap already at ~4B elements). The guarded path
  // evaluates the same expression in double — exact for every sum below
  // 2^53, and the correctly-rounded quotient far beyond — and is taken
  // only when the integer sum would wrap, so in-range inputs keep their
  // bit-exact results.
  const bool sum_wraps = size_a > std::numeric_limits<std::size_t>::max() - size_b;
  switch (metric) {
    case Metric::Jaccard: {
      if (sum_wraps) {
        const double union_size = static_cast<double>(size_a) + static_cast<double>(size_b) -
                                  static_cast<double>(intersection);
        return union_size <= 0.0 ? 0.0 : static_cast<double>(intersection) / union_size;
      }
      const std::size_t union_size = size_a + size_b - intersection;
      return union_size == 0 ? 0.0
                             : static_cast<double>(intersection) / static_cast<double>(union_size);
    }
    case Metric::Dice: {
      if (sum_wraps) {
        const double denom = static_cast<double>(size_a) + static_cast<double>(size_b);
        return 2.0 * static_cast<double>(intersection) / denom;
      }
      const std::size_t denom = size_a + size_b;
      return denom == 0 ? 0.0
                        : 2.0 * static_cast<double>(intersection) / static_cast<double>(denom);
    }
    case Metric::Overlap: {
      const std::size_t denom = std::min(size_a, size_b);
      return denom == 0 ? 0.0
                        : static_cast<double>(intersection) / static_cast<double>(denom);
    }
  }
  return 0.0;
}

double similarity(Metric metric, const DomainSet& a, const DomainSet& b) noexcept {
  return similarity_from_sizes(metric, intersection_size(a, b), a.size(), b.size());
}

}  // namespace sp::core
