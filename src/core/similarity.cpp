#include "core/similarity.h"

#include <algorithm>

namespace sp::core {

std::string_view metric_name(Metric metric) noexcept {
  switch (metric) {
    case Metric::Jaccard: return "jaccard";
    case Metric::Dice: return "dice";
    case Metric::Overlap: return "overlap";
  }
  return "?";
}

double similarity_from_sizes(Metric metric, std::size_t intersection, std::size_t size_a,
                             std::size_t size_b) noexcept {
  switch (metric) {
    case Metric::Jaccard: {
      const std::size_t union_size = size_a + size_b - intersection;
      return union_size == 0 ? 0.0
                             : static_cast<double>(intersection) / static_cast<double>(union_size);
    }
    case Metric::Dice: {
      const std::size_t denom = size_a + size_b;
      return denom == 0 ? 0.0
                        : 2.0 * static_cast<double>(intersection) / static_cast<double>(denom);
    }
    case Metric::Overlap: {
      const std::size_t denom = std::min(size_a, size_b);
      return denom == 0 ? 0.0
                        : static_cast<double>(intersection) / static_cast<double>(denom);
    }
  }
  return 0.0;
}

double similarity(Metric metric, const DomainSet& a, const DomainSet& b) noexcept {
  return similarity_from_sizes(metric, intersection_size(a, b), a.size(), b.size());
}

}  // namespace sp::core
