// Serialization of sibling prefix lists — the artifact the paper publishes
// at sibling-prefixes.github.io for operators and researchers.
//
// Format: CSV with header
//   v4_prefix,v6_prefix,similarity,shared_domains,v4_domains,v6_domains
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/detect.h"

namespace sp::core {

/// Writes the pair list; returns false on I/O error.
[[nodiscard]] bool write_sibling_list(const std::string& path,
                                      std::span<const SiblingPair> pairs);

/// Why read_sibling_list failed. `line` is the 1-based CSV line of the
/// offending row (0 for file-level failures such as an unopenable file).
struct SiblingListError {
  std::size_t line = 0;
  std::string message;
};

/// Reads a pair list previously written by write_sibling_list, streaming
/// rows instead of materializing the file (published lists reach millions
/// of rows). Returns nullopt on I/O error, a malformed header, or any
/// unparsable row; when `error` is non-null it receives the offending
/// line and a reason.
[[nodiscard]] std::optional<std::vector<SiblingPair>> read_sibling_list(
    const std::string& path, SiblingListError* error = nullptr);

}  // namespace sp::core
