// Serialization of sibling prefix lists — the artifact the paper publishes
// at sibling-prefixes.github.io for operators and researchers.
//
// Format: CSV with header
//   v4_prefix,v6_prefix,similarity,shared_domains,v4_domains,v6_domains
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/detect.h"

namespace sp::core {

/// Writes the pair list; returns false on I/O error.
[[nodiscard]] bool write_sibling_list(const std::string& path,
                                      std::span<const SiblingPair> pairs);

/// Reads a pair list previously written by write_sibling_list. Returns
/// nullopt on I/O error, a malformed header, or any unparsable row.
[[nodiscard]] std::optional<std::vector<SiblingPair>> read_sibling_list(
    const std::string& path);

}  // namespace sp::core
