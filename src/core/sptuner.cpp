#include "core/sptuner.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace sp::core {

namespace {

constexpr double kEpsilon = 1e-12;

SiblingPair make_pair(const Prefix& v4, const Prefix& v6, const DomainSet& d4,
                      const DomainSet& d6) {
  SiblingPair pair;
  pair.v4 = v4;
  pair.v6 = v6;
  pair.shared_domains = static_cast<std::uint32_t>(intersection_size(d4, d6));
  pair.v4_domain_count = static_cast<std::uint32_t>(d4.size());
  pair.v6_domain_count = static_cast<std::uint32_t>(d6.size());
  pair.similarity =
      similarity_from_sizes(Metric::Jaccard, pair.shared_domains, d4.size(), d6.size());
  return pair;
}

}  // namespace

SpTunerMs::SpTunerMs(const DualStackCorpus& corpus, SpTunerConfig config)
    : corpus_(&corpus), config_(config) {}

DomainSet SpTunerMs::domains_of(std::span<const Item> items) {
  DomainSet out;
  for (const Item& item : items) {
    out.insert(out.end(), item.domains->begin(), item.domains->end());
  }
  normalize(out);
  return out;
}

std::vector<const DomainSet*> SpTunerMs::domain_pointers(std::span<const Item> items) {
  std::vector<const DomainSet*> ptrs;
  ptrs.reserve(items.size());
  for (const Item& item : items) ptrs.push_back(item.domains);
  return ptrs;
}

bool SpTunerMs::can_descend(const Side& side, unsigned threshold) const {
  return side.prefix.length() < std::min(threshold, side.prefix.max_length());
}

std::vector<SpTunerMs::Side> SpTunerMs::children_of(const Side& side) {
  std::vector<Side> children;
  Side low{side.prefix.child(0), {}};
  Side high{side.prefix.child(1), {}};
  for (const Item& item : side.items) {
    (low.prefix.contains(item.host) ? low : high).items.push_back(item);
  }
  if (!low.items.empty()) children.push_back(std::move(low));
  if (!high.items.empty()) children.push_back(std::move(high));
  return children;
}

std::vector<SiblingPair> SpTunerMs::tune_pair(const SiblingPair& pair) const {
  std::vector<SiblingPair> results;

  const auto to_items = [](const std::vector<DualStackCorpus::HostDomains>& hosts) {
    std::vector<Item> items;
    items.reserve(hosts.size());
    for (const auto& host : hosts) items.push_back({host.host, &host.domains});
    return items;
  };

  std::vector<Task> work;
  work.push_back(Task{{pair.v4, to_items(corpus_->hosts_of(pair.v4))},
                      {pair.v6, to_items(corpus_->hosts_of(pair.v6))}});

  while (!work.empty()) {
    Task task = std::move(work.back());
    work.pop_back();

    DomainSet d4 = domains_of(task.v4.items);
    DomainSet d6 = domains_of(task.v6.items);
    double current = similarity_from_sizes(Metric::Jaccard, intersection_size(d4, d6),
                                           d4.size(), d6.size());
    if (current <= 0.0) continue;  // pairs with similarity 0 are discarded

    while (true) {
      const bool descend4 = can_descend(task.v4, config_.v4_threshold);
      const bool descend6 = can_descend(task.v6, config_.v6_threshold);
      if (!descend4 && !descend6) break;

      // Candidate sides: keep the current prefix or take a populated child.
      std::vector<Side> options4{task.v4};
      if (descend4) {
        for (auto& child : children_of(task.v4)) options4.push_back(std::move(child));
      }
      std::vector<Side> options6{task.v6};
      if (descend6) {
        for (auto& child : children_of(task.v6)) options6.push_back(std::move(child));
      }

      // The v6 option unions are loop-invariant in c4, so materialize them
      // once per refinement step instead of once per (c4, c6) combination.
      std::vector<DomainSet> unions6;
      unions6.reserve(options6.size());
      for (const Side& c6 : options6) unions6.push_back(domains_of(c6.items));
      std::vector<std::vector<const DomainSet*>> ptrs6;
      if (config_.estimator != nullptr) {
        ptrs6.reserve(options6.size());
        for (const Side& c6 : options6) ptrs6.push_back(domain_pointers(c6.items));
      }

      const Side* best4 = nullptr;
      const Side* best6 = nullptr;
      double best_value = 0.0;
      unsigned best_depth = 0;
      for (const Side& c4 : options4) {
        const DomainSet cd4 = domains_of(c4.items);
        const std::vector<const DomainSet*> ptrs4 =
            config_.estimator != nullptr ? domain_pointers(c4.items)
                                         : std::vector<const DomainSet*>{};
        for (std::size_t j = 0; j < options6.size(); ++j) {
          const Side& c6 = options6[j];
          if (c4.prefix == task.v4.prefix && c6.prefix == task.v6.prefix) continue;
          // Conservative estimator filter: a combination can only be
          // skipped when even estimate + margin cannot reach the running
          // best, so an estimator honoring the margin never changes which
          // combination wins (the filter never fires while best_value is
          // still below the margin, so the first combinations always get
          // the exact evaluation).
          if (config_.estimator != nullptr &&
              config_.estimator->estimate_union_jaccard(ptrs4, ptrs6[j]) +
                      config_.estimator_margin <
                  best_value) {
            continue;
          }
          const DomainSet& cd6 = unions6[j];
          const double value = similarity_from_sizes(
              Metric::Jaccard, intersection_size(cd4, cd6), cd4.size(), cd6.size());
          const unsigned depth = c4.prefix.length() + c6.prefix.length();
          if (best4 == nullptr || value > best_value + kEpsilon ||
              (value + kEpsilon >= best_value && depth > best_depth)) {
            best4 = &c4;
            best6 = &c6;
            best_value = value;
            best_depth = depth;
          }
        }
      }
      // Only move while the refinement is at least as good (Algorithm 1's
      // loop condition), so tuning never worsens similarity.
      if (best4 == nullptr || best_value + kEpsilon < current) break;

      // Branch tracking: hosts on the sibling branch of a taken child are
      // re-queued with the counterpart hosts serving the same domains.
      const auto queue_branch = [&](const Side& parent, const Side& chosen,
                                    const Side& counterpart, bool branch_is_v4) {
        if (chosen.prefix == parent.prefix) return;
        Side lost{parent.prefix, {}};
        for (const Item& item : parent.items) {
          if (!chosen.prefix.contains(item.host)) lost.items.push_back(item);
        }
        if (lost.items.empty()) return;
        // Narrow the lost side to the sibling child covering its hosts.
        const Prefix sibling = chosen.prefix ==
                                       parent.prefix.child(0)
                                   ? parent.prefix.child(1)
                                   : parent.prefix.child(0);
        lost.prefix = sibling;
        const DomainSet lost_domains = domains_of(lost.items);
        Side other{counterpart.prefix, {}};
        for (const Item& item : counterpart.items) {
          if (intersection_size(*item.domains, lost_domains) > 0) {
            other.items.push_back(item);
          }
        }
        if (other.items.empty()) return;
        work.push_back(branch_is_v4 ? Task{std::move(lost), std::move(other)}
                                    : Task{std::move(other), std::move(lost)});
      };
      queue_branch(task.v4, *best4, task.v6, /*branch_is_v4=*/true);
      queue_branch(task.v6, *best6, task.v4, /*branch_is_v4=*/false);

      task.v4 = *best4;
      task.v6 = *best6;
      current = best_value;
    }

    d4 = domains_of(task.v4.items);
    d6 = domains_of(task.v6.items);
    results.push_back(make_pair(task.v4.prefix, task.v6.prefix, d4, d6));
  }

  std::sort(results.begin(), results.end());
  results.erase(std::unique(results.begin(), results.end()), results.end());
  return results;
}

SpTunerResult SpTunerMs::tune_all(std::span<const SiblingPair> pairs) const {
  SpTunerResult result;
  result.input_count = pairs.size();
  for (const SiblingPair& pair : pairs) {
    const auto tuned = tune_pair(pair);
    const bool unchanged =
        tuned.size() == 1 && tuned.front().v4 == pair.v4 && tuned.front().v6 == pair.v6;
    if (!unchanged) ++result.changed_count;
    result.pairs.insert(result.pairs.end(), tuned.begin(), tuned.end());
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  result.pairs.erase(std::unique(result.pairs.begin(), result.pairs.end()),
                     result.pairs.end());
  return result;
}

SpTunerResult SpTunerMs::tune_all_parallel(std::span<const SiblingPair> pairs,
                                           unsigned thread_count) const {
  if (thread_count == 0) thread_count = std::max(1u, std::thread::hardware_concurrency());
  thread_count = std::min<unsigned>(thread_count, 64);

  // Each pair is tuned independently; workers pull indexes from a shared
  // counter and write into per-pair slots, so no locking is needed beyond
  // the counter and the merge below is deterministic.
  std::vector<std::vector<SiblingPair>> outputs(pairs.size());
  std::atomic<std::size_t> next{0};
  {
    std::vector<std::jthread> workers;
    workers.reserve(thread_count);
    for (unsigned t = 0; t < thread_count; ++t) {
      workers.emplace_back([this, pairs, &outputs, &next] {
        for (;;) {
          // sp-lint: atomics-ok(work-stealing index cursor; claims need
          // no ordering, only uniqueness — the pool join publishes results)
          const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
          if (index >= pairs.size()) return;
          outputs[index] = tune_pair(pairs[index]);
        }
      });
    }
  }

  SpTunerResult result;
  result.input_count = pairs.size();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const bool unchanged = outputs[i].size() == 1 && outputs[i].front().v4 == pairs[i].v4 &&
                           outputs[i].front().v6 == pairs[i].v6;
    if (!unchanged) ++result.changed_count;
    result.pairs.insert(result.pairs.end(), outputs[i].begin(), outputs[i].end());
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  result.pairs.erase(std::unique(result.pairs.begin(), result.pairs.end()),
                     result.pairs.end());
  return result;
}

SpTunerLs::SpTunerLs(const DualStackCorpus& corpus, const bgp::Rib& rib,
                     SpTunerLsConfig config)
    : corpus_(&corpus), rib_(&rib), config_(config) {}

SiblingPair SpTunerLs::tune_pair(const SiblingPair& pair) const {
  const auto original_origin = [this](const Prefix& prefix) -> std::uint32_t {
    const auto route = rib_->lookup(prefix);
    return route ? route->origin_as : 0;
  };
  const std::uint32_t origin4 = original_origin(pair.v4);
  const std::uint32_t origin6 = original_origin(pair.v6);

  // Candidate covering prefixes per side, stopping at an origin-AS change
  // (IsASnumChange in Algorithm 2) or the level bound.
  const auto candidates = [&](const Prefix& start, unsigned levels,
                              std::uint32_t origin) {
    std::vector<Prefix> out{start};
    Prefix current = start;
    for (unsigned level = 0; level < levels; ++level) {
      const auto up = current.supernet();
      if (!up) break;
      current = *up;
      const auto route = rib_->lookup(current);
      if (!route || route->origin_as != origin) break;
      out.push_back(current);
    }
    return out;
  };

  SiblingPair best = pair;
  // The v6 covering unions are loop-invariant in p4: materialize them once
  // instead of once per (p4, p6) combination.
  const std::vector<Prefix> options6 = candidates(pair.v6, config_.v6_levels_up, origin6);
  std::vector<DomainSet> unions6;
  unions6.reserve(options6.size());
  for (const Prefix& p6 : options6) unions6.push_back(corpus_->domains_within(p6));

  for (const Prefix& p4 : candidates(pair.v4, config_.v4_levels_up, origin4)) {
    const DomainSet d4 = corpus_->domains_within(p4);
    const DomainSet* d4_ptr[] = {&d4};
    for (std::size_t j = 0; j < options6.size(); ++j) {
      const Prefix& p6 = options6[j];
      if (p4 == pair.v4 && p6 == pair.v6) continue;
      const DomainSet& d6 = unions6[j];
      // Same conservative filter as SP-Tuner-MS: skip the exact pass only
      // when even estimate + margin cannot beat the incumbent.
      if (config_.estimator != nullptr) {
        const DomainSet* d6_ptr[] = {&d6};
        if (config_.estimator->estimate_union_jaccard(d4_ptr, d6_ptr) +
                config_.estimator_margin <
            best.similarity) {
          continue;
        }
      }
      const SiblingPair candidate = make_pair(p4, p6, d4, d6);
      if (candidate.similarity > best.similarity + kEpsilon) best = candidate;
    }
  }
  return best;
}

SpTunerResult SpTunerLs::tune_all(std::span<const SiblingPair> pairs) const {
  SpTunerResult result;
  result.input_count = pairs.size();
  for (const SiblingPair& pair : pairs) {
    const SiblingPair tuned = tune_pair(pair);
    if (tuned.v4 != pair.v4 || tuned.v6 != pair.v6) ++result.changed_count;
    result.pairs.push_back(tuned);
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  result.pairs.erase(std::unique(result.pairs.begin(), result.pairs.end()),
                     result.pairs.end());
  return result;
}

}  // namespace sp::core
