// Diffing two sibling prefix lists.
//
// The paper publishes the pair list periodically; consumers (operators
// syncing ACLs, researchers tracking deployments) need to know what
// changed between releases. A pair is matched by its (v4, v6) prefix key;
// matched pairs whose similarity or domain counts differ are "changed".
#pragma once

#include <span>
#include <vector>

#include "core/detect.h"

namespace sp::core {

struct SiblingListDiff {
  std::vector<SiblingPair> added;    // only in the new list
  std::vector<SiblingPair> removed;  // only in the old list
  struct Changed {
    SiblingPair before;
    SiblingPair after;
  };
  std::vector<Changed> changed;      // same key, different values
  std::vector<SiblingPair> unchanged;

  [[nodiscard]] bool empty() const noexcept {
    return added.empty() && removed.empty() && changed.empty();
  }
};

/// Computes the release diff. Inputs need not be sorted; outputs are
/// sorted by (v4, v6).
[[nodiscard]] SiblingListDiff diff_sibling_lists(std::span<const SiblingPair> old_list,
                                                 std::span<const SiblingPair> new_list);

}  // namespace sp::core
