#include "core/sibling_sets.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace sp::core {

namespace {

/// Plain union-find over pair indexes.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<SiblingSetPair> build_sibling_sets(const DualStackCorpus& corpus,
                                               std::span<const SiblingPair> pairs) {
  DisjointSets sets(pairs.size());
  std::unordered_map<Prefix, std::size_t> first_seen;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (const Prefix& prefix : {pairs[i].v4, pairs[i].v6}) {
      const auto [it, inserted] = first_seen.try_emplace(prefix, i);
      if (!inserted) sets.merge(i, it->second);
    }
  }

  std::unordered_map<std::size_t, SiblingSetPair> components;
  std::unordered_map<std::size_t, std::pair<DomainSet, DomainSet>> component_domains;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const std::size_t root = sets.find(i);
    SiblingSetPair& component = components[root];
    component.v4_prefixes.push_back(pairs[i].v4);
    component.v6_prefixes.push_back(pairs[i].v6);
    ++component.member_pairs;
  }

  std::vector<SiblingSetPair> out;
  out.reserve(components.size());
  for (auto& [root, component] : components) {
    for (auto* prefixes : {&component.v4_prefixes, &component.v6_prefixes}) {
      std::sort(prefixes->begin(), prefixes->end());
      prefixes->erase(std::unique(prefixes->begin(), prefixes->end()), prefixes->end());
    }
    DomainSet d4;
    for (const Prefix& prefix : component.v4_prefixes) {
      if (const DomainSet* domains = corpus.domains_of(prefix)) {
        d4.insert(d4.end(), domains->begin(), domains->end());
      }
    }
    DomainSet d6;
    for (const Prefix& prefix : component.v6_prefixes) {
      if (const DomainSet* domains = corpus.domains_of(prefix)) {
        d6.insert(d6.end(), domains->begin(), domains->end());
      }
    }
    normalize(d4);
    normalize(d6);
    component.similarity = jaccard(d4, d6);
    component.domain_count = set_union(d4, d6).size();
    out.push_back(std::move(component));
  }

  std::sort(out.begin(), out.end(), [](const SiblingSetPair& a, const SiblingSetPair& b) {
    if (a.member_pairs != b.member_pairs) return a.member_pairs > b.member_pairs;
    return a.v4_prefixes < b.v4_prefixes;
  });
  return out;
}

}  // namespace sp::core
