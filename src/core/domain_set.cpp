#include "core/domain_set.h"

#include <algorithm>

namespace sp::core {

void normalize(DomainSet& set) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
}

void insert_id(DomainSet& set, DomainId id) {
  const auto it = std::lower_bound(set.begin(), set.end(), id);
  if (it == set.end() || *it != id) set.insert(it, id);
}

bool contains_id(const DomainSet& set, DomainId id) noexcept {
  return std::binary_search(set.begin(), set.end(), id);
}

std::size_t intersection_size(const DomainSet& a, const DomainSet& b) noexcept {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

DomainSet set_union(const DomainSet& a, const DomainSet& b) {
  DomainSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

DomainSet set_intersection(const DomainSet& a, const DomainSet& b) {
  DomainSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

DomainSet set_difference(const DomainSet& a, const DomainSet& b) {
  DomainSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

DomainId DomainInterner::intern(const dns::DomainName& name) {
  const auto [it, inserted] = ids_.try_emplace(name, static_cast<DomainId>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

std::optional<DomainId> DomainInterner::find(const dns::DomainName& name) const noexcept {
  const auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace sp::core
