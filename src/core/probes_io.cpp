#include "core/probes_io.h"

#include "io/csv.h"

namespace sp::core {

namespace {
const io::CsvRow kHeader = {"v4_address", "v6_address"};
}  // namespace

bool write_probes_csv(const std::string& path, std::span<const DualStackProbe> probes) {
  std::vector<io::CsvRow> rows;
  rows.reserve(probes.size() + 1);
  rows.push_back(kHeader);
  for (const DualStackProbe& probe : probes) {
    rows.push_back({probe.v4.to_string(), probe.v6.to_string()});
  }
  return io::write_csv_file(path, rows);
}

std::optional<std::vector<DualStackProbe>> read_probes_csv(const std::string& path) {
  const auto rows = io::read_csv_file(path);
  if (!rows || rows->empty() || rows->front() != kHeader) return std::nullopt;
  std::vector<DualStackProbe> probes;
  probes.reserve(rows->size() - 1);
  for (std::size_t i = 1; i < rows->size(); ++i) {
    const io::CsvRow& row = (*rows)[i];
    if (row.size() != 2) return std::nullopt;
    const auto v4 = IPAddress::from_string(row[0]);
    const auto v6 = IPAddress::from_string(row[1]);
    if (!v4 || !v4->is_v4() || !v6 || !v6->is_v6()) return std::nullopt;
    probes.push_back({*v4, *v6});
  }
  return probes;
}

}  // namespace sp::core
