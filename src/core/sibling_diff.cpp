#include "core/sibling_diff.h"

#include <algorithm>
#include <cmath>

namespace sp::core {

namespace {

constexpr double kEpsilon = 1e-9;

bool same_values(const SiblingPair& a, const SiblingPair& b) {
  return std::abs(a.similarity - b.similarity) <= kEpsilon &&
         a.shared_domains == b.shared_domains && a.v4_domain_count == b.v4_domain_count &&
         a.v6_domain_count == b.v6_domain_count;
}

}  // namespace

SiblingListDiff diff_sibling_lists(std::span<const SiblingPair> old_list,
                                   std::span<const SiblingPair> new_list) {
  std::vector<SiblingPair> old_sorted(old_list.begin(), old_list.end());
  std::vector<SiblingPair> new_sorted(new_list.begin(), new_list.end());
  std::sort(old_sorted.begin(), old_sorted.end());
  std::sort(new_sorted.begin(), new_sorted.end());

  SiblingListDiff diff;
  auto old_it = old_sorted.begin();
  auto new_it = new_sorted.begin();
  while (old_it != old_sorted.end() || new_it != new_sorted.end()) {
    if (old_it == old_sorted.end()) {
      diff.added.push_back(*new_it++);
    } else if (new_it == new_sorted.end()) {
      diff.removed.push_back(*old_it++);
    } else if (*old_it < *new_it) {
      diff.removed.push_back(*old_it++);
    } else if (*new_it < *old_it) {
      diff.added.push_back(*new_it++);
    } else {
      if (same_values(*old_it, *new_it)) {
        diff.unchanged.push_back(*new_it);
      } else {
        diff.changed.push_back({*old_it, *new_it});
      }
      ++old_it;
      ++new_it;
    }
  }
  return diff;
}

}  // namespace sp::core
