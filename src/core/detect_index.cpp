#include "core/detect_index.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace sp::core {

namespace {

DetectIndex::Side build_side(const std::unordered_map<Prefix, DomainSet>& sets) {
  DetectIndex::Side side;

  // Dense ids are assigned in ascending prefix order so the index layout —
  // and therefore every downstream iteration — is independent of hash-map
  // iteration order.
  std::vector<std::pair<Prefix, const DomainSet*>> entries;
  entries.reserve(sets.size());
  for (const auto& [prefix, set] : sets) entries.emplace_back(prefix, &set);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::size_t total_elements = 0;
  DomainId max_element = 0;
  bool any_element = false;
  for (const auto& [prefix, set] : entries) {
    total_elements += set->size();
    if (!set->empty()) {
      any_element = true;
      max_element = std::max(max_element, set->back());  // sets are sorted
    }
  }

  // The CSR stores offsets as uint32; past that the offsets silently wrap
  // and postings scatter into the wrong lists, so refuse loudly instead.
  // Checked here (not per insert) because every reserve below is exact.
  if (total_elements > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("DetectIndex: side exceeds 2^32 set elements");
  }

  side.prefixes.reserve(entries.size());
  side.set_offsets.reserve(entries.size() + 1);
  side.set_offsets.push_back(0);
  side.set_elements.reserve(total_elements);
  for (const auto& [prefix, set] : entries) {
    side.prefixes.push_back(prefix);
    side.set_elements.insert(side.set_elements.end(), set->begin(), set->end());
    side.set_offsets.push_back(static_cast<std::uint32_t>(side.set_elements.size()));
  }

  // Counting sort into the posting CSR: pass 1 counts per element, pass 2
  // scatters dense ids in ascending order (so posting lists come out
  // sorted without a per-list sort).
  const std::size_t element_count = any_element ? static_cast<std::size_t>(max_element) + 1 : 0;
  side.posting_offsets.assign(element_count + 1, 0);
  for (const DomainId element : side.set_elements) ++side.posting_offsets[element + 1];
  std::partial_sum(side.posting_offsets.begin(), side.posting_offsets.end(),
                   side.posting_offsets.begin());

  side.postings.resize(total_elements);
  std::vector<std::uint32_t> cursor(side.posting_offsets.begin(),
                                    side.posting_offsets.end() - 1);
  for (std::uint32_t dense = 0; dense < side.prefixes.size(); ++dense) {
    for (const DomainId element : side.elements_of(dense)) {
      side.postings[cursor[element]++] = dense;
    }
  }
  return side;
}

}  // namespace

DetectIndex DetectIndex::build(const std::unordered_map<Prefix, DomainSet>& v4_sets,
                               const std::unordered_map<Prefix, DomainSet>& v6_sets) {
  DetectIndex index;
  index.v4 = build_side(v4_sets);
  index.v6 = build_side(v6_sets);
  return index;
}

}  // namespace sp::core
