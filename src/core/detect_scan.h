// The exact per-source-prefix scan shared by the detection engines.
//
// ParallelDetector shards this scan over a worker pool; the sp::sketch
// engine reuses it verbatim as its fallback path (sources with no LSH
// candidates or a best estimate below the conservative floor), which is
// what makes the sketch output byte-identical to the exact engine on
// those sources. Keeping one definition guarantees the two engines can
// never drift in tie handling or similarity arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/detect.h"
#include "core/detect_index.h"

namespace sp::core::detail {

/// Per-worker reusable state: candidate counts indexed by the target
/// side's dense prefix id, a touched list so resets cost O(candidates),
/// and the surviving tie list of the current source prefix.
struct ScanScratch {
  explicit ScanScratch(std::size_t target_prefixes) : counts(target_prefixes, 0) {}

  struct Tie {
    std::uint32_t dense = 0;
    std::uint32_t shared = 0;
    double value = 0.0;
  };

  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> touched;
  std::vector<Tie> ties;
};

/// Appends the best-match pairs of `source` (with ties) to `out`.
/// Semantically identical to one iteration of detail::detect_direction: a
/// candidate is emitted iff its value + kTieEpsilon >= the maximum value
/// over all candidates, and the similarity doubles are produced by the
/// same similarity_from_sizes calls, so emission is byte-identical.
inline void scan_source(const DetectIndex::Side& from_side, const DetectIndex::Side& to_side,
                        Family from, Metric metric, std::uint32_t source,
                        ScanScratch& scratch, std::vector<SiblingPair>& out,
                        DetectStats& stats) {
  ++stats.prefixes_scanned;
  const auto elements = from_side.elements_of(source);
  for (const DomainId element : elements) {
    for (const std::uint32_t candidate : to_side.postings_of(element)) {
      if (scratch.counts[candidate]++ == 0) scratch.touched.push_back(candidate);
    }
  }
  if (scratch.touched.empty()) return;

  // Single pass: the running best only grows, so any tie pruned against an
  // intermediate best would also be pruned against the final one; the
  // emission filter below re-checks survivors against the final best.
  double best = 0.0;
  scratch.ties.clear();
  stats.candidates_evaluated += scratch.touched.size();
  for (const std::uint32_t candidate : scratch.touched) {
    const std::uint32_t shared = scratch.counts[candidate];
    scratch.counts[candidate] = 0;
    const double value =
        similarity_from_sizes(metric, shared, elements.size(), to_side.set_size(candidate));
    if (value + detail::kTieEpsilon < best) continue;
    if (value > best) {
      best = value;
      std::erase_if(scratch.ties, [best](const ScanScratch::Tie& tie) {
        return tie.value + detail::kTieEpsilon < best;
      });
    }
    scratch.ties.push_back({candidate, shared, value});
  }
  scratch.touched.clear();
  if (best <= 0.0) return;

  const bool from_v4 = from == Family::v4;
  const Prefix& source_prefix = from_side.prefixes[source];
  const auto source_size = static_cast<std::uint32_t>(elements.size());
  for (const ScanScratch::Tie& tie : scratch.ties) {
    if (tie.value + detail::kTieEpsilon < best) continue;
    const Prefix& candidate_prefix = to_side.prefixes[tie.dense];
    const std::uint32_t candidate_size = to_side.set_size(tie.dense);
    SiblingPair pair;
    pair.v4 = from_v4 ? source_prefix : candidate_prefix;
    pair.v6 = from_v4 ? candidate_prefix : source_prefix;
    pair.similarity = tie.value;
    pair.shared_domains = tie.shared;
    pair.v4_domain_count = from_v4 ? source_size : candidate_size;
    pair.v6_domain_count = from_v4 ? candidate_size : source_size;
    out.push_back(pair);
    ++stats.pairs_emitted;
  }
}

}  // namespace sp::core::detail
