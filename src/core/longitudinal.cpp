#include "core/longitudinal.h"

#include <algorithm>

namespace sp::core {

namespace {

template <typename T>
void sort_unique(std::vector<T>& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

}  // namespace

void LongitudinalTracker::add_snapshot(const dns::ResolutionSnapshot& snapshot,
                                       const bgp::Rib& rib) {
  const std::size_t index = dates_.size();
  dates_.push_back(snapshot.date());

  for (const dns::DomainResolution& entry : snapshot.entries()) {
    if (!entry.dual_stack()) continue;
    Observation observation;
    for (const IPv4Address& address : entry.v4) {
      if (is_reserved(address)) continue;
      observation.v4_addresses.push_back(address);
      if (const auto route = rib.lookup(IPAddress(address))) {
        observation.v4_prefixes.push_back(route->prefix);
      }
    }
    for (const IPv6Address& address : entry.v6) {
      if (is_reserved(address)) continue;
      observation.v6_addresses.push_back(address);
      if (const auto route = rib.lookup(IPAddress(address))) {
        observation.v6_prefixes.push_back(route->prefix);
      }
    }
    sort_unique(observation.v4_prefixes);
    sort_unique(observation.v6_prefixes);
    sort_unique(observation.v4_addresses);
    sort_unique(observation.v6_addresses);
    domains_[entry.response_name.text()].by_snapshot[index] = std::move(observation);
  }
}

std::vector<std::size_t> LongitudinalTracker::visibility_histogram() const {
  std::vector<std::size_t> histogram(dates_.size(), 0);
  for (const auto& [name, track] : domains_) {
    const std::size_t visible = track.by_snapshot.size();
    if (visible >= 1 && visible <= histogram.size()) ++histogram[visible - 1];
  }
  return histogram;
}

std::vector<double> LongitudinalTracker::visibility_cdf() const {
  const auto histogram = visibility_histogram();
  std::vector<double> cdf(histogram.size(), 0.0);
  const double total = static_cast<double>(domains_.size());
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    cumulative += histogram[i];
    cdf[i] = total == 0.0 ? 0.0 : static_cast<double>(cumulative) / total;
  }
  return cdf;
}

std::size_t LongitudinalTracker::consistent_domain_count() const {
  std::size_t count = 0;
  for (const auto& [name, track] : domains_) {
    if (track.by_snapshot.size() == dates_.size()) ++count;
  }
  return count;
}

LongitudinalTracker::StabilitySeries LongitudinalTracker::stability() const {
  StabilitySeries series;
  if (dates_.empty()) return series;
  const std::size_t newest = dates_.size() - 1;

  std::vector<std::size_t> v4_prefix_same(dates_.size(), 0);
  std::vector<std::size_t> v6_prefix_same(dates_.size(), 0);
  std::vector<std::size_t> v4_address_same(dates_.size(), 0);
  std::vector<std::size_t> v6_address_same(dates_.size(), 0);
  std::vector<std::size_t> address_same(dates_.size(), 0);
  std::size_t consistent = 0;

  for (const auto& [name, track] : domains_) {
    if (track.by_snapshot.size() != dates_.size()) continue;  // consistent only
    ++consistent;
    const Observation& reference = track.by_snapshot.at(newest);
    for (std::size_t back = 0; back < dates_.size(); ++back) {
      const Observation& then = track.by_snapshot.at(newest - back);
      const bool v4p = then.v4_prefixes == reference.v4_prefixes;
      const bool v6p = then.v6_prefixes == reference.v6_prefixes;
      const bool v4a = then.v4_addresses == reference.v4_addresses;
      const bool v6a = then.v6_addresses == reference.v6_addresses;
      if (v4p) ++v4_prefix_same[back];
      if (v6p) ++v6_prefix_same[back];
      if (v4a) ++v4_address_same[back];
      if (v6a) ++v6_address_same[back];
      if (v4a && v6a) ++address_same[back];
    }
  }

  const auto to_fraction = [consistent](const std::vector<std::size_t>& counts) {
    std::vector<double> out(counts.size(), 0.0);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      out[i] = consistent == 0 ? 0.0
                               : static_cast<double>(counts[i]) / static_cast<double>(consistent);
    }
    return out;
  };
  series.v4_prefix_stable = to_fraction(v4_prefix_same);
  series.v6_prefix_stable = to_fraction(v6_prefix_same);
  series.v4_address_stable = to_fraction(v4_address_same);
  series.v6_address_stable = to_fraction(v6_address_same);
  series.address_stable = to_fraction(address_same);
  return series;
}

PairChangeReport classify_pair_changes(std::span<const SiblingPair> old_pairs,
                                       std::span<const SiblingPair> new_pairs) {
  constexpr double kEpsilon = 1e-9;
  PairChangeReport report;
  std::map<std::pair<Prefix, Prefix>, double> old_by_key;
  for (const SiblingPair& pair : old_pairs) {
    old_by_key.emplace(std::make_pair(pair.v4, pair.v6), pair.similarity);
  }
  for (const SiblingPair& pair : new_pairs) {
    const auto it = old_by_key.find(std::make_pair(pair.v4, pair.v6));
    if (it == old_by_key.end()) {
      report.fresh.push_back(pair.similarity);
    } else if (std::abs(it->second - pair.similarity) <= kEpsilon) {
      report.unchanged.push_back(pair.similarity);
    } else {
      report.changed_old.push_back(it->second);
      report.changed_new.push_back(pair.similarity);
    }
  }
  return report;
}

}  // namespace sp::core
