// SP-Tuner: fine-tuning sibling prefix CIDR sizes (paper sections 3.3/3.4
// and appendix A.1).
//
// SP-Tuner-MS (Algorithm 1) refines each sibling pair into more-specific
// sub-prefixes: at every step the children of the current v4/v6 prefixes
// are evaluated pairwise and the combination with the best (never worse)
// Jaccard value is taken, preferring deeper prefixes on ties so pairs
// shrink toward the configured thresholds. Populated hosts that fall on
// the branch *not* taken are never dropped: they are re-queued as new
// candidate pairs together with the counterpart hosts serving the same
// domains ("UpdateBranches" in the paper's pseudocode), so no domain is
// lost by tuning.
//
// SP-Tuner-LS (Algorithm 2) evaluates less-specific covering prefixes
// instead, walking up a bounded number of levels and stopping early when
// the covering announcement's origin AS changes. The paper (Figure 22)
// finds it does not improve similarity; it is implemented for the ablation.
#pragma once

#include <span>
#include <vector>

#include "bgp/rib.h"
#include "core/detect.h"
#include "core/similarity_estimator.h"

namespace sp::core {

struct SpTunerConfig {
  /// Deepest prefix lengths tuning may produce. The paper's analysis
  /// defaults to /28 and /96; /24 and /48 give most-specific *routable*
  /// pairs; using the input lengths disables tuning.
  unsigned v4_threshold = 28;
  unsigned v6_threshold = 96;
  /// Optional candidate filter: combinations whose estimated Jaccard plus
  /// `estimator_margin` stays below the running best skip the exact
  /// evaluation. Results are unchanged as long as the estimator's error
  /// stays within the margin (see sketch::SketchEstimator). The estimator
  /// must outlive the tuner and is shared across tuning threads, so its
  /// implementation must be thread-safe.
  const SimilarityEstimator* estimator = nullptr;
  double estimator_margin = 0.3;
};

struct SpTunerResult {
  std::vector<SiblingPair> pairs;  // sorted by (v4, v6), duplicate-free
  std::size_t input_count = 0;
  /// Input pairs whose tuned output differs from the input prefixes.
  std::size_t changed_count = 0;
};

class SpTunerMs {
 public:
  explicit SpTunerMs(const DualStackCorpus& corpus, SpTunerConfig config = {});

  /// Refines one pair. The result contains at least one pair (the input
  /// itself when no refinement helps) plus any branch pairs; all entries
  /// carry recomputed Jaccard values.
  [[nodiscard]] std::vector<SiblingPair> tune_pair(const SiblingPair& pair) const;

  /// Refines every pair and merges the outputs.
  [[nodiscard]] SpTunerResult tune_all(std::span<const SiblingPair> pairs) const;

  /// Same result as tune_all (pairs are independent), computed on
  /// `thread_count` worker threads; 0 picks the hardware concurrency.
  [[nodiscard]] SpTunerResult tune_all_parallel(std::span<const SiblingPair> pairs,
                                                unsigned thread_count = 0) const;

 private:
  struct Item {
    Prefix host;
    const DomainSet* domains;
  };
  struct Side {
    Prefix prefix;
    std::vector<Item> items;
  };
  struct Task {
    Side v4;
    Side v6;
  };

  [[nodiscard]] static DomainSet domains_of(std::span<const Item> items);
  /// The items' set pointers, in item order — the estimator input (the
  /// pointers are corpus-owned host sets, so estimator caches stay valid).
  [[nodiscard]] static std::vector<const DomainSet*> domain_pointers(
      std::span<const Item> items);
  [[nodiscard]] bool can_descend(const Side& side, unsigned threshold) const;
  /// Child sides with non-empty item partitions (0, 1 or 2 entries).
  [[nodiscard]] static std::vector<Side> children_of(const Side& side);

  const DualStackCorpus* corpus_;
  SpTunerConfig config_;
};

struct SpTunerLsConfig {
  /// How many levels the search may walk up (the paper uses 1 for IPv4 and
  /// 4 for IPv6).
  unsigned v4_levels_up = 1;
  unsigned v6_levels_up = 4;
  /// Same contract as SpTunerConfig::estimator — covering pairs whose
  /// estimate plus margin cannot beat the incumbent skip the exact pass.
  const SimilarityEstimator* estimator = nullptr;
  double estimator_margin = 0.3;
};

class SpTunerLs {
 public:
  SpTunerLs(const DualStackCorpus& corpus, const bgp::Rib& rib, SpTunerLsConfig config = {});

  /// Returns the best covering pair when a strictly better Jaccard exists
  /// within the level bounds without crossing an origin-AS boundary;
  /// otherwise returns the input pair unchanged.
  [[nodiscard]] SiblingPair tune_pair(const SiblingPair& pair) const;

  [[nodiscard]] SpTunerResult tune_all(std::span<const SiblingPair> pairs) const;

 private:
  const DualStackCorpus* corpus_;
  const bgp::Rib* rib_;
  SpTunerLsConfig config_;
};

}  // namespace sp::core
