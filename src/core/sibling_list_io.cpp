#include "core/sibling_list_io.h"

#include <charconv>

#include "io/csv.h"

namespace sp::core {

namespace {

const io::CsvRow kHeader = {"v4_prefix", "v6_prefix",  "similarity",
                            "shared_domains", "v4_domains", "v6_domains"};

template <typename T>
bool parse_number(const std::string& text, T& out) {
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

bool parse_double(const std::string& text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

bool write_sibling_list(const std::string& path, std::span<const SiblingPair> pairs) {
  std::vector<io::CsvRow> rows;
  rows.reserve(pairs.size() + 1);
  rows.push_back(kHeader);
  for (const SiblingPair& pair : pairs) {
    char similarity[32];
    std::snprintf(similarity, sizeof similarity, "%.9f", pair.similarity);
    rows.push_back({pair.v4.to_string(), pair.v6.to_string(), similarity,
                    std::to_string(pair.shared_domains), std::to_string(pair.v4_domain_count),
                    std::to_string(pair.v6_domain_count)});
  }
  return io::write_csv_file(path, rows);
}

std::optional<std::vector<SiblingPair>> read_sibling_list(const std::string& path) {
  const auto rows = io::read_csv_file(path);
  if (!rows || rows->empty() || rows->front() != kHeader) return std::nullopt;

  std::vector<SiblingPair> pairs;
  pairs.reserve(rows->size() - 1);
  for (std::size_t i = 1; i < rows->size(); ++i) {
    const io::CsvRow& row = (*rows)[i];
    if (row.size() != kHeader.size()) return std::nullopt;
    SiblingPair pair;
    const auto v4 = Prefix::from_string(row[0]);
    const auto v6 = Prefix::from_string(row[1]);
    if (!v4 || v4->family() != Family::v4 || !v6 || v6->family() != Family::v6) {
      return std::nullopt;
    }
    pair.v4 = *v4;
    pair.v6 = *v6;
    if (!parse_double(row[2], pair.similarity) ||
        !parse_number(row[3], pair.shared_domains) ||
        !parse_number(row[4], pair.v4_domain_count) ||
        !parse_number(row[5], pair.v6_domain_count)) {
      return std::nullopt;
    }
    pairs.push_back(pair);
  }
  return pairs;
}

}  // namespace sp::core
