#include "core/sibling_list_io.h"

#include <charconv>
#include <fstream>

#include "io/csv.h"

namespace sp::core {

namespace {

const io::CsvRow kHeader = {"v4_prefix", "v6_prefix",  "similarity",
                            "shared_domains", "v4_domains", "v6_domains"};

template <typename T>
bool parse_number(const std::string& text, T& out) {
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

bool parse_double(const std::string& text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

bool write_sibling_list(const std::string& path, std::span<const SiblingPair> pairs) {
  std::vector<io::CsvRow> rows;
  rows.reserve(pairs.size() + 1);
  rows.push_back(kHeader);
  for (const SiblingPair& pair : pairs) {
    char similarity[32];
    std::snprintf(similarity, sizeof similarity, "%.9f", pair.similarity);
    rows.push_back({pair.v4.to_string(), pair.v6.to_string(), similarity,
                    std::to_string(pair.shared_domains), std::to_string(pair.v4_domain_count),
                    std::to_string(pair.v6_domain_count)});
  }
  return io::write_csv_file(path, rows);
}

namespace {

/// Parses one data row; on failure returns the reason.
const char* parse_row(const io::CsvRow& row, SiblingPair& pair) {
  if (row.size() != kHeader.size()) return "wrong column count";
  const auto v4 = Prefix::from_string(row[0]);
  if (!v4 || v4->family() != Family::v4) return "bad v4_prefix";
  const auto v6 = Prefix::from_string(row[1]);
  if (!v6 || v6->family() != Family::v6) return "bad v6_prefix";
  pair.v4 = *v4;
  pair.v6 = *v6;
  if (!parse_double(row[2], pair.similarity)) return "bad similarity";
  if (!parse_number(row[3], pair.shared_domains)) return "bad shared_domains";
  if (!parse_number(row[4], pair.v4_domain_count)) return "bad v4_domains";
  if (!parse_number(row[5], pair.v6_domain_count)) return "bad v6_domains";
  return nullptr;
}

}  // namespace

std::optional<std::vector<SiblingPair>> read_sibling_list(const std::string& path,
                                                          SiblingListError* error) {
  const auto fail = [error](std::size_t line, std::string message) {
    if (error != nullptr) *error = {line, std::move(message)};
    return std::nullopt;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(0, "cannot open file");

  std::vector<SiblingPair> pairs;
  bool saw_header = false;
  SiblingListError row_error;
  const auto status = io::read_csv_stream(in, [&](io::CsvRow&& row, std::size_t line) {
    if (!saw_header) {
      if (row != kHeader) {
        row_error = {line, "malformed header"};
        return false;
      }
      saw_header = true;
      return true;
    }
    SiblingPair pair;
    if (const char* reason = parse_row(row, pair)) {
      row_error = {line, reason};
      return false;
    }
    pairs.push_back(pair);
    return true;
  });
  if (!row_error.message.empty()) return fail(row_error.line, std::move(row_error.message));
  if (!status.ok) return fail(status.error_line, "unbalanced quote");
  if (!saw_header) return fail(0, "empty file");
  return pairs;
}

}  // namespace sp::core
