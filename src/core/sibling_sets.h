// Sibling prefix *set* pairs — the paper's section 6 future-work item.
//
// IPv4 address-space fragmentation can split one logical deployment over
// several small v4 prefixes whose counterpart is a single v6 prefix (or a
// different set of v6 fragments), capping pairwise Jaccard values. A
// sibling set pair groups connected pairs (pairs sharing a prefix on
// either side) and evaluates similarity over the *union* of the fragments'
// domain sets, recovering the similarity the fragmentation hid.
#pragma once

#include <span>
#include <vector>

#include "core/corpus.h"
#include "core/detect.h"

namespace sp::core {

struct SiblingSetPair {
  std::vector<Prefix> v4_prefixes;  // sorted
  std::vector<Prefix> v6_prefixes;  // sorted
  double similarity = 0.0;          // Jaccard over unioned domain sets
  std::size_t domain_count = 0;     // |union of both sides' domains|
  std::size_t member_pairs = 0;     // pairs merged into this set pair
};

/// Groups `pairs` into connected components (shared v4 or v6 prefix) and
/// scores each component by the Jaccard value of its unioned domain sets.
/// Output is sorted by descending member count, then by first v4 prefix.
[[nodiscard]] std::vector<SiblingSetPair> build_sibling_sets(const DualStackCorpus& corpus,
                                                             std::span<const SiblingPair> pairs);

}  // namespace sp::core
