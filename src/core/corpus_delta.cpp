#include "core/corpus_delta.h"

#include <algorithm>
#include <iterator>
#include <span>

namespace sp::core {

namespace {

/// Sorted-span difference a ∖ b into a DomainSet.
DomainSet span_difference(std::span<const DomainId> a, std::span<const DomainId> b) {
  DomainSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

/// Merge-walks the two sides' prefix lists (both ascending) and emits one
/// PrefixDelta per prefix whose element set differs.
std::vector<PrefixDelta> diff_side(const DetectIndex::Side& base, const DetectIndex::Side& next) {
  std::vector<PrefixDelta> deltas;
  std::uint32_t b = 0;
  std::uint32_t n = 0;
  const auto base_count = static_cast<std::uint32_t>(base.prefix_count());
  const auto next_count = static_cast<std::uint32_t>(next.prefix_count());
  while (b < base_count || n < next_count) {
    if (n >= next_count || (b < base_count && base.prefixes[b] < next.prefixes[n])) {
      // Prefix death: every base element is a removed edge.
      const auto elements = base.elements_of(b);
      deltas.push_back({base.prefixes[b], {}, DomainSet(elements.begin(), elements.end())});
      ++b;
      continue;
    }
    if (b >= base_count || next.prefixes[n] < base.prefixes[b]) {
      // Prefix birth: every next element is an added edge.
      const auto elements = next.elements_of(n);
      deltas.push_back({next.prefixes[n], DomainSet(elements.begin(), elements.end()), {}});
      ++n;
      continue;
    }
    const auto old_set = base.elements_of(b);
    const auto new_set = next.elements_of(n);
    DomainSet added = span_difference(new_set, old_set);
    DomainSet removed = span_difference(old_set, new_set);
    if (!added.empty() || !removed.empty()) {
      deltas.push_back({base.prefixes[b], std::move(added), std::move(removed)});
    }
    ++b;
    ++n;
  }
  return deltas;
}

}  // namespace

std::size_t CorpusDelta::edge_count() const noexcept {
  std::size_t edges = 0;
  for (const PrefixDelta& delta : v4) edges += delta.added.size() + delta.removed.size();
  for (const PrefixDelta& delta : v6) edges += delta.added.size() + delta.removed.size();
  return edges;
}

CorpusDelta CorpusDelta::between(const DetectIndex& base, const DetectIndex& next) {
  CorpusDelta delta;
  delta.v4 = diff_side(base.v4, next.v4);
  delta.v6 = diff_side(base.v6, next.v6);
  return delta;
}

}  // namespace sp::core
