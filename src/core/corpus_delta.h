// Edge-level corpus deltas: what changed between two detection indexes.
//
// The longitudinal campaign expresses month N→N+1 as MRT update replay
// plus dataset events, but detection consumed only the month's final
// corpus — every month paid a from-scratch run. A CorpusDelta captures
// the month boundary as data: per family, the prefixes whose domain sets
// changed, each with the exact element ids gained and lost. Prefix birth
// is a delta entry whose removed set is empty against an absent base row;
// prefix death is a delta entry whose removals empty the set. The stream
// engine (src/stream/) applies deltas to a DetectIndexOverlay and
// re-scores only the sources the delta can have affected.
//
// Deltas are canonical: per side sorted ascending by prefix, one entry
// per prefix, added/removed sorted, disjoint, and never both empty —
// which makes delta equality a vector comparison and keeps downstream
// dirty-set iteration deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "core/detect_index.h"
#include "core/domain_set.h"
#include "netbase/prefix.h"

namespace sp::core {

/// One prefix's domain-set change. `added` are element ids absent from
/// the base set, `removed` are ids present in it; both sorted, at least
/// one non-empty.
struct PrefixDelta {
  Prefix prefix;
  DomainSet added;
  DomainSet removed;

  friend bool operator==(const PrefixDelta&, const PrefixDelta&) = default;
};

/// The changes between two corpus snapshots (typically consecutive
/// months), per address family.
struct CorpusDelta {
  std::vector<PrefixDelta> v4;  // sorted ascending by prefix
  std::vector<PrefixDelta> v6;

  [[nodiscard]] const std::vector<PrefixDelta>& side(Family family) const noexcept {
    return family == Family::v4 ? v4 : v6;
  }

  [[nodiscard]] bool empty() const noexcept { return v4.empty() && v6.empty(); }

  /// Changed prefixes across both sides.
  [[nodiscard]] std::size_t prefix_count() const noexcept { return v4.size() + v6.size(); }

  /// Total domain→prefix edges added plus removed across both sides.
  [[nodiscard]] std::size_t edge_count() const noexcept;

  /// Diffs two detection indexes: applying the result to `base` (see
  /// DetectIndexOverlay) reproduces `next` exactly.
  [[nodiscard]] static CorpusDelta between(const DetectIndex& base, const DetectIndex& next);
};

}  // namespace sp::core
