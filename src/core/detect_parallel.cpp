#include "core/detect_parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sp::core {

namespace {

/// Source prefixes claimed per atomic fetch; large enough to amortize the
/// counter, small enough to balance skewed prefix sizes.
constexpr std::size_t kChunk = 32;

/// Per-worker reusable state: candidate counts indexed by the target
/// side's dense prefix id, a touched list so resets cost O(candidates),
/// and the surviving tie list of the current source prefix.
struct Scratch {
  explicit Scratch(std::size_t target_prefixes) : counts(target_prefixes, 0) {}

  struct Tie {
    std::uint32_t dense = 0;
    std::uint32_t shared = 0;
    double value = 0.0;
  };

  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> touched;
  std::vector<Tie> ties;
};

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Emits the best-match pairs of one source prefix. Semantically identical
/// to one iteration of detail::detect_direction: a candidate is emitted
/// iff its value + kTieEpsilon >= the maximum value over all candidates,
/// and the similarity doubles are produced by the same
/// similarity_from_sizes calls, so emission is byte-identical.
void scan_source(const DetectIndex::Side& from_side, const DetectIndex::Side& to_side,
                 Family from, Metric metric, std::uint32_t source, Scratch& scratch,
                 std::vector<SiblingPair>& out, DetectStats& stats) {
  ++stats.prefixes_scanned;
  const auto elements = from_side.elements_of(source);
  for (const DomainId element : elements) {
    for (const std::uint32_t candidate : to_side.postings_of(element)) {
      if (scratch.counts[candidate]++ == 0) scratch.touched.push_back(candidate);
    }
  }
  if (scratch.touched.empty()) return;

  // Single pass: the running best only grows, so any tie pruned against an
  // intermediate best would also be pruned against the final one; the
  // emission filter below re-checks survivors against the final best.
  double best = 0.0;
  scratch.ties.clear();
  stats.candidates_evaluated += scratch.touched.size();
  for (const std::uint32_t candidate : scratch.touched) {
    const std::uint32_t shared = scratch.counts[candidate];
    scratch.counts[candidate] = 0;
    const double value =
        similarity_from_sizes(metric, shared, elements.size(), to_side.set_size(candidate));
    if (value + detail::kTieEpsilon < best) continue;
    if (value > best) {
      best = value;
      std::erase_if(scratch.ties, [best](const Scratch::Tie& tie) {
        return tie.value + detail::kTieEpsilon < best;
      });
    }
    scratch.ties.push_back({candidate, shared, value});
  }
  scratch.touched.clear();
  if (best <= 0.0) return;

  const bool from_v4 = from == Family::v4;
  const Prefix& source_prefix = from_side.prefixes[source];
  const auto source_size = static_cast<std::uint32_t>(elements.size());
  for (const Scratch::Tie& tie : scratch.ties) {
    if (tie.value + detail::kTieEpsilon < best) continue;
    const Prefix& candidate_prefix = to_side.prefixes[tie.dense];
    const std::uint32_t candidate_size = to_side.set_size(tie.dense);
    SiblingPair pair;
    pair.v4 = from_v4 ? source_prefix : candidate_prefix;
    pair.v6 = from_v4 ? candidate_prefix : source_prefix;
    pair.similarity = tie.value;
    pair.shared_domains = tie.shared;
    pair.v4_domain_count = from_v4 ? source_size : candidate_size;
    pair.v6_domain_count = from_v4 ? candidate_size : source_size;
    out.push_back(pair);
    ++stats.pairs_emitted;
  }
}

}  // namespace

ParallelDetector::ParallelDetector(unsigned thread_count)
    : pool_(thread_count),
      runs_(obs::MetricsRegistry::global().counter("detect.runs")),
      pairs_emitted_(obs::MetricsRegistry::global().counter("detect.pairs_emitted")),
      candidates_(obs::MetricsRegistry::global().counter("detect.candidates_evaluated")),
      detect_us_(obs::MetricsRegistry::global().histogram("detect.run_us")) {}

void ParallelDetector::detect_direction(const DetectIndex& index, Family from, Metric metric,
                                        std::vector<SiblingPair>& out) {
  const DetectIndex::Side& from_side = index.side(from);
  const DetectIndex::Side& to_side =
      index.side(from == Family::v4 ? Family::v6 : Family::v4);
  const auto start = std::chrono::steady_clock::now();

  const std::size_t source_count = from_side.prefix_count();
  const unsigned thread_count = pool_.thread_count();
  std::vector<std::vector<SiblingPair>> buffers(thread_count);
  std::vector<DetectStats> locals(thread_count);
  std::atomic<std::size_t> next{0};

  const char* direction = from == Family::v4 ? "detect.v4" : "detect.v6";
  const std::function<void(unsigned)> job = [&](unsigned worker) {
    // One trace span per shard per direction — worker granularity, so the
    // trace shows shard skew without per-prefix overhead.
    const obs::ScopedSpan span(std::string(direction) + ".shard" + std::to_string(worker),
                               "detect");
    Scratch scratch(to_side.prefix_count());
    std::vector<SiblingPair>& buffer = buffers[worker];
    DetectStats& local = locals[worker];
    for (;;) {
      // sp-lint: atomics-ok(work-stealing chunk cursor; claims need no
      // ordering, only uniqueness — the pool join publishes results)
      const std::size_t begin = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= source_count) return;
      const std::size_t end = std::min(source_count, begin + kChunk);
      for (std::size_t source = begin; source < end; ++source) {
        scan_source(from_side, to_side, from, metric, static_cast<std::uint32_t>(source),
                    scratch, buffer, local);
      }
    }
  };
  pool_.run(job);

  for (unsigned worker = 0; worker < thread_count; ++worker) {
    out.insert(out.end(), buffers[worker].begin(), buffers[worker].end());
    stats_.prefixes_scanned += locals[worker].prefixes_scanned;
    stats_.candidates_evaluated += locals[worker].candidates_evaluated;
    stats_.pairs_emitted += locals[worker].pairs_emitted;
  }
  (from == Family::v4 ? stats_.v4_direction_ms : stats_.v6_direction_ms) = elapsed_ms(start);
}

std::vector<SiblingPair> ParallelDetector::detect(const DetectIndex& index,
                                                  const DetectOptions& options) {
  const auto run_start = std::chrono::steady_clock::now();
  stats_ = DetectStats{};
  stats_.threads_used = pool_.thread_count();

  std::vector<SiblingPair> pairs;
  detect_direction(index, Family::v4, options.metric, pairs);
  detect_direction(index, Family::v6, options.metric, pairs);

  // Merge exactly as detail::detect_over: one global sort + dedup, which
  // also erases any dependence on worker scheduling.
  const auto merge_start = std::chrono::steady_clock::now();
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  stats_.merge_ms = elapsed_ms(merge_start);

  // Registry updates once per run, never per prefix: aggregate counts and
  // one whole-run latency sample.
  runs_.add();
  pairs_emitted_.add(static_cast<std::int64_t>(pairs.size()));
  candidates_.add(static_cast<std::int64_t>(stats_.candidates_evaluated));
  detect_us_.record(static_cast<std::uint64_t>(elapsed_ms(run_start) * 1000.0));
  return pairs;
}

std::vector<SiblingPair> ParallelDetector::detect(const DualStackCorpus& corpus,
                                                  const DetectOptions& options) {
  return detect(corpus.detect_index(), options);
}

std::vector<SiblingPair> ParallelDetector::detect(const SetCorpus& corpus,
                                                  const DetectOptions& options) {
  return detect(corpus.detect_index(), options);
}

}  // namespace sp::core
