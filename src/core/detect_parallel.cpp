#include "core/detect_parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "core/detect_scan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sp::core {

namespace {

/// Source prefixes claimed per atomic fetch; large enough to amortize the
/// counter, small enough to balance skewed prefix sizes.
constexpr std::size_t kChunk = 32;

// The per-source scan (Scratch + scan_source) lives in detect_scan.h so
// the sp::sketch engine's exact-fallback path shares it byte-for-byte.
using Scratch = detail::ScanScratch;
using detail::scan_source;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ParallelDetector::ParallelDetector(unsigned thread_count)
    : pool_(thread_count),
      runs_(obs::MetricsRegistry::global().counter("detect.runs")),
      pairs_emitted_(obs::MetricsRegistry::global().counter("detect.pairs_emitted")),
      candidates_(obs::MetricsRegistry::global().counter("detect.candidates_evaluated")),
      detect_us_(obs::MetricsRegistry::global().histogram("detect.run_us")) {}

void ParallelDetector::detect_direction(const DetectIndex& index, Family from, Metric metric,
                                        std::vector<SiblingPair>& out) {
  const DetectIndex::Side& from_side = index.side(from);
  const DetectIndex::Side& to_side =
      index.side(from == Family::v4 ? Family::v6 : Family::v4);
  const auto start = std::chrono::steady_clock::now();

  const std::size_t source_count = from_side.prefix_count();
  const unsigned thread_count = pool_.thread_count();
  std::vector<std::vector<SiblingPair>> buffers(thread_count);
  std::vector<DetectStats> locals(thread_count);
  std::atomic<std::size_t> next{0};

  const char* direction = from == Family::v4 ? "detect.v4" : "detect.v6";
  const std::function<void(unsigned)> job = [&](unsigned worker) {
    // One trace span per shard per direction — worker granularity, so the
    // trace shows shard skew without per-prefix overhead.
    const obs::ScopedSpan span(std::string(direction) + ".shard" + std::to_string(worker),
                               "detect");
    Scratch scratch(to_side.prefix_count());
    std::vector<SiblingPair>& buffer = buffers[worker];
    DetectStats& local = locals[worker];
    for (;;) {
      // sp-lint: atomics-ok(work-stealing chunk cursor; claims need no
      // ordering, only uniqueness — the pool join publishes results)
      const std::size_t begin = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= source_count) return;
      const std::size_t end = std::min(source_count, begin + kChunk);
      for (std::size_t source = begin; source < end; ++source) {
        scan_source(from_side, to_side, from, metric, static_cast<std::uint32_t>(source),
                    scratch, buffer, local);
      }
    }
  };
  pool_.run(job);

  for (unsigned worker = 0; worker < thread_count; ++worker) {
    out.insert(out.end(), buffers[worker].begin(), buffers[worker].end());
    stats_.prefixes_scanned += locals[worker].prefixes_scanned;
    stats_.candidates_evaluated += locals[worker].candidates_evaluated;
    stats_.pairs_emitted += locals[worker].pairs_emitted;
  }
  (from == Family::v4 ? stats_.v4_direction_ms : stats_.v6_direction_ms) = elapsed_ms(start);
}

std::vector<SiblingPair> ParallelDetector::detect(const DetectIndex& index,
                                                  const DetectOptions& options) {
  const auto run_start = std::chrono::steady_clock::now();
  stats_ = DetectStats{};
  stats_.threads_used = pool_.thread_count();

  std::vector<SiblingPair> pairs;
  detect_direction(index, Family::v4, options.metric, pairs);
  detect_direction(index, Family::v6, options.metric, pairs);

  // Merge exactly as detail::detect_over: one global sort + dedup, which
  // also erases any dependence on worker scheduling.
  const auto merge_start = std::chrono::steady_clock::now();
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  stats_.merge_ms = elapsed_ms(merge_start);

  // Registry updates once per run, never per prefix: aggregate counts and
  // one whole-run latency sample.
  runs_.add();
  pairs_emitted_.add(static_cast<std::int64_t>(pairs.size()));
  candidates_.add(static_cast<std::int64_t>(stats_.candidates_evaluated));
  detect_us_.record(static_cast<std::uint64_t>(elapsed_ms(run_start) * 1000.0));
  return pairs;
}

std::vector<SiblingPair> ParallelDetector::detect(const DualStackCorpus& corpus,
                                                  const DetectOptions& options) {
  return detect(corpus.detect_index(), options);
}

std::vector<SiblingPair> ParallelDetector::detect(const SetCorpus& corpus,
                                                  const DetectOptions& options) {
  return detect(corpus.detect_index(), options);
}

}  // namespace sp::core
