// Longitudinal analyses (paper sections 4.1 and 4.3).
//
// LongitudinalTracker ingests a series of monthly snapshots and answers
// the Figure 7 questions: how often is each DS domain visible, and how
// stable are its prefixes and addresses relative to the newest snapshot.
// classify_pair_changes implements the Figure 10 split of sibling pairs
// into unchanged / changed / new between two points in time.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "bgp/rib.h"
#include "core/detect.h"
#include "dns/snapshot.h"

namespace sp::core {

class LongitudinalTracker {
 public:
  /// Ingests one snapshot (call in chronological order). Only dual-stack
  /// entries are tracked; addresses are mapped to prefixes through `rib`.
  void add_snapshot(const dns::ResolutionSnapshot& snapshot, const bgp::Rib& rib);

  [[nodiscard]] std::size_t snapshot_count() const noexcept { return dates_.size(); }
  [[nodiscard]] std::size_t tracked_domain_count() const noexcept { return domains_.size(); }

  /// histogram[k] = number of DS domains visible in exactly k+1 snapshots
  /// (Figure 7 left, as a histogram; turn into a CDF with the helper).
  [[nodiscard]] std::vector<std::size_t> visibility_histogram() const;

  /// Fraction of domains visible in at most `count` snapshots, for each
  /// count 1..N (the CDF the paper plots).
  [[nodiscard]] std::vector<double> visibility_cdf() const;

  /// Domains visible in every ingested snapshot ("consistent DS domains").
  [[nodiscard]] std::size_t consistent_domain_count() const;

  struct StabilitySeries {
    /// Index k = comparison of snapshot N-1-k against the newest snapshot
    /// N-1 (so index 0 is trivially 1.0); values are fractions of
    /// consistent DS domains whose prefix/address set is identical.
    std::vector<double> v4_prefix_stable;
    std::vector<double> v6_prefix_stable;
    std::vector<double> v4_address_stable;
    std::vector<double> v6_address_stable;
    /// Fraction with both families' addresses unchanged.
    std::vector<double> address_stable;
  };

  /// Figure 7 center/right over the consistent domains.
  [[nodiscard]] StabilitySeries stability() const;

 private:
  struct Observation {
    std::vector<Prefix> v4_prefixes;
    std::vector<Prefix> v6_prefixes;
    std::vector<IPv4Address> v4_addresses;
    std::vector<IPv6Address> v6_addresses;
  };
  struct Track {
    // Parallel to dates_; entries may be missing (domain not visible).
    std::map<std::size_t, Observation> by_snapshot;
  };

  std::vector<Date> dates_;
  std::map<std::string, Track> domains_;  // keyed by response-name text
};

/// Figure 10: sibling pairs split by what happened between an old and a
/// new pair list. A pair present in both lists is "unchanged" when its
/// Jaccard value is (numerically) identical and "changed" otherwise; pairs
/// only in the new list are "new".
struct PairChangeReport {
  std::vector<double> unchanged;    // Jaccard values (old == new)
  std::vector<double> changed_old;  // old Jaccard of changed pairs
  std::vector<double> changed_new;  // new Jaccard of changed pairs
  std::vector<double> fresh;        // Jaccard of pairs only in the new list
};

[[nodiscard]] PairChangeReport classify_pair_changes(std::span<const SiblingPair> old_pairs,
                                                     std::span<const SiblingPair> new_pairs);

}  // namespace sp::core
