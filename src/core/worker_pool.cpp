#include "core/worker_pool.h"

#include <algorithm>

namespace sp::core {

WorkerPool::WorkerPool(unsigned thread_count) {
  if (thread_count == 0) thread_count = std::max(1u, std::thread::hardware_concurrency());
  thread_count_ = std::min(thread_count, 64u);
  // Worker 0 is the calling thread; only 1..thread_count-1 are pool threads.
  workers_.reserve(thread_count_ - 1);
  for (unsigned id = 1; id < thread_count_; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::worker_loop(unsigned worker_id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(worker_id);
    {
      std::lock_guard lock(mutex_);
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(const std::function<void(unsigned)>& job) {
  if (workers_.empty()) {
    job(0);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_ = &job;
    ++generation_;
    running_ = static_cast<unsigned>(workers_.size());
  }
  work_cv_.notify_all();
  job(0);
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
}

}  // namespace sp::core
