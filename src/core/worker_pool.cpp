#include "core/worker_pool.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "lint/lock_order.h"

namespace sp::core {

namespace {
constexpr const char* kMutexName = "core.worker_pool.mutex";
}  // namespace

WorkerPool::WorkerPool(unsigned thread_count)
    : queue_depth_(obs::MetricsRegistry::global().gauge("worker_pool.queue_depth")),
      task_wait_us_(obs::MetricsRegistry::global().histogram("worker_pool.task_wait_us")),
      task_run_us_(obs::MetricsRegistry::global().histogram("worker_pool.task_run_us")) {
  if (thread_count == 0) thread_count = std::max(1u, std::thread::hardware_concurrency());
  thread_count_ = std::min(thread_count, 64u);
  // Worker 0 is the calling thread; only 1..thread_count-1 are pool threads.
  workers_.reserve(thread_count_ - 1);
  for (unsigned id = 1; id < thread_count_; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mutex_);
    [[maybe_unused]] const lint::LockOrderScope held(kMutexName);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // With no pool threads nothing ever drained the queue asynchronously —
  // submit() ran everything inline — so tasks_ is empty here either way.
}

void WorkerPool::worker_loop(unsigned worker_id) {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  // The lock-order scope must mirror the manual unlock/relock around job
  // and task bodies exactly, or locks the bodies take would appear to
  // nest under the pool mutex.
  std::optional<lint::LockOrderScope> held;
  held.emplace(kMutexName);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stopping_ || generation_ != seen || !tasks_.empty();
    });
    // Fork-join jobs first: a run() caller is blocked on every worker
    // taking one turn, while queued tasks have no waiting caller.
    if (generation_ != seen) {
      seen = generation_;
      const std::function<void(unsigned)>* job = job_;
      held.reset();
      lock.unlock();
      (*job)(worker_id);
      lock.lock();
      held.emplace(kMutexName);
      if (--running_ == 0) done_cv_.notify_all();
      continue;
    }
    if (!tasks_.empty()) {
      QueuedTask task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_tasks_;
      held.reset();
      lock.unlock();
      run_task(task.fn, task.enqueued);
      lock.lock();
      held.emplace(kMutexName);
      if (--active_tasks_ == 0 && tasks_.empty()) idle_cv_.notify_all();
      continue;
    }
    // Exit only once the queue has drained, so destruction never drops a
    // submitted task.
    if (stopping_) return;
  }
}

void WorkerPool::run(const std::function<void(unsigned)>& job) {
  if (workers_.empty()) {
    job(0);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    [[maybe_unused]] const lint::LockOrderScope held(kMutexName);
    job_ = &job;
    ++generation_;
    running_ = static_cast<unsigned>(workers_.size());
  }
  work_cv_.notify_all();
  job(0);
  std::unique_lock lock(mutex_);
  [[maybe_unused]] const lint::LockOrderScope held(kMutexName);
  done_cv_.wait(lock, [&] { return running_ == 0; });
}

void WorkerPool::run_task(std::function<void()>& task,
                          std::chrono::steady_clock::time_point enqueued) {
  const auto dequeued = std::chrono::steady_clock::now();
  queue_depth_.sub();
  task_wait_us_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(dequeued - enqueued).count()));
  task();
  task_run_us_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - dequeued)
          .count()));
}

void WorkerPool::submit(std::function<void()> task) {
  queue_depth_.add();
  if (workers_.empty()) {
    // Inline execution: the task spends no time queued, but still shows
    // up in the run-latency histogram like any pooled task.
    run_task(task, std::chrono::steady_clock::now());
    return;
  }
  {
    std::lock_guard lock(mutex_);
    [[maybe_unused]] const lint::LockOrderScope held(kMutexName);
    tasks_.push_back({std::move(task), std::chrono::steady_clock::now()});
  }
  work_cv_.notify_one();
}

void WorkerPool::wait_idle() {
  if (workers_.empty()) return;  // inline tasks finished inside submit()
  std::unique_lock lock(mutex_);
  [[maybe_unused]] const lint::LockOrderScope held(kMutexName);
  idle_cv_.wait(lock, [&] { return tasks_.empty() && active_tasks_ == 0; });
}

}  // namespace sp::core
