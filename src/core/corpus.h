// The dual-stack corpus: steps 1-2 of the paper's methodology.
//
// Built from one DNS resolution snapshot plus a BGP RIB, the corpus
// identifies dual-stack domains (step 1), maps every address to its
// announced prefix (step 2), and exposes the prefix→domain-set and
// domain→prefix-set indexes that detection (step 3-4) and SP-Tuner need.
// Domains are identified by their *response* name (post-CNAME), and
// reserved/private addresses are discarded, both per the paper.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "bgp/rib.h"
#include "core/detect_index.h"
#include "core/domain_set.h"
#include "dns/snapshot.h"
#include "trie/prefix_trie.h"

namespace sp::core {

class DualStackCorpus {
 public:
  /// Build statistics (the paper's data-cleaning footnotes).
  struct Stats {
    std::size_t snapshot_domains = 0;       // entries in the snapshot
    std::size_t dual_stack_domains = 0;     // distinct DS response names
    std::size_t discarded_reserved = 0;     // addresses dropped as reserved
    std::size_t unmapped_addresses = 0;     // addresses with no covering prefix
    std::size_t v4_prefixes = 0;
    std::size_t v6_prefixes = 0;
  };

  [[nodiscard]] static DualStackCorpus build(const dns::ResolutionSnapshot& snapshot,
                                             const bgp::Rib& rib);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DomainInterner& interner() const noexcept { return interner_; }
  [[nodiscard]] std::size_t ds_domain_count() const noexcept { return interner_.size(); }

  /// All announced prefixes of one family that host at least one DS domain,
  /// with their domain sets.
  [[nodiscard]] const std::unordered_map<Prefix, DomainSet>& prefix_domains(
      Family family) const noexcept {
    return family == Family::v4 ? v4_prefix_domains_ : v6_prefix_domains_;
  }

  /// Domain set of one prefix; nullptr when the prefix hosts no DS domain.
  [[nodiscard]] const DomainSet* domains_of(const Prefix& prefix) const noexcept;

  /// Announced prefixes of `family` hosting domain `id` (sorted).
  [[nodiscard]] const std::vector<Prefix>& prefixes_of(DomainId id,
                                                       Family family) const noexcept;

  /// Flat CSR candidate-generation index, built once by build(); shared
  /// read-only by all detection workers.
  [[nodiscard]] const DetectIndex& detect_index() const noexcept { return index_; }

  /// Host-granularity index: /32 (or /128) host prefix → domains on that
  /// address. SP-Tuner traverses these to evaluate sub-prefix candidates.
  [[nodiscard]] const PrefixTrie<DomainSet>& host_trie(Family family) const noexcept {
    return family == Family::v4 ? v4_hosts_ : v6_hosts_;
  }

  /// Union of the domain sets of all addresses inside `prefix`.
  [[nodiscard]] DomainSet domains_within(const Prefix& prefix) const;

  /// One populated host address inside an announced prefix.
  struct HostDomains {
    Prefix host;  // /32 or /128
    DomainSet domains;
  };

  /// The populated hosts mapped to announced prefix `announced` (its
  /// longest-match region, so hosts of nested more-specific announcements
  /// are excluded). Empty for unknown prefixes.
  [[nodiscard]] const std::vector<HostDomains>& hosts_of(const Prefix& announced) const noexcept;

 private:
  Stats stats_;
  DomainInterner interner_;
  std::unordered_map<Prefix, DomainSet> v4_prefix_domains_;
  std::unordered_map<Prefix, DomainSet> v6_prefix_domains_;
  std::vector<std::vector<Prefix>> v4_prefixes_by_domain_;
  std::vector<std::vector<Prefix>> v6_prefixes_by_domain_;
  PrefixTrie<DomainSet> v4_hosts_;
  PrefixTrie<DomainSet> v6_hosts_;
  std::unordered_map<Prefix, std::vector<HostDomains>> prefix_hosts_;
  DetectIndex index_;
};

}  // namespace sp::core
