// Sibling prefix detection: steps 3-4 of the paper's methodology.
//
// For every prefix, candidate counterpart prefixes are the ones sharing at
// least one element (found via the element→prefix inverted index); the
// similarity metric is evaluated for each candidate and the best match
// kept, with ties preserved. The final pair list is the union of the best
// matches of both directions, deduplicated and sorted.
//
// Detection is generic over the corpus (paper section 3.7: any input that
// maps prefixes to sets works): DualStackCorpus provides domain sets from
// DNS; SetCorpus accepts arbitrary (prefix, element) observations such as
// responsive ports, rDNS names or alias identifiers.
#pragma once

#include <algorithm>
#include <compare>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/corpus.h"
#include "core/detect_index.h"
#include "core/similarity.h"

namespace sp::core {

struct SiblingPair {
  Prefix v4;
  Prefix v6;
  double similarity = 0.0;
  std::uint32_t shared_domains = 0;
  std::uint32_t v4_domain_count = 0;
  std::uint32_t v6_domain_count = 0;

  /// Ordering and equality are by prefix pair only; similarity is derived.
  [[nodiscard]] friend std::strong_ordering operator<=>(const SiblingPair& a,
                                                        const SiblingPair& b) noexcept {
    if (const auto cmp = a.v4 <=> b.v4; cmp != 0) return cmp;
    return a.v6 <=> b.v6;
  }
  [[nodiscard]] friend bool operator==(const SiblingPair& a, const SiblingPair& b) noexcept {
    return a.v4 == b.v4 && a.v6 == b.v6;
  }
};

/// Run counters of one detection pass, for the bench suite and capacity
/// planning. The counting fields are deterministic (identical for every
/// thread count); the wall times are not.
struct DetectStats {
  std::uint64_t prefixes_scanned = 0;      // source prefixes examined, both directions
  std::uint64_t candidates_evaluated = 0;  // similarity evaluations
  std::uint64_t pairs_emitted = 0;         // best/tie pairs before cross-direction dedup
  double v4_direction_ms = 0.0;            // wall time, v4→v6 direction
  double v6_direction_ms = 0.0;            // wall time, v6→v4 direction
  double merge_ms = 0.0;                   // final sort + dedup
  unsigned threads_used = 0;
};

/// Which candidate-generation engine detection runs on.
///
///   Exact  — the inverted-index scan: every counterpart sharing at least
///            one element is evaluated (ParallelDetector; the default).
///   Sketch — bottom-k/MinHash candidate filtering with exact similarity
///            recomputed on survivors (sp::sketch). The sketch engine
///            lives in the sp_sketch library, which depends on sp_core —
///            core entry points reject this value; call
///            sketch::detect_sibling_prefixes instead, which dispatches
///            on the strategy and falls back to the exact engine for
///            DetectStrategy::Exact.
enum class DetectStrategy : std::uint8_t { Exact, Sketch };

struct DetectOptions {
  Metric metric = Metric::Jaccard;
  /// Worker threads for the sharded detection engine; 0 picks the hardware
  /// concurrency. Output is byte-identical for every thread count.
  unsigned threads = 0;
  /// When non-null, receives the run's counters.
  DetectStats* stats = nullptr;
  /// Candidate-generation engine (see DetectStrategy).
  DetectStrategy strategy = DetectStrategy::Exact;
};

/// The corpus interface detection runs on.
template <typename C>
concept SiblingCorpus = requires(const C& corpus, const Prefix& prefix, DomainId id,
                                 Family family) {
  { corpus.prefix_domains(family) } -> std::convertible_to<const std::unordered_map<Prefix, DomainSet>&>;
  { corpus.prefixes_of(id, family) } -> std::convertible_to<const std::vector<Prefix>&>;
  { corpus.domains_of(prefix) } -> std::convertible_to<const DomainSet*>;
};

/// A generic prefix→element-set corpus (the "other inputs" of section
/// 3.7). Elements are opaque 32-bit ids — ports, interned rDNS names,
/// alias ids. Call finalize() once after the last add().
class SetCorpus {
 public:
  /// Records one (prefix, element) observation. Throws std::logic_error
  /// once finalize() has run — the flat detection index would silently go
  /// stale otherwise.
  void add(const Prefix& prefix, DomainId element);

  /// Sorts sets and builds the inverted indexes (per-element prefix lists
  /// plus the flat DetectIndex). Idempotent; add() must not be called
  /// afterwards.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// The flat detection index; throws std::logic_error before finalize().
  [[nodiscard]] const DetectIndex& detect_index() const;

  [[nodiscard]] const std::unordered_map<Prefix, DomainSet>& prefix_domains(
      Family family) const noexcept {
    return family == Family::v4 ? v4_sets_ : v6_sets_;
  }
  [[nodiscard]] const std::vector<Prefix>& prefixes_of(DomainId element,
                                                       Family family) const noexcept;
  [[nodiscard]] const DomainSet* domains_of(const Prefix& prefix) const noexcept;

 private:
  std::unordered_map<Prefix, DomainSet> v4_sets_;
  std::unordered_map<Prefix, DomainSet> v6_sets_;
  std::vector<std::vector<Prefix>> v4_prefixes_by_element_;
  std::vector<std::vector<Prefix>> v6_prefixes_by_element_;
  DetectIndex index_;
  bool finalized_ = false;
};

namespace detail {

inline constexpr double kTieEpsilon = 1e-12;

// Emits the best-match pairs for every prefix of `from` family.
template <SiblingCorpus Corpus>
void detect_direction(const Corpus& corpus, Metric metric, Family from,
                      std::vector<SiblingPair>& out) {
  const Family to = from == Family::v4 ? Family::v6 : Family::v4;

  for (const auto& [prefix, elements] : corpus.prefix_domains(from)) {
    // Candidate counterpart prefixes share at least one element.
    std::unordered_map<Prefix, std::uint32_t> shared_counts;
    for (const DomainId id : elements) {
      for (const Prefix& candidate : corpus.prefixes_of(id, to)) {
        ++shared_counts[candidate];
      }
    }
    if (shared_counts.empty()) continue;

    double best = 0.0;
    for (const auto& [candidate, shared] : shared_counts) {
      const DomainSet* candidate_elements = corpus.domains_of(candidate);
      best = std::max(best, similarity_from_sizes(metric, shared, elements.size(),
                                                  candidate_elements->size()));
    }
    if (best <= 0.0) continue;

    for (const auto& [candidate, shared] : shared_counts) {
      const DomainSet* candidate_elements = corpus.domains_of(candidate);
      const double value = similarity_from_sizes(metric, shared, elements.size(),
                                                 candidate_elements->size());
      if (value + kTieEpsilon < best) continue;
      SiblingPair pair;
      pair.v4 = from == Family::v4 ? prefix : candidate;
      pair.v6 = from == Family::v4 ? candidate : prefix;
      pair.similarity = value;
      pair.shared_domains = shared;
      pair.v4_domain_count = static_cast<std::uint32_t>(
          from == Family::v4 ? elements.size() : candidate_elements->size());
      pair.v6_domain_count = static_cast<std::uint32_t>(
          from == Family::v4 ? candidate_elements->size() : elements.size());
      out.push_back(pair);
    }
  }
}

template <SiblingCorpus Corpus>
[[nodiscard]] std::vector<SiblingPair> detect_over(const Corpus& corpus,
                                                   const DetectOptions& options) {
  std::vector<SiblingPair> pairs;
  detect_direction(corpus, options.metric, Family::v4, pairs);
  detect_direction(corpus, options.metric, Family::v6, pairs);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace detail

/// Detects sibling prefix pairs over the DNS corpus. Output is sorted by
/// (v4, v6) and duplicate-free. Runs the sharded ParallelDetector engine
/// (detect_parallel.h) on `options.threads` workers; the result is
/// byte-identical to the serial reference for every thread count.
[[nodiscard]] std::vector<SiblingPair> detect_sibling_prefixes(const DualStackCorpus& corpus,
                                                               const DetectOptions& options = {});

/// Detection over a generic prefix→set corpus (finalize() must have run).
[[nodiscard]] std::vector<SiblingPair> detect_sibling_prefixes(const SetCorpus& corpus,
                                                               const DetectOptions& options = {});

/// The single-threaded reference implementation (detail::detect_over):
/// hash-map candidate counting, two similarity passes. Kept as the oracle
/// for the serial-vs-parallel equivalence harness and as the bench
/// baseline; `options.threads` and `options.stats` are ignored.
[[nodiscard]] std::vector<SiblingPair> detect_sibling_prefixes_serial(
    const DualStackCorpus& corpus, const DetectOptions& options = {});
[[nodiscard]] std::vector<SiblingPair> detect_sibling_prefixes_serial(
    const SetCorpus& corpus, const DetectOptions& options = {});

/// Distinct v4 / v6 prefixes appearing in a pair list.
[[nodiscard]] std::size_t unique_prefix_count(std::span<const SiblingPair> pairs,
                                              Family family);

/// Similarity values of all pairs (for CDFs).
[[nodiscard]] std::vector<double> similarity_values(std::span<const SiblingPair> pairs);

}  // namespace sp::core
