#include "core/groundtruth.h"

#include <algorithm>
#include <cstdint>

#include "trie/prefix_trie.h"

namespace sp::core {

GroundTruthReport evaluate_probes(std::span<const DualStackProbe> probes,
                                  std::span<const SiblingPair> pairs) {
  // Index pairs by prefix per family; values are pair indexes (sorted).
  PrefixTrie<std::vector<std::uint32_t>> v4_index;
  PrefixTrie<std::vector<std::uint32_t>> v6_index;
  for (std::uint32_t i = 0; i < pairs.size(); ++i) {
    v4_index[pairs[i].v4].push_back(i);
    v6_index[pairs[i].v6].push_back(i);
  }

  // Pair ids whose prefix covers the address (any match along the path,
  // since pair prefixes may nest).
  const auto pair_ids_covering = [](const PrefixTrie<std::vector<std::uint32_t>>& index,
                                    const IPAddress& address) {
    std::vector<std::uint32_t> ids;
    index.visit_ancestors(Prefix::host(address),
                          [&ids](const Prefix&, const std::vector<std::uint32_t>& v) {
                            ids.insert(ids.end(), v.begin(), v.end());
                          });
    std::sort(ids.begin(), ids.end());
    return ids;
  };

  GroundTruthReport report;
  report.total = probes.size();
  for (const DualStackProbe& probe : probes) {
    const auto v4_ids = pair_ids_covering(v4_index, probe.v4);
    const auto v6_ids = pair_ids_covering(v6_index, probe.v6);
    const bool v4_covered = !v4_ids.empty();
    const bool v6_covered = !v6_ids.empty();
    if (v4_covered && v6_covered) {
      ++report.fully_covered;
      std::vector<std::uint32_t> both;
      std::set_intersection(v4_ids.begin(), v4_ids.end(), v6_ids.begin(), v6_ids.end(),
                            std::back_inserter(both));
      if (both.empty()) {
        ++report.not_best_match;
      } else {
        ++report.best_match;
      }
    } else if (v4_covered || v6_covered) {
      ++report.partially_covered;
    } else {
      ++report.uncovered;
    }
  }
  return report;
}

}  // namespace sp::core
