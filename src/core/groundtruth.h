// Ground-truth evaluation against dual-stack vantage points (paper
// section 3.5: RIPE Atlas probes and dual-stack VPSes).
//
// A probe is "fully covered" when both its IPv4 and IPv6 address fall
// inside prefixes that appear in the sibling pair list, "partially
// covered" when only one does. Among fully covered probes, a probe is a
// "best match" when one single pair covers both of its addresses.
#pragma once

#include <span>
#include <vector>

#include "core/detect.h"

namespace sp::core {

struct DualStackProbe {
  IPAddress v4;
  IPAddress v6;
};

struct GroundTruthReport {
  std::size_t total = 0;
  std::size_t fully_covered = 0;
  std::size_t partially_covered = 0;
  std::size_t uncovered = 0;
  std::size_t best_match = 0;      // fully covered, one pair covers both
  std::size_t not_best_match = 0;  // fully covered, no single pair covers both

  [[nodiscard]] double fully_covered_share() const noexcept {
    return total == 0 ? 0.0 : static_cast<double>(fully_covered) / static_cast<double>(total);
  }
  [[nodiscard]] double best_match_share() const noexcept {
    return fully_covered == 0
               ? 0.0
               : static_cast<double>(best_match) / static_cast<double>(fully_covered);
  }
};

[[nodiscard]] GroundTruthReport evaluate_probes(std::span<const DualStackProbe> probes,
                                                std::span<const SiblingPair> pairs);

}  // namespace sp::core
