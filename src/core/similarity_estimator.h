// Pluggable similarity estimation for SP-Tuner's refinement loops.
//
// Tuning evaluates many candidate prefix combinations whose exact Jaccard
// requires materializing and intersecting unions of per-host domain sets.
// An estimator provides a cheap approximate Jaccard for such a union pair;
// callers combine it with a conservative margin (skip a candidate only
// when estimate + margin is still below the running best) so any estimator
// whose error stays within the margin leaves results unchanged.
//
// The interface lives in sp_core so the tuner can depend on it; the
// bottom-k implementation lives a layer up in sp::sketch
// (sketch::SketchEstimator), keeping core free of sketch internals.
#pragma once

#include <span>

#include "core/domain_set.h"

namespace sp::core {

class SimilarityEstimator {
 public:
  virtual ~SimilarityEstimator() = default;

  /// Estimates Jaccard(∪a, ∪b) for two unions of domain sets. Every
  /// pointer must be non-null; empty spans denote the empty set. The
  /// pointed-to sets must outlive the estimator call (implementations may
  /// cache per-set state keyed by pointer identity, so callers should pass
  /// stable corpus-owned sets, not temporaries).
  [[nodiscard]] virtual double estimate_union_jaccard(
      std::span<const DomainSet* const> a, std::span<const DomainSet* const> b) const = 0;
};

}  // namespace sp::core
