// CSV serialization of DNS resolution snapshots — the interchange format
// a user of the library would export from their own resolver runs (the
// OpenINTEL role) to feed the pipeline.
//
// Layout:
//   #date,2024-09-11
//   queried,response,v4_addrs,v6_addrs
//   www.shop.example,edge7.cdn.example,20.1.1.10|20.1.1.11,2620:100::10
//
// Address lists are '|'-separated and may be empty on one side.
#pragma once

#include <optional>
#include <string>

#include "dns/snapshot.h"

namespace sp::io {

/// Writes a snapshot; returns false on I/O failure.
[[nodiscard]] bool write_snapshot_csv(const std::string& path,
                                      const dns::ResolutionSnapshot& snapshot);

/// Reads a snapshot previously written by write_snapshot_csv (or authored
/// by hand in the same layout). Returns nullopt on I/O failure, a missing
/// or malformed date/header row, or any unparsable entry.
[[nodiscard]] std::optional<dns::ResolutionSnapshot> read_snapshot_csv(
    const std::string& path);

}  // namespace sp::io
