// Crash-durable file publication — the tmp → fsync → rename → fsync(dir)
// sequence every artifact writer in the tree must use.
//
// rename() alone is atomic with respect to readers but not with respect
// to power loss: until the parent directory's metadata reaches disk, a
// crash can roll the directory entry back to the old file — or to no
// file at all for a first write. The pipeline checkpoints got this right
// from the start (pipeline/checkpoint.cpp); this header factors the
// sequence out so the stream engine's .sibdb publication (stream/spdl.cpp)
// and any future writer share one audited implementation instead of
// re-deriving it.
#pragma once

#include <string>

namespace sp::io {

/// fsyncs the directory containing `path` so a completed rename (or
/// create/unlink) of `path` survives power loss. On failure returns
/// false with an errno-annotated reason in `error` (may be null).
[[nodiscard]] bool sync_parent_dir(const std::string& path, std::string* error);

/// Publishes `tmp_path` as `path` durably: fsync(tmp), rename, fsync of
/// the parent directory. The temp file must already hold its final
/// bytes; on failure it is left in place for inspection. Returns false
/// with a reason in `error` (may be null).
[[nodiscard]] bool durable_rename(const std::string& tmp_path, const std::string& path,
                                  std::string* error);

}  // namespace sp::io
