#include "io/snapshot_csv.h"

#include <charconv>

#include "io/csv.h"

namespace sp::io {

namespace {

const CsvRow kHeader = {"queried", "response", "v4_addrs", "v6_addrs"};

std::string join_v4(const std::vector<IPv4Address>& addresses) {
  std::string out;
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    if (i > 0) out.push_back('|');
    out += addresses[i].to_string();
  }
  return out;
}

std::string join_v6(const std::vector<IPv6Address>& addresses) {
  std::string out;
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    if (i > 0) out.push_back('|');
    out += addresses[i].to_string();
  }
  return out;
}

// Splits "a|b|c" and parses each element; empty input gives an empty list.
template <typename Address, typename Parse>
bool split_addresses(const std::string& text, Parse parse, std::vector<Address>& out) {
  if (text.empty()) return true;
  std::size_t start = 0;
  while (true) {
    const std::size_t bar = text.find('|', start);
    const std::string token =
        text.substr(start, bar == std::string::npos ? std::string::npos : bar - start);
    const auto parsed = parse(token);
    if (!parsed) return false;
    out.push_back(*parsed);
    if (bar == std::string::npos) return true;
    start = bar + 1;
  }
}

std::optional<Date> parse_date(const std::string& text) {
  // "2024-09-11"
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return std::nullopt;
  Date date;
  const auto parse_int = [&](std::size_t pos, std::size_t len, std::int32_t& out) {
    const auto result =
        std::from_chars(text.data() + pos, text.data() + pos + len, out);
    return result.ec == std::errc{} && result.ptr == text.data() + pos + len;
  };
  if (!parse_int(0, 4, date.year) || !parse_int(5, 2, date.month) ||
      !parse_int(8, 2, date.day)) {
    return std::nullopt;
  }
  if (date.month < 1 || date.month > 12 || date.day < 1 || date.day > 31) return std::nullopt;
  return date;
}

}  // namespace

bool write_snapshot_csv(const std::string& path, const dns::ResolutionSnapshot& snapshot) {
  std::vector<CsvRow> rows;
  rows.reserve(snapshot.domain_count() + 2);
  rows.push_back({"#date", snapshot.date().to_string()});
  rows.push_back(kHeader);
  for (const auto& entry : snapshot.entries()) {
    rows.push_back({entry.queried.to_string(), entry.response_name.to_string(),
                    join_v4(entry.v4), join_v6(entry.v6)});
  }
  return write_csv_file(path, rows);
}

std::optional<dns::ResolutionSnapshot> read_snapshot_csv(const std::string& path) {
  const auto rows = read_csv_file(path);
  if (!rows || rows->size() < 2) return std::nullopt;
  if ((*rows)[0].size() != 2 || (*rows)[0][0] != "#date") return std::nullopt;
  const auto date = parse_date((*rows)[0][1]);
  if (!date) return std::nullopt;
  if ((*rows)[1] != kHeader) return std::nullopt;

  dns::ResolutionSnapshot snapshot(*date);
  for (std::size_t i = 2; i < rows->size(); ++i) {
    const CsvRow& row = (*rows)[i];
    if (row.size() != kHeader.size()) return std::nullopt;
    dns::DomainResolution entry;
    const auto queried = dns::DomainName::from_string(row[0]);
    const auto response = dns::DomainName::from_string(row[1]);
    if (!queried || !response) return std::nullopt;
    entry.queried = *queried;
    entry.response_name = *response;
    if (!split_addresses<IPv4Address>(row[2], &IPv4Address::from_string, entry.v4) ||
        !split_addresses<IPv6Address>(row[3], &IPv6Address::from_string, entry.v6)) {
      return std::nullopt;
    }
    snapshot.add(std::move(entry));
  }
  return snapshot;
}

}  // namespace sp::io
