// Minimal RFC 4180-style CSV reading and writing (quoting, embedded
// commas/quotes/newlines). Used for the published sibling-prefix list
// artifact and for exporting experiment series.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sp::io {

using CsvRow = std::vector<std::string>;

/// Escapes and joins one row (no trailing newline).
[[nodiscard]] std::string format_csv_row(const CsvRow& row);

/// Parses one CSV document; handles quoted fields with embedded commas,
/// quotes ("" escape) and newlines. Returns nullopt on unbalanced quotes.
[[nodiscard]] std::optional<std::vector<CsvRow>> parse_csv(std::string_view text);

/// Writes rows to a file; returns false on I/O error.
[[nodiscard]] bool write_csv_file(const std::string& path, const std::vector<CsvRow>& rows);

/// Reads and parses a CSV file.
[[nodiscard]] std::optional<std::vector<CsvRow>> read_csv_file(const std::string& path);

}  // namespace sp::io
