// Minimal RFC 4180-style CSV reading and writing (quoting, embedded
// commas/quotes/newlines). Used for the published sibling-prefix list
// artifact and for exporting experiment series.
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sp::io {

using CsvRow = std::vector<std::string>;

/// Escapes and joins one row (no trailing newline).
[[nodiscard]] std::string format_csv_row(const CsvRow& row);

/// Parses one CSV document; handles quoted fields with embedded commas,
/// quotes ("" escape) and newlines. Returns nullopt on unbalanced quotes.
[[nodiscard]] std::optional<std::vector<CsvRow>> parse_csv(std::string_view text);

/// Writes rows to a file; returns false on I/O error.
[[nodiscard]] bool write_csv_file(const std::string& path, const std::vector<CsvRow>& rows);

/// Reads and parses a CSV file.
[[nodiscard]] std::optional<std::vector<CsvRow>> read_csv_file(const std::string& path);

/// Outcome of a streaming parse.
struct CsvStreamStatus {
  bool ok = true;              // false: unbalanced quote at end of input
  std::size_t error_line = 0;  // 1-based row start line when !ok
};

/// Streams `in` row by row without materializing the document — the
/// constant-memory path for large artifacts (published sibling lists).
/// `on_row(row, line)` is called per completed row with the 1-based
/// physical line the row starts on (quoted fields may span lines);
/// returning false stops early (status stays ok). Same dialect as
/// parse_csv: quoted fields, "" escapes, CRLF tolerated.
[[nodiscard]] CsvStreamStatus read_csv_stream(
    std::istream& in, const std::function<bool(CsvRow&&, std::size_t)>& on_row);

}  // namespace sp::io
