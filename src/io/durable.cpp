#include "io/durable.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace sp::io {

namespace {

void fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

}  // namespace

bool sync_parent_dir(const std::string& path, std::string* error) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    fail(error, "open dir " + dir);
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  if (!ok) fail(error, "fsync dir " + dir);
  ::close(fd);
  return ok;
}

bool durable_rename(const std::string& tmp_path, const std::string& path, std::string* error) {
  const int fd = ::open(tmp_path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail(error, "open " + tmp_path);
    return false;
  }
  if (::fsync(fd) != 0) {
    fail(error, "fsync " + tmp_path);
    ::close(fd);
    return false;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    fail(error, "rename " + tmp_path + " -> " + path);
    return false;
  }
  return sync_parent_dir(path, error);
}

}  // namespace sp::io
