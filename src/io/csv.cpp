#include "io/csv.h"

#include <fstream>
#include <iterator>

namespace sp::io {

namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

}  // namespace

std::string format_csv_row(const CsvRow& row) {
  // A row holding exactly one empty field would otherwise render as an
  // empty line, which the parser treats as "no row"; quote it explicitly.
  if (row.size() == 1 && row[0].empty()) return "\"\"";
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    if (needs_quoting(row[i])) {
      out.push_back('"');
      for (const char c : row[i]) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += row[i];
    }
  }
  return out;
}

std::optional<std::vector<CsvRow>> parse_csv(std::string_view text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    if (!row.empty() || field_started || !field.empty()) {
      end_field();
      rows.push_back(std::move(row));
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        // RFC 4180: a quote only opens a quoted field at the start of the
        // field; after field content (`ab"cd`) it is a literal character.
        if (field.empty()) {
          in_quotes = true;
        } else {
          field.push_back('"');
        }
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\r':
        // Row terminator: CRLF (consume the LF too) or bare CR
        // (classic-Mac line ending). Quoted CRs never reach here.
        end_row();
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        break;
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) return std::nullopt;
  end_row();
  return rows;
}

bool write_csv_file(const std::string& path, const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const auto& row : rows) out << format_csv_row(row) << '\n';
  return static_cast<bool>(out);
}

std::optional<std::vector<CsvRow>> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  return parse_csv(text);
}

CsvStreamStatus read_csv_stream(std::istream& in,
                                const std::function<bool(CsvRow&&, std::size_t)>& on_row) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool quote_pending = false;  // saw '"' inside quotes; '""' escapes, else closes
  bool pending_cr = false;     // unquoted '\r' ended a row; swallow a following '\n'
  bool field_started = false;
  bool stopped = false;
  std::size_t line = 1;       // physical line of the cursor
  std::size_t row_line = 1;   // physical line the current row started on

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    if (!row.empty() || field_started || !field.empty()) {
      end_field();
      if (!on_row(std::move(row), row_line)) stopped = true;
      row.clear();
    }
  };

  char buffer[1 << 16];
  while (!stopped && in) {
    in.read(buffer, sizeof buffer);
    const auto got = static_cast<std::size_t>(in.gcount());
    for (std::size_t i = 0; i < got && !stopped; ++i) {
      const char c = buffer[i];
      if (pending_cr) {
        // The CR already terminated the row (and counted the line break);
        // an immediately following LF is the second half of a CRLF. The
        // flag lives outside the read loop so CRLF split across two
        // buffer fills is still one terminator.
        pending_cr = false;
        if (c == '\n') continue;
      }
      if (quote_pending) {
        quote_pending = false;
        if (c == '"') {
          field.push_back('"');
          continue;
        }
        in_quotes = false;  // the quote closed the field; reprocess c below
      }
      if (in_quotes) {
        if (c == '"') {
          quote_pending = true;
        } else {
          if (c == '\n') ++line;
          field.push_back(c);
        }
        continue;
      }
      switch (c) {
        case '"':
          // RFC 4180: a quote only opens a quoted field at the start of
          // the field; after field content it is a literal character.
          if (field.empty()) {
            in_quotes = true;
          } else {
            field.push_back('"');
          }
          field_started = true;
          break;
        case ',':
          end_field();
          field_started = true;  // next field exists even if empty
          break;
        case '\r':
          // Row terminator: CRLF or bare CR (classic-Mac); pending_cr
          // swallows the LF half of a CRLF at the top of the loop.
          end_row();
          ++line;
          row_line = line;
          pending_cr = true;
          break;
        case '\n':
          end_row();
          ++line;
          row_line = line;
          break;
        default:
          field.push_back(c);
          field_started = true;
          break;
      }
    }
  }
  if (stopped) return {};
  if (quote_pending) in_quotes = false;  // closing quote was the last byte
  if (in_quotes) return {.ok = false, .error_line = row_line};
  end_row();
  return {};
}

}  // namespace sp::io
