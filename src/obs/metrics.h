// sp::obs metrics — low-overhead counters, gauges and latency histograms
// for the detection, serving and pipeline hot paths.
//
// Design, hot path first:
//
//   * Counters and gauges are sharded: each metric owns kShards
//     cache-line-padded relaxed atomics, and a thread increments the
//     shard picked by a cheap thread-local index. Increment is one
//     uncontended `fetch_add(relaxed)` — no lock, no false sharing —
//     and the true value is the sum over shards, computed only on
//     scrape. Gauges are sum-of-deltas (add/sub from any thread), which
//     is exactly what a queue-depth gauge needs.
//   * Histograms use fixed log₂ bucketing: value v lands in bucket
//     bit_width(v) (bucket 0 holds v == 0), so a 64-bucket array covers
//     the full uint64 range with one `bit_width` + one relaxed
//     `fetch_add`. Sum and max ride along (max via a CAS loop that runs
//     only while the maximum is still growing). Quantiles are estimated
//     on scrape by linear interpolation inside the covering bucket —
//     log₂ buckets bound the relative error of a quantile by 2×, which
//     is plenty for p50/p90/p99 over microsecond latencies.
//   * Registration (name → metric cell) takes a mutex, but happens once
//     per metric at component construction, never per operation. Cells
//     live in a std::deque so handles stay valid as the registry grows.
//
// When the build disables observability (-DSP_OBS_DISABLE=ON, which
// defines SP_OBS_DISABLED), every handle operation is `if constexpr`'d
// away and the compiler sees straight through to nothing — the
// "compiled out" configuration for minimum-footprint deployments.
//
// Handles (Counter/Gauge/Histogram) are trivially copyable pointers into
// registry-owned storage; they must not outlive their registry. The
// process-wide registry from MetricsRegistry::global() lives forever, so
// handles from it are always safe.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sp::obs {

#ifdef SP_OBS_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Shards per counter/gauge; a small power of two — enough to keep a
/// handful of worker threads off each other's cache lines without
/// bloating every metric.
inline constexpr std::size_t kShards = 8;

/// log₂ buckets: bucket b (b >= 1) counts values in [2^(b-1), 2^b);
/// bucket 0 counts zeros. 64 buckets cover all of uint64.
inline constexpr std::size_t kHistogramBuckets = 64;

namespace detail {

struct alignas(64) PaddedAtomic {
  std::atomic<std::int64_t> value{0};
};

/// The shard this thread writes; assigned round-robin at first use so
/// distinct threads spread over distinct cache lines.
[[nodiscard]] std::size_t shard_index() noexcept;

struct CounterCell {
  std::string name;
  bool is_gauge = false;  // scrape() reports gauges separately
  std::array<PaddedAtomic, kShards> shards;

  void add(std::int64_t delta) noexcept {
    shards[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const noexcept {
    std::int64_t total = 0;
    for (const auto& shard : shards) total += shard.value.load(std::memory_order_relaxed);
    return total;
  }
};

struct HistogramCell {
  std::string name;
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> max{0};

  static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    // bit_width(0) == 0; bit_width can reach 64, so the top bucket is
    // clamped and covers [2^62, 2^64).
    const auto width = static_cast<std::size_t>(std::bit_width(value));
    return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
  }

  void record(std::uint64_t value) noexcept {
    buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max.load(std::memory_order_relaxed);
    while (value > seen &&
           !max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace detail

/// Monotonic event count. Handle; copy freely, registry must outlive it.
class Counter {
 public:
  Counter() = default;
  void add(std::int64_t delta = 1) const noexcept {
    if constexpr (kEnabled) {
      if (cell_ != nullptr) cell_->add(delta);
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    if constexpr (kEnabled) {
      if (cell_ != nullptr) return cell_->sum();
    }
    return 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// A level that moves both ways (queue depth, in-flight tasks). The value
/// is the sum of all adds; pair every add with a sub.
class Gauge {
 public:
  Gauge() = default;
  void add(std::int64_t delta = 1) const noexcept {
    if constexpr (kEnabled) {
      if (cell_ != nullptr) cell_->add(delta);
    }
  }
  void sub(std::int64_t delta = 1) const noexcept { add(-delta); }
  [[nodiscard]] std::int64_t value() const noexcept {
    if constexpr (kEnabled) {
      if (cell_ != nullptr) return cell_->sum();
    }
    return 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Fixed-bucket log₂ histogram of non-negative integer samples
/// (microseconds, bytes, batch sizes...).
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t value) const noexcept {
    if constexpr (kEnabled) {
      if (cell_ != nullptr) cell_->record(value);
    }
  }

 private:
  friend class MetricsRegistry;
  friend struct HistogramSnapshot;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// Point-in-time copy of one histogram, with quantile estimation.
struct HistogramSnapshot {
  std::string name;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  /// Quantile estimate for p in [0, 1]: linear interpolation inside the
  /// log₂ bucket containing the p·count-th sample, clamped to the
  /// observed max. Returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double p) const noexcept;
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Snapshot of a bare handle — the quantile path used by callers that
  /// keep their own handles (SiblingService STATS) without a full scrape.
  [[nodiscard]] static HistogramSnapshot of(const Histogram& histogram);
};

/// Everything the registry knew at one instant.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;  // name → value
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {"count":..,"sum":..,"max":..,"p50":..,"p90":..,"p99":..,
  /// "buckets":{"<upper>":count,...}}}}. Embedded by the benchmark
  /// binaries into their --json output.
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; the same name always returns a handle to the same
  /// cell, so independent components share metrics by naming convention.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot scrape() const;

  /// The process-wide registry every subsystem defaults to. Never
  /// destroyed (intentionally leaked), so handles are safe in static
  /// destructors and detached threads.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  detail::CounterCell* cell(std::string_view name, bool is_gauge);

  // lock-order: 50 obs.metrics.registry_mutex (registration and scrape
  // only, never on a record path; leaf)
  mutable std::mutex mutex_;
  std::deque<detail::CounterCell> counter_cells_;     // stable addresses
  std::deque<detail::HistogramCell> histogram_cells_;
  std::unordered_map<std::string, detail::CounterCell*> counters_by_name_;
  std::unordered_map<std::string, detail::HistogramCell*> histograms_by_name_;
};

}  // namespace sp::obs
