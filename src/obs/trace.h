// sp::obs tracing — Chrome-trace-format span recording for offline
// inspection in chrome://tracing or Perfetto (https://ui.perfetto.dev).
//
// A TraceRecorder collects complete spans ("ph":"X" events): a name, a
// category, a start timestamp relative to the recorder's epoch, and a
// duration. Spans are recorded at completion — one mutex-guarded vector
// append per span — which is cheap because every instrumented span is
// coarse: a pipeline stage, a detection shard, a lookup batch. Nothing
// records per-item spans.
//
// Threads are mapped to small dense "tid" values at first span so the
// trace viewer shows one lane per worker thread.
//
// The hot-path guard is the process-wide *active* recorder slot: a single
// relaxed atomic pointer, null by default. Instrumented code does
//
//   if (obs::TraceRecorder* trace = obs::TraceRecorder::active()) { ... }
//
// so a build without tracing enabled pays one predictable-not-taken
// branch. `sp_pipeline --trace out.json` installs a recorder for the
// duration of the campaign and writes the JSON next to the manifest.
//
// ScopedSpan is the RAII helper: it samples the start on construction and
// records on destruction iff a recorder was active at construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace sp::obs {

/// One completed span, timestamps in microseconds since the recorder's
/// epoch (construction time).
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
};

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Records a completed span. Thread-safe.
  void span(std::string_view name, std::string_view category,
            std::chrono::steady_clock::time_point start,
            std::chrono::steady_clock::time_point end);

  /// The events recorded so far, in completion order.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Serializes to Chrome trace format (JSON object form, loadable by
  /// chrome://tracing and Perfetto).
  [[nodiscard]] std::string to_json() const;

  /// to_json() to a file; false (reason in `error`) on I/O failure.
  [[nodiscard]] bool write(const std::string& path, std::string* error = nullptr) const;

  /// The process-wide active recorder; null when tracing is off.
  [[nodiscard]] static TraceRecorder* active() noexcept {
    return active_.load(std::memory_order_acquire);
  }
  /// Installs (or, with nullptr, removes) the active recorder. The caller
  /// owns the recorder and must keep it alive while installed and until
  /// instrumented threads have quiesced.
  static void set_active(TraceRecorder* recorder) noexcept {
    active_.store(recorder, std::memory_order_release);
  }

 private:
  [[nodiscard]] std::uint32_t tid_of(std::thread::id id);

  std::chrono::steady_clock::time_point epoch_;
  // lock-order: 51 obs.trace.recorder_mutex (event append and scrape
  // only; leaf)
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;

  static std::atomic<TraceRecorder*> active_;
};

/// Records `name` from construction to destruction into the recorder that
/// was active at construction (if any).
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, std::string_view category)
      : recorder_(TraceRecorder::active()) {
    if (recorder_ != nullptr) {
      name_ = name;  // copied only when a recorder is live
      category_ = category;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      recorder_->span(name_, category_, start_, std::chrono::steady_clock::now());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::string category_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sp::obs
