// The one peak-RSS reader every artifact writer shares.
//
// Benchmarks, the load generator and the campaign all report the
// process's resident-memory high-water mark next to their timings; each
// used to scrape it independently. VmHWM from /proc/self/status is
// preferred (it survives madvise/free, unlike current RSS); where procfs
// is unavailable the getrusage high water serves as the fallback.
#pragma once

#include <sys/resource.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace sp::obs {

/// Peak resident set size of this process in kilobytes, 0 if unknown.
inline long peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      long kb = 0;
      std::sscanf(line.c_str(), "VmHWM: %ld", &kb);
      return kb;
    }
  }
  struct rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;  // KB on Linux
  return 0;
}

}  // namespace sp::obs
