#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace sp::obs {

namespace detail {

std::size_t shard_index() noexcept {
  // Round-robin assignment at first use per thread: consecutive worker
  // threads land on distinct shards, unlike hashing std::thread::id,
  // which clusters for stack-allocated thread objects.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

}  // namespace detail

double HistogramSnapshot::quantile(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // The p-quantile sits at rank ceil(p * count), at least 1.
  const double target_rank = std::max(1.0, p * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < target_rank) continue;
    // Interpolate inside bucket b: [2^(b-1), 2^b) for b >= 1, {0} for 0.
    if (b == 0) return 0.0;
    const double lower = static_cast<double>(std::uint64_t{1} << (b - 1));
    const double width = lower;  // 2^b - 2^(b-1)
    const double fraction =
        (target_rank - before) / static_cast<double>(buckets[b]);
    return std::min(lower + width * fraction, static_cast<double>(max));
  }
  return static_cast<double>(max);
}

HistogramSnapshot HistogramSnapshot::of(const Histogram& histogram) {
  HistogramSnapshot out;
  if constexpr (kEnabled) {
    const detail::HistogramCell* cell = histogram.cell_;
    if (cell == nullptr) return out;
    out.name = cell->name;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] = cell->buckets[b].load(std::memory_order_relaxed);
      out.count += out.buckets[b];
    }
    out.sum = cell->sum.load(std::memory_order_relaxed);
    out.max = cell->max.load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  out += buffer;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ',';
    append_json_string(out, counters[i].first);
    out += ':' + std::to_string(counters[i].second);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ',';
    append_json_string(out, gauges[i].first);
    out += ':' + std::to_string(gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i > 0) out += ',';
    append_json_string(out, h.name);
    out += ":{\"count\":" + std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
           ",\"max\":" + std::to_string(h.max) + ",\"p50\":";
    append_number(out, h.quantile(0.50));
    out += ",\"p90\":";
    append_number(out, h.quantile(0.90));
    out += ",\"p99\":";
    append_number(out, h.quantile(0.99));
    out += ",\"buckets\":{";
    bool first = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ',';
      first = false;
      // Key: exclusive upper bound of the bucket (0 bucket keyed "0").
      const std::uint64_t upper = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
      out += '"' + std::to_string(upper) + "\":" + std::to_string(h.buckets[b]);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

detail::CounterCell* MetricsRegistry::cell(std::string_view name, bool is_gauge) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_by_name_.find(std::string(name));
  if (it != counters_by_name_.end()) return it->second;
  detail::CounterCell& made = counter_cells_.emplace_back();
  made.name = name;
  made.is_gauge = is_gauge;
  counters_by_name_.emplace(made.name, &made);
  return &made;
}

Counter MetricsRegistry::counter(std::string_view name) {
  if constexpr (!kEnabled) return Counter();
  return Counter(cell(name, /*is_gauge=*/false));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  if constexpr (!kEnabled) return Gauge();
  return Gauge(cell(name, /*is_gauge=*/true));
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  if constexpr (!kEnabled) return Histogram();
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_by_name_.find(std::string(name));
  if (it != histograms_by_name_.end()) return Histogram(it->second);
  detail::HistogramCell& made = histogram_cells_.emplace_back();
  made.name = name;
  histograms_by_name_.emplace(made.name, &made);
  return Histogram(&made);
}

MetricsSnapshot MetricsRegistry::scrape() const {
  MetricsSnapshot out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const detail::CounterCell& cell : counter_cells_) {
    (cell.is_gauge ? out.gauges : out.counters).emplace_back(cell.name, cell.sum());
  }
  for (const detail::HistogramCell& cell : histogram_cells_) {
    HistogramSnapshot snapshot;
    snapshot.name = cell.name;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      snapshot.buckets[b] = cell.buckets[b].load(std::memory_order_relaxed);
      snapshot.count += snapshot.buckets[b];
    }
    snapshot.sum = cell.sum.load(std::memory_order_relaxed);
    snapshot.max = cell.max.load(std::memory_order_relaxed);
    out.histograms.push_back(std::move(snapshot));
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: handles stay valid through static destruction.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace sp::obs
