#include "obs/trace.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace sp::obs {

std::atomic<TraceRecorder*> TraceRecorder::active_{nullptr};

std::uint32_t TraceRecorder::tid_of(std::thread::id id) {
  // Caller holds mutex_.
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const auto tid = static_cast<std::uint32_t>(tids_.size());
  tids_.emplace(id, tid);
  return tid;
}

void TraceRecorder::span(std::string_view name, std::string_view category,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ts_us = std::chrono::duration<double, std::micro>(start - epoch_).count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - start).count();
  const std::lock_guard<std::mutex> lock(mutex_);
  event.tid = tid_of(std::this_thread::get_id());
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

namespace {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_us(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  out += buffer;
}

}  // namespace

std::string TraceRecorder::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& event = events_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"name\":";
    append_json_string(out, event.name);
    out += ",\"cat\":";
    append_json_string(out, event.category);
    out += ",\"ph\":\"X\",\"ts\":";
    append_us(out, event.ts_us);
    out += ",\"dur\":";
    append_us(out, event.dur_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(event.tid) + "}";
  }
  out += events_.empty() ? "]}\n" : "\n]}\n";
  return out;
}

bool TraceRecorder::write(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  out << to_json();
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "cannot write " + path;
    return false;
  }
  return true;
}

}  // namespace sp::obs
