// BGP RIB: prefix → origin-AS database with longest-prefix match.
//
// Plays the Routeviews role in the pipeline: map any IP address seen in DNS
// to its covering BGP-announced prefix and origin AS. Routes can be loaded
// from parsed MRT TABLE_DUMP_V2 records (multiple peers vote on the origin
// AS; majority wins, smallest ASN on ties) or inserted directly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "mrt/types.h"
#include "trie/prefix_trie.h"

namespace sp::bgp {

/// Per-prefix origin observations (one count per distinct origin AS).
struct RouteVotes {
  std::map<std::uint32_t, std::uint32_t> votes;

  void add(std::uint32_t origin_as, std::uint32_t weight = 1) { votes[origin_as] += weight; }

  /// Majority origin AS; smallest ASN on ties. Zero only for an empty vote
  /// set, which never occurs for stored prefixes.
  [[nodiscard]] std::uint32_t best() const noexcept {
    std::uint32_t best_as = 0;
    std::uint32_t best_count = 0;
    for (const auto& [asn, count] : votes) {
      if (count > best_count) {
        best_as = asn;
        best_count = count;
      }
    }
    return best_as;
  }

  /// True when more than one origin AS was observed (MOAS prefix).
  [[nodiscard]] bool is_moas() const noexcept { return votes.size() > 1; }
};

class Rib {
 public:
  struct Lookup {
    Prefix prefix;
    std::uint32_t origin_as = 0;
  };

  /// Accumulates one origin observation for `prefix`.
  void add_route(const Prefix& prefix, std::uint32_t origin_as, std::uint32_t weight = 1);

  /// Builds a RIB from MRT records: every RIB entry's AS_PATH origin votes
  /// for its prefix. PEER_INDEX_TABLE records are accepted and ignored
  /// (peer identity does not change origin extraction).
  [[nodiscard]] static Rib from_mrt(std::span<const mrt::MrtRecord> records);

  /// Exact-match origin AS for a stored prefix.
  [[nodiscard]] std::optional<std::uint32_t> origin_as(const Prefix& prefix) const;

  /// Longest-prefix match for an address: the most specific covering
  /// announced prefix and its origin AS.
  [[nodiscard]] std::optional<Lookup> lookup(const IPAddress& address) const;

  /// Longest-prefix match for a prefix (used when re-mapping tuned
  /// prefixes back to announcements).
  [[nodiscard]] std::optional<Lookup> lookup(const Prefix& prefix) const;

  [[nodiscard]] std::size_t prefix_count() const noexcept { return trie_.size(); }
  [[nodiscard]] std::vector<Prefix> prefixes() const { return trie_.keys(); }

  /// Removes a prefix (all origin observations). Returns true when the
  /// prefix was present.
  bool withdraw(const Prefix& prefix);

  /// Applies BGP4MP UPDATE records on top of this RIB: withdrawn routes
  /// are removed, announced routes replace the prefix's origin votes with
  /// the update's AS_PATH origin. Non-update records are ignored.
  void apply_updates(std::span<const mrt::MrtRecord> records);

  /// Exports the RIB as a TABLE_DUMP_V2 dump (PEER_INDEX_TABLE first, one
  /// RIB record per stored prefix in prefix order, one entry per origin
  /// vote) such that from_mrt(to_mrt()) reproduces this RIB exactly —
  /// votes, MOAS structure and majority origins included. This is how the
  /// campaign runner's evolve stages persist the month-m RIB after
  /// replaying month-m updates onto the month-(m-1) artifact.
  [[nodiscard]] std::vector<mrt::MrtRecord> to_mrt() const;

  /// Number of stored prefixes observed with multiple origin ASes.
  [[nodiscard]] std::size_t moas_count() const;

 private:
  PrefixTrie<RouteVotes> trie_;
};

}  // namespace sp::bgp
