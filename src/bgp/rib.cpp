#include "bgp/rib.h"

namespace sp::bgp {

void Rib::add_route(const Prefix& prefix, std::uint32_t origin_as, std::uint32_t weight) {
  trie_[prefix].add(origin_as, weight);
}

Rib Rib::from_mrt(std::span<const mrt::MrtRecord> records) {
  Rib rib;
  for (const auto& record : records) {
    const auto* rib_record = std::get_if<mrt::RibRecord>(&record.body);
    if (rib_record == nullptr) continue;  // PEER_INDEX_TABLE
    for (const auto& entry : rib_record->entries) {
      if (const auto origin = entry.attributes.origin_as()) {
        rib.add_route(rib_record->prefix, *origin);
      }
    }
  }
  return rib;
}

std::optional<std::uint32_t> Rib::origin_as(const Prefix& prefix) const {
  const RouteVotes* votes = trie_.find(prefix);
  if (votes == nullptr) return std::nullopt;
  return votes->best();
}

std::optional<Rib::Lookup> Rib::lookup(const IPAddress& address) const {
  const auto hit = trie_.longest_match(address);
  if (!hit) return std::nullopt;
  return Lookup{hit->first, hit->second->best()};
}

std::optional<Rib::Lookup> Rib::lookup(const Prefix& prefix) const {
  const auto hit = trie_.longest_match(prefix);
  if (!hit) return std::nullopt;
  return Lookup{hit->first, hit->second->best()};
}

bool Rib::withdraw(const Prefix& prefix) { return trie_.erase(prefix); }

void Rib::apply_updates(std::span<const mrt::MrtRecord> records) {
  for (const auto& record : records) {
    const auto* update = std::get_if<mrt::Bgp4mpUpdate>(&record.body);
    if (update == nullptr) continue;
    for (const Prefix& prefix : update->withdrawn) {
      (void)withdraw(prefix);
    }
    const auto origin = update->attributes.origin_as();
    if (!origin) continue;
    for (const Prefix& prefix : update->announced) {
      // An announcement replaces the previous state of the prefix.
      RouteVotes votes;
      votes.add(*origin);
      trie_.insert(prefix, std::move(votes));
    }
  }
}

std::vector<mrt::MrtRecord> Rib::to_mrt() const {
  constexpr std::uint32_t kTimestamp = 1726000000;  // fixed export time
  std::vector<mrt::MrtRecord> records;
  records.reserve(trie_.size() + 1);

  mrt::PeerIndexTable peers;
  peers.collector_bgp_id = {192, 0, 2, 251};
  peers.view_name = "sp-rib-export";
  peers.peers.push_back({{192, 0, 2, 1}, IPAddress::must_parse("5.0.0.1"), 64500});
  records.push_back({kTimestamp, peers});

  std::uint32_t sequence = 0;
  trie_.visit_all([&](const Prefix& prefix, const RouteVotes& votes) {
    mrt::RibRecord rib;
    rib.sequence = sequence++;
    rib.prefix = prefix;
    // One entry per vote preserves MOAS structure and majorities; the
    // votes map is ordered by ASN, so the export is deterministic.
    for (const auto& [origin, count] : votes.votes) {
      mrt::RibEntry entry;
      entry.peer_index = 0;
      entry.originated_time = kTimestamp - 86400;
      entry.attributes = mrt::PathAttributes::sequence({64500, origin});
      if (prefix.family() == Family::v4) {
        entry.attributes.next_hop_v4 = *IPv4Address::from_string("5.0.0.1");
      } else {
        entry.attributes.next_hop_v6 = *IPv6Address::from_string("2600:1::1");
      }
      for (std::uint32_t i = 0; i < count; ++i) rib.entries.push_back(entry);
    }
    records.push_back({kTimestamp, std::move(rib)});
  });
  return records;
}

std::size_t Rib::moas_count() const {
  std::size_t count = 0;
  trie_.visit_all([&count](const Prefix&, const RouteVotes& votes) {
    if (votes.is_moas()) ++count;
  });
  return count;
}

}  // namespace sp::bgp
