#include "bgp/rib.h"

namespace sp::bgp {

void Rib::add_route(const Prefix& prefix, std::uint32_t origin_as, std::uint32_t weight) {
  trie_[prefix].add(origin_as, weight);
}

Rib Rib::from_mrt(std::span<const mrt::MrtRecord> records) {
  Rib rib;
  for (const auto& record : records) {
    const auto* rib_record = std::get_if<mrt::RibRecord>(&record.body);
    if (rib_record == nullptr) continue;  // PEER_INDEX_TABLE
    for (const auto& entry : rib_record->entries) {
      if (const auto origin = entry.attributes.origin_as()) {
        rib.add_route(rib_record->prefix, *origin);
      }
    }
  }
  return rib;
}

std::optional<std::uint32_t> Rib::origin_as(const Prefix& prefix) const {
  const RouteVotes* votes = trie_.find(prefix);
  if (votes == nullptr) return std::nullopt;
  return votes->best();
}

std::optional<Rib::Lookup> Rib::lookup(const IPAddress& address) const {
  const auto hit = trie_.longest_match(address);
  if (!hit) return std::nullopt;
  return Lookup{hit->first, hit->second->best()};
}

std::optional<Rib::Lookup> Rib::lookup(const Prefix& prefix) const {
  const auto hit = trie_.longest_match(prefix);
  if (!hit) return std::nullopt;
  return Lookup{hit->first, hit->second->best()};
}

bool Rib::withdraw(const Prefix& prefix) { return trie_.erase(prefix); }

void Rib::apply_updates(std::span<const mrt::MrtRecord> records) {
  for (const auto& record : records) {
    const auto* update = std::get_if<mrt::Bgp4mpUpdate>(&record.body);
    if (update == nullptr) continue;
    for (const Prefix& prefix : update->withdrawn) {
      (void)withdraw(prefix);
    }
    const auto origin = update->attributes.origin_as();
    if (!origin) continue;
    for (const Prefix& prefix : update->announced) {
      // An announcement replaces the previous state of the prefix.
      RouteVotes votes;
      votes.add(*origin);
      trie_.insert(prefix, std::move(votes));
    }
  }
}

std::size_t Rib::moas_count() const {
  std::size_t count = 0;
  trie_.visit_all([&count](const Prefix&, const RouteVotes& votes) {
    if (votes.is_moas()) ++count;
  });
  return count;
}

}  // namespace sp::bgp
