// IP-ID-based alias resolution (the MIDAR technique of Keys et al.,
// ToN 2012), as the paper's section 6 alternative input: "alias datasets"
// map prefixes to shared-device identifiers, and the sibling methodology
// applies unchanged.
//
// Model: many routers maintain one global IP-ID counter shared by all
// interfaces. Sampling the counter through two addresses and merging the
// samples by time must yield a monotonically increasing sequence (modulo
// 16-bit wraparound) if — and, at sufficient sample density, only if —
// the addresses sit on one device. resolve_aliases() applies a velocity
// pre-filter and the monotonic-bounds test pairwise, then unions
// compatible addresses into alias sets.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "netbase/ip.h"

namespace sp::alias {

/// One probe response: the time it was received and the IP-ID it carried.
struct IpIdSample {
  double time_s = 0.0;
  std::uint16_t ip_id = 0;
};

/// Counter velocity in IDs/second, estimated by a least-squares fit over
/// the wrap-corrected sample sequence. Requires samples sorted by time;
/// returns 0 for fewer than two samples.
[[nodiscard]] double estimated_velocity(std::span<const IpIdSample> samples);

struct MbtConfig {
  /// Maximum plausible counter velocity (IDs/second). Sequences faster
  /// than this wrap between samples and cannot be tested reliably.
  double max_velocity = 10000.0;
  /// Velocity pre-filter: candidate pairs must agree within this ratio.
  double velocity_tolerance = 0.25;
  /// Slack for the monotonic-bounds test, in IDs, absorbing in-flight
  /// reordering and counter jitter.
  double slack_ids = 64.0;
};

/// The monotonic-bounds test: true when the time-merged, wrap-corrected
/// sample streams of the two addresses are consistent with one shared
/// counter. Both inputs must be sorted by time.
[[nodiscard]] bool monotonic_compatible(std::span<const IpIdSample> a,
                                        std::span<const IpIdSample> b,
                                        const MbtConfig& config = {});

/// Probe observations per address.
using ProbeData = std::unordered_map<IPAddress, std::vector<IpIdSample>>;

/// Groups addresses into alias sets (size >= 1; singletons are addresses
/// with no compatible partner). Output sets are sorted internally and
/// ordered by their first address.
[[nodiscard]] std::vector<std::vector<IPAddress>> resolve_aliases(
    const ProbeData& probes, const MbtConfig& config = {});

}  // namespace sp::alias
