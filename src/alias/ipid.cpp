#include "alias/ipid.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sp::alias {

namespace {

constexpr double kWrap = 65536.0;

/// Wrap-corrects a time-sorted sample sequence into an unbounded counter
/// track: whenever the raw ID steps backwards, one wrap is added.
std::vector<double> unwrap(std::span<const IpIdSample> samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  double offset = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0 && samples[i].ip_id < samples[i - 1].ip_id) offset += kWrap;
    out.push_back(offset + samples[i].ip_id);
  }
  return out;
}

/// Least-squares slope of (time, value) pairs.
double slope(std::span<const IpIdSample> samples, std::span<const double> values) {
  const double n = static_cast<double>(samples.size());
  double mean_t = 0.0;
  double mean_v = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    mean_t += samples[i].time_s;
    mean_v += values[i];
  }
  mean_t /= n;
  mean_v /= n;
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double dt = samples[i].time_s - mean_t;
    num += dt * (values[i] - mean_v);
    den += dt * dt;
  }
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace

double estimated_velocity(std::span<const IpIdSample> samples) {
  if (samples.size() < 2) return 0.0;
  const auto values = unwrap(samples);
  return slope(samples, values);
}

bool monotonic_compatible(std::span<const IpIdSample> a, std::span<const IpIdSample> b,
                          const MbtConfig& config) {
  if (a.size() < 2 || b.size() < 2) return false;

  const double velocity_a = estimated_velocity(a);
  const double velocity_b = estimated_velocity(b);
  if (velocity_a <= 0.0 || velocity_b <= 0.0) return false;
  if (velocity_a > config.max_velocity || velocity_b > config.max_velocity) return false;
  const double ratio = std::abs(velocity_a - velocity_b) / std::max(velocity_a, velocity_b);
  if (ratio > config.velocity_tolerance) return false;

  // Merge by time and check the shared-counter hypothesis: wrap-correct
  // the merged stream against the expected velocity and require it to be
  // (near-)monotone.
  std::vector<IpIdSample> merged(a.begin(), a.end());
  merged.insert(merged.end(), b.begin(), b.end());
  std::sort(merged.begin(), merged.end(),
            [](const IpIdSample& x, const IpIdSample& y) { return x.time_s < y.time_s; });

  const double velocity = (velocity_a + velocity_b) / 2.0;
  double offset = 0.0;
  double previous = merged.front().ip_id;
  double previous_time = merged.front().time_s;
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const double dt = merged[i].time_s - previous_time;
    double value = offset + merged[i].ip_id;
    // Allow as many wraps as the expected velocity implies for this gap.
    const double expected = previous + velocity * dt;
    while (value + kWrap / 2.0 < expected) {
      offset += kWrap;
      value += kWrap;
    }
    if (value + config.slack_ids < previous) return false;  // went backwards
    if (value > expected + kWrap / 2.0 + config.slack_ids) return false;  // jumped ahead
    previous = value;
    previous_time = merged[i].time_s;
  }
  return true;
}

std::vector<std::vector<IPAddress>> resolve_aliases(const ProbeData& probes,
                                                    const MbtConfig& config) {
  // Deterministic address order.
  std::vector<IPAddress> addresses;
  addresses.reserve(probes.size());
  for (const auto& [address, samples] : probes) addresses.push_back(address);
  std::sort(addresses.begin(), addresses.end());

  // Pre-sort each address's samples and cache velocities.
  std::unordered_map<IPAddress, std::vector<IpIdSample>> sorted;
  std::unordered_map<IPAddress, double> velocity;
  for (const auto& address : addresses) {
    auto samples = probes.at(address);
    std::sort(samples.begin(), samples.end(),
              [](const IpIdSample& x, const IpIdSample& y) { return x.time_s < y.time_s; });
    velocity[address] = estimated_velocity(samples);
    sorted[address] = std::move(samples);
  }

  // Union-find over compatible pairs.
  std::vector<std::size_t> parent(addresses.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (std::size_t i = 0; i < addresses.size(); ++i) {
    for (std::size_t j = i + 1; j < addresses.size(); ++j) {
      if (find(i) == find(j)) continue;
      // Velocity pre-filter avoids the expensive merge for obvious
      // non-aliases (the MIDAR "estimation stage").
      const double vi = velocity[addresses[i]];
      const double vj = velocity[addresses[j]];
      if (vi <= 0.0 || vj <= 0.0) continue;
      if (std::abs(vi - vj) / std::max(vi, vj) > config.velocity_tolerance) continue;
      if (monotonic_compatible(sorted[addresses[i]], sorted[addresses[j]], config)) {
        parent[find(i)] = find(j);
      }
    }
  }

  std::unordered_map<std::size_t, std::vector<IPAddress>> groups;
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    groups[find(i)].push_back(addresses[i]);
  }
  std::vector<std::vector<IPAddress>> out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return out;
}

}  // namespace sp::alias
