#include "rpki/rov.h"

namespace sp::rpki {

std::string_view rov_status_name(RovStatus status) noexcept {
  switch (status) {
    case RovStatus::Valid: return "valid";
    case RovStatus::Invalid: return "invalid";
    case RovStatus::NotFound: return "not-found";
  }
  return "?";
}

std::string_view pair_rov_status_name(PairRovStatus status) noexcept {
  switch (status) {
    case PairRovStatus::BothValid: return "valid,valid";
    case PairRovStatus::ValidNotFound: return "valid,not-found";
    case PairRovStatus::ValidInvalid: return "valid,invalid";
    case PairRovStatus::InvalidNotFound: return "invalid,not-found";
    case PairRovStatus::BothInvalid: return "invalid,invalid";
    case PairRovStatus::BothNotFound: return "not-found,not-found";
  }
  return "?";
}

PairRovStatus classify_pair(RovStatus a, RovStatus b) noexcept {
  const auto has = [&](RovStatus s) { return a == s || b == s; };
  if (a == RovStatus::Valid && b == RovStatus::Valid) return PairRovStatus::BothValid;
  if (has(RovStatus::Valid) && has(RovStatus::Invalid)) return PairRovStatus::ValidInvalid;
  if (has(RovStatus::Valid)) return PairRovStatus::ValidNotFound;
  if (a == RovStatus::Invalid && b == RovStatus::Invalid) return PairRovStatus::BothInvalid;
  if (has(RovStatus::Invalid)) return PairRovStatus::InvalidNotFound;
  return PairRovStatus::BothNotFound;
}

bool Validator::add_roa(const Roa& roa) {
  if (roa.max_length < roa.prefix.length() || roa.max_length > roa.prefix.max_length()) {
    return false;
  }
  trie_[roa.prefix].push_back(roa);
  ++roa_count_;
  return true;
}

RovStatus Validator::validate(const Prefix& announced, std::uint32_t origin_as) const {
  bool covered = false;
  bool valid = false;
  trie_.visit_ancestors(announced, [&](const Prefix&, const std::vector<Roa>& roas) {
    for (const Roa& roa : roas) {
      covered = true;
      if (roa.asn == origin_as && announced.length() <= roa.max_length) valid = true;
    }
  });
  if (valid) return RovStatus::Valid;
  return covered ? RovStatus::Invalid : RovStatus::NotFound;
}

std::vector<Roa> Validator::covering_roas(const Prefix& announced) const {
  std::vector<Roa> out;
  trie_.visit_ancestors(announced, [&out](const Prefix&, const std::vector<Roa>& roas) {
    out.insert(out.end(), roas.begin(), roas.end());
  });
  return out;
}

}  // namespace sp::rpki
