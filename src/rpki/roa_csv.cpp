#include "rpki/roa_csv.h"

#include <charconv>

#include "io/csv.h"

namespace sp::rpki {

namespace {
const io::CsvRow kHeader = {"asn", "prefix", "max_length"};
}  // namespace

bool write_roa_csv(const std::string& path, std::span<const Roa> roas) {
  std::vector<io::CsvRow> rows;
  rows.reserve(roas.size() + 1);
  rows.push_back(kHeader);
  for (const Roa& roa : roas) {
    rows.push_back({"AS" + std::to_string(roa.asn), roa.prefix.to_string(),
                    std::to_string(roa.max_length)});
  }
  return io::write_csv_file(path, rows);
}

std::optional<std::vector<Roa>> read_roa_csv(const std::string& path) {
  const auto rows = io::read_csv_file(path);
  if (!rows || rows->empty() || rows->front() != kHeader) return std::nullopt;

  std::vector<Roa> roas;
  roas.reserve(rows->size() - 1);
  for (std::size_t i = 1; i < rows->size(); ++i) {
    const io::CsvRow& row = (*rows)[i];
    if (row.size() != kHeader.size()) return std::nullopt;

    Roa roa;
    std::string_view asn_text = row[0];
    if (asn_text.starts_with("AS") || asn_text.starts_with("as")) {
      asn_text.remove_prefix(2);
    }
    const auto asn_result =
        std::from_chars(asn_text.data(), asn_text.data() + asn_text.size(), roa.asn);
    if (asn_result.ec != std::errc{} || asn_result.ptr != asn_text.data() + asn_text.size()) {
      return std::nullopt;
    }

    const auto prefix = Prefix::from_string(row[1]);
    if (!prefix) return std::nullopt;
    roa.prefix = *prefix;

    unsigned max_length = 0;
    const auto len_result =
        std::from_chars(row[2].data(), row[2].data() + row[2].size(), max_length);
    if (len_result.ec != std::errc{} || len_result.ptr != row[2].data() + row[2].size() ||
        max_length < roa.prefix.length() || max_length > roa.prefix.max_length()) {
      return std::nullopt;
    }
    roa.max_length = static_cast<std::uint8_t>(max_length);
    roas.push_back(roa);
  }
  return roas;
}

}  // namespace sp::rpki
