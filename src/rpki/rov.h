// RPKI route-origin validation (RFC 6811).
//
// ROAs authorize an AS to originate a prefix up to a maximum length. The
// validator classifies a (prefix, origin AS) announcement as Valid, Invalid
// or NotFound, and the pair classifier maps the two per-family statuses of
// a sibling prefix pair onto the six categories of the paper's Figure 18.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "trie/prefix_trie.h"

namespace sp::rpki {

/// A Route Origin Authorization object.
struct Roa {
  Prefix prefix;
  std::uint8_t max_length = 0;  // >= prefix.length(), <= family maximum
  std::uint32_t asn = 0;

  friend bool operator==(const Roa&, const Roa&) = default;
};

/// RFC 6811 validation outcome for one announcement.
enum class RovStatus : std::uint8_t { Valid, Invalid, NotFound };

[[nodiscard]] std::string_view rov_status_name(RovStatus status) noexcept;

/// Joint ROV status of a sibling prefix pair (order-insensitive), matching
/// the categories of the paper's Figure 18.
enum class PairRovStatus : std::uint8_t {
  BothValid,
  ValidNotFound,
  ValidInvalid,    // conflicting
  InvalidNotFound,
  BothInvalid,
  BothNotFound,
};

inline constexpr int kPairRovStatusCount = 6;

[[nodiscard]] std::string_view pair_rov_status_name(PairRovStatus status) noexcept;

/// Combines the two per-prefix statuses of a pair.
[[nodiscard]] PairRovStatus classify_pair(RovStatus a, RovStatus b) noexcept;

class Validator {
 public:
  /// Registers a ROA. Returns false (and ignores the ROA) when max_length
  /// is inconsistent with the prefix.
  bool add_roa(const Roa& roa);

  [[nodiscard]] std::size_t roa_count() const noexcept { return roa_count_; }

  /// RFC 6811: Valid when any covering ROA matches the origin AS with a
  /// sufficient max_length; Invalid when covering ROAs exist but none
  /// match; NotFound when no ROA covers the prefix.
  [[nodiscard]] RovStatus validate(const Prefix& announced, std::uint32_t origin_as) const;

  /// All ROAs covering `announced`, least specific first.
  [[nodiscard]] std::vector<Roa> covering_roas(const Prefix& announced) const;

 private:
  PrefixTrie<std::vector<Roa>> trie_;
  std::size_t roa_count_ = 0;
};

}  // namespace sp::rpki
