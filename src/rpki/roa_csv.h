// CSV serialization of ROA sets, following the layout of the RIR-published
// "export.csv" files (URI,ASN,IP Prefix,Max Length,Not Before,Not After —
// we keep the columns the validator needs).
//
// Layout:
//   asn,prefix,max_length
//   AS65001,20.1.0.0/16,20
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rpki/rov.h"

namespace sp::rpki {

/// Writes the ROA set; returns false on I/O failure.
[[nodiscard]] bool write_roa_csv(const std::string& path, std::span<const Roa> roas);

/// Reads a ROA CSV. Returns nullopt on I/O failure, a bad header, or any
/// unparsable/inconsistent row (max_length outside [prefix length, family
/// maximum]).
[[nodiscard]] std::optional<std::vector<Roa>> read_roa_csv(const std::string& path);

}  // namespace sp::rpki
