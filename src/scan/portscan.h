// Port-scan result model (the ZMap/ZMapv6 role).
//
// The paper scans the 14 well-known ports listed below on every address of
// every sibling prefix and compares per-prefix responsive-port sets with
// the DNS-based domain sets. Port sets are stored as 14-bit masks indexed
// by position in kWellKnownPorts.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "trie/prefix_trie.h"

namespace sp::scan {

/// The 14 ports of the paper's section 3.6, ascending.
inline constexpr std::array<std::uint16_t, 14> kWellKnownPorts = {
    20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 194, 443, 7547};

using PortMask = std::uint16_t;

/// Index of `port` in kWellKnownPorts, nullopt when not scanned.
[[nodiscard]] std::optional<unsigned> port_index(std::uint16_t port) noexcept;

/// Mask bit for one port; 0 when the port is not in the scanned set.
[[nodiscard]] PortMask port_bit(std::uint16_t port) noexcept;

[[nodiscard]] int open_port_count(PortMask mask) noexcept;

/// Jaccard similarity of two port masks; 0 when both are empty.
[[nodiscard]] double port_jaccard(PortMask a, PortMask b) noexcept;

/// Scan results: responsive ports per address, queryable per prefix.
class PortScanDataset {
 public:
  /// Marks `port` (must be one of kWellKnownPorts) open on `address`.
  void add_open(const IPAddress& address, std::uint16_t port);

  /// Responsive-port mask of a single address (0 when unresponsive).
  [[nodiscard]] PortMask ports_of(const IPAddress& address) const;

  /// Union of responsive ports over all addresses inside `prefix`.
  [[nodiscard]] PortMask ports_in(const Prefix& prefix) const;

  /// True when at least one address inside `prefix` responded.
  [[nodiscard]] bool responsive(const Prefix& prefix) const {
    return ports_in(prefix) != 0;
  }

  [[nodiscard]] std::size_t responsive_address_count() const noexcept {
    return hosts_.size();
  }

 private:
  PrefixTrie<PortMask> hosts_;  // keyed by /32 and /128 host prefixes
};

}  // namespace sp::scan
