#include "scan/portscan.h"

#include <bit>

namespace sp::scan {

std::optional<unsigned> port_index(std::uint16_t port) noexcept {
  for (unsigned i = 0; i < kWellKnownPorts.size(); ++i) {
    if (kWellKnownPorts[i] == port) return i;
  }
  return std::nullopt;
}

PortMask port_bit(std::uint16_t port) noexcept {
  const auto index = port_index(port);
  return index ? static_cast<PortMask>(1u << *index) : 0;
}

int open_port_count(PortMask mask) noexcept { return std::popcount(mask); }

double port_jaccard(PortMask a, PortMask b) noexcept {
  const int union_count = std::popcount(static_cast<PortMask>(a | b));
  if (union_count == 0) return 0.0;
  return static_cast<double>(std::popcount(static_cast<PortMask>(a & b))) / union_count;
}

void PortScanDataset::add_open(const IPAddress& address, std::uint16_t port) {
  const PortMask bit = port_bit(port);
  if (bit == 0) return;
  hosts_[Prefix::host(address)] |= bit;
}

PortMask PortScanDataset::ports_of(const IPAddress& address) const {
  const PortMask* mask = hosts_.find(Prefix::host(address));
  return mask == nullptr ? 0 : *mask;
}

PortMask PortScanDataset::ports_in(const Prefix& prefix) const {
  PortMask mask = 0;
  hosts_.visit_covered(prefix, [&mask](const Prefix&, const PortMask& m) { mask |= m; });
  return mask;
}

}  // namespace sp::scan
